"""Ablation: Extra-Trees vs random forest as the augmented surrogate.

The paper picks the Extra-Trees algorithm (Section IV-B) from the family
of tree ensembles its related work uses (CART-based performance models).
This bench swaps in a bagged CART forest, everything else equal, to
document how sensitive Augmented BO is to that choice.
"""

import numpy as np
from conftest import show

from repro.analysis.experiments import all_workload_ids, augmented_factory
from repro.analysis.runner import RunGrid
from repro.core.objectives import Objective

SLICE = all_workload_ids()[::12]  # 9 workloads
REPEATS = 3


def mean_median_cost(runner, key, **opts):
    grid = RunGrid(
        key=key,
        factory=augmented_factory(**opts),
        objective=Objective.TIME,
        workload_ids=SLICE,
        repeats=REPEATS,
    )
    results = runner.run(grid)
    costs = runner.costs_to_optimum(results, Objective.TIME)
    return float(
        np.mean(
            [np.median([18 if c is None else c for c in cs]) for cs in costs.values()]
        )
    )


def test_ablation_ensemble(benchmark, runner):
    def run():
        extra = mean_median_cost(runner, "ablation-augmented-et")
        forest = mean_median_cost(
            runner, "ablation-augmented-rf", ensemble="random_forest"
        )
        return extra, forest

    extra, forest = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — surrogate ensemble family (time objective)",
        [
            ("mean median search cost, Extra-Trees", "(paper's choice)", f"{extra:.2f}"),
            ("mean median search cost, random forest", "(comparable)", f"{forest:.2f}"),
        ],
    )
    # Both ensembles must drive an effective search; the paper's choice
    # should not be materially worse than the alternative.
    assert extra < 10
    assert forest < 10
    assert extra <= forest + 1.5
