"""Figure 11: stopping-criterion trade-off by region.

Paper: Augmented BO's Prediction-Delta threshold exposes a genuine
search-cost vs deployment-cost trade-off; at threshold 1.1 it matches or
beats Naive BO (10% EI rule) on both axes in Regions II and III, and in
Region I it trades a few percent of deployment cost for a much cheaper
search.
"""

from conftest import show

from repro.analysis.experiments import fig11_stopping_tradeoff


def test_fig11_stopping_tradeoff(benchmark, runner):
    result = benchmark.pedantic(
        fig11_stopping_tradeoff, args=(runner,), rounds=1, iterations=1
    )

    rows = []
    for threshold, per_region in result["augmented_delta"].items():
        for region, point in sorted(per_region.items()):
            rows.append(
                (
                    f"augmented delta={threshold} {region}",
                    "(trade-off curve)",
                    f"{point['mean_search_cost']:.1f} meas / "
                    f"{point['mean_normalised_cost']:.2f}x",
                )
            )
    for fraction, per_region in result["naive_ei"].items():
        for region, point in sorted(per_region.items()):
            rows.append(
                (
                    f"naive ei={fraction} {region}",
                    "(reference)",
                    f"{point['mean_search_cost']:.1f} meas / "
                    f"{point['mean_normalised_cost']:.2f}x",
                )
            )
    show("Figure 11 — stopping criteria trade-off (cost objective)", rows)

    delta = result["augmented_delta"]
    # Shape 1: the trade-off exists — patient thresholds search longer...
    for region in delta["0.9"]:
        if region in delta["1.3"]:
            assert (
                delta["1.3"][region]["mean_search_cost"]
                >= delta["0.9"][region]["mean_search_cost"] - 1e-9
            )
    # ...and find results at least as good (lower normalised cost).
    for region in delta["0.9"]:
        if region in delta["1.3"]:
            assert (
                delta["1.3"][region]["mean_normalised_cost"]
                <= delta["0.9"][region]["mean_normalised_cost"] + 0.02
            )

    # Shape 2: at the recommended 1.1 threshold, Augmented reduces search
    # cost versus Naive's prescribed 10% EI rule in the fragile regions.
    naive_ref = result["naive_ei"]["0.1"]
    for region in ("Region II", "Region III"):
        if region in naive_ref and region in delta["1.1"]:
            assert (
                delta["1.1"][region]["mean_search_cost"]
                <= naive_ref[region]["mean_search_cost"] + 0.5
            )
