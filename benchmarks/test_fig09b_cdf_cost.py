"""Figure 9(b): Naive vs Augmented BO CDFs, cost objective.

Paper: minimising deployment cost is harder than minimising time (both
methods need more measurements); Naive finds the best VM within six
attempts for only ~50% of workloads, Augmented raises that to ~60%, and
Augmented shows "a clear win ... after measuring five measurements".

Reproduced shape: cost is clearly harder than time for both methods, and
Augmented leads through the early search (measurements 4-6), which is the
region the stopping rules operate in (Figures 11-12).  In our dataset the
*tail* reverses — Naive's calibrated EI sweeps the many near-tied cheap
VMs more systematically than pure Prediction-Delta exploitation once the
easy wins are gone.  DESIGN.md section 7 records this divergence.
"""

from conftest import show

from repro.analysis.experiments import fig9_cdf
from repro.core.objectives import Objective


def test_fig9b_cdf_cost(benchmark, runner):
    result = benchmark.pedantic(
        fig9_cdf,
        args=(runner, Objective.COST),
        kwargs={"include_hybrid": False},
        rounds=1,
        iterations=1,
    )
    time_result = fig9_cdf(runner, Objective.TIME)  # cached by fig9a

    naive = result["curves"]["naive"]
    augmented = result["curves"]["augmented"]
    show(
        "Figure 9(b) — solved-fraction CDFs (cost objective)",
        [
            ("naive solved at 6", "~50%", f"{naive[5]:.0%}"),
            ("augmented solved at 6", "~60%", f"{augmented[5]:.0%}"),
            ("augmented lead at 4 measurements", "augmented ahead", f"{augmented[3] - naive[3]:+.0%}"),
            ("augmented lead at 5 measurements", "augmented ahead", f"{augmented[4] - naive[4]:+.0%}"),
            ("naive solved at 10", "(lower than time case)", f"{naive[9]:.0%}"),
            ("augmented solved at 10", "~paper: >= naive; here: tail reverses", f"{augmented[9]:.0%}"),
        ],
    )
    for label, curve in result["curves"].items():
        print(f"{label:<10}", " ".join(f"{v:.2f}" for v in curve))

    # Cost is harder than time for Naive BO (the paper's central point
    # about the level playing field).
    assert naive[5] <= time_result["curves"]["naive"][5] - 0.05
    # Augmented leads (or ties) through the early search, where the
    # prescribed stopping criteria operate.
    assert augmented[3] >= naive[3] - 0.02
    assert augmented[4] >= naive[4] - 0.02
    assert augmented[5] >= naive[5] - 0.02
    # Both converge over a full sweep.
    assert naive[-1] == augmented[-1] == 1.0
