"""Figure 1: Naive BO's search-cost CDF over the 107 workloads.

Paper: ~50% of workloads solved within 6 measurements (33% of the search
space), ~85% within 12 (66%); the rest form Regions II/III where BO is
fragile.
"""

from conftest import show

from repro.analysis.experiments import fig1_naive_cdf


def test_fig1_naive_bo_cdf(benchmark, runner):
    result = benchmark.pedantic(fig1_naive_cdf, args=(runner,), rounds=1, iterations=1)

    regions = result["regions"]
    show(
        "Figure 1 — Naive BO search-cost CDF (time objective)",
        [
            ("workloads solved within 6 measurements", "~50%", f"{result['solved_at_6']:.0%}"),
            ("workloads solved within 12 measurements", "~85%", f"{result['solved_at_12']:.0%}"),
            ("Region I workloads", "~54", str(regions["Region I"])),
            ("Region II workloads", "~37", str(regions["Region II"])),
            ("Region III workloads", "~16", str(regions["Region III"])),
        ],
    )
    print("CDF curve:", " ".join(f"{v:.2f}" for v in result["curve"]))

    curve = result["curve"]
    # Shape claims: the CDF rises monotonically, a material share of
    # workloads is solved early, and a material share is NOT solved at 6
    # (the fragility the paper is about).
    assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))
    assert 0.30 <= result["solved_at_6"] <= 0.85
    assert result["solved_at_6"] < result["solved_at_12"] <= 1.0
    assert regions["Region II"] + regions["Region III"] >= 10
    assert sum(regions.values()) == 107
