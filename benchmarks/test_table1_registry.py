"""Table I: the application/workload inventory."""

from conftest import show

from repro.analysis.experiments import table1_registry


def test_table1_registry(benchmark):
    result = benchmark.pedantic(table1_registry, rounds=1, iterations=1)

    by_category = result["applications_by_category"]
    show(
        "Table I — applications and workloads",
        [
            ("workloads measured", "107", str(result["n_workloads"])),
            ("applications", "30", str(result["n_applications"])),
            ("frameworks", "3", str(len(result["frameworks"]))),
            ("micro benchmarks", "4", str(len(by_category["Micro Benchmark"]))),
            ("OLAP queries", "3", str(len(by_category["OLAP"]))),
            ("statistics functions", "9", str(len(by_category["Statistics Function"]))),
            ("machine learning", "14", str(len(by_category["Machine Learning"]))),
        ],
    )

    assert result["n_workloads"] == 107
    assert result["n_applications"] == 30
    assert result["frameworks"] == ["Hadoop 2.7", "Spark 1.5", "Spark 2.1"]
