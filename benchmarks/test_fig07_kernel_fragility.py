"""Figure 7: the choice of covariance kernel flips winners.

Paper: Matérn 1/2 finds the optimal VM fastest for als (time objective)
but performs the worst for bayes (cost objective) — no single kernel is
a safe choice.
"""

from conftest import show

from repro.analysis.experiments import fig7_kernel_fragility


def test_fig7_kernel_fragility(benchmark, runner):
    result = benchmark.pedantic(
        fig7_kernel_fragility, args=(runner,), rounds=1, iterations=1
    )

    rows = []
    for case in result["cases"]:
        label = f"{case['workload']} ({case['objective']})"
        for kernel, median in case["median_cost_by_kernel"].items():
            rows.append((f"{label}: {kernel}", "(varies)", f"{median:.1f} meas"))
        rows.append((f"{label}: best/worst kernel", "differ by case",
                     f"{case['best_kernel']}/{case['worst_kernel']}"))
    show("Figure 7 — kernel sensitivity of Naive BO", rows)

    # Shape claims: kernels genuinely differ within each case, and the
    # ranking is not constant across the two cases (fragility).
    for case in result["cases"]:
        medians = case["median_cost_by_kernel"]
        assert max(medians.values()) > min(medians.values())

    case_a, case_b = result["cases"]

    def ranking(case):
        return tuple(sorted(case["median_cost_by_kernel"],
                            key=case["median_cost_by_kernel"].__getitem__))

    assert ranking(case_a) != ranking(case_b)
