"""Figure 9(a): Naive vs Augmented vs Hybrid BO CDFs, time objective.

Paper: Naive solves ~60% of workloads within 6 measurements; Augmented
overtakes it afterwards (96% vs 80% at 10 measurements) despite a slow
start in the first ~4 steps; Hybrid dominates Naive throughout.
"""

from conftest import show

from repro.analysis.experiments import fig9_cdf
from repro.core.objectives import Objective


def test_fig9a_cdf_time(benchmark, runner):
    result = benchmark.pedantic(
        fig9_cdf, args=(runner, Objective.TIME), rounds=1, iterations=1
    )

    naive = result["solved_at"]["naive"]
    augmented = result["solved_at"]["augmented"]
    hybrid = result["solved_at"]["hybrid"]
    show(
        "Figure 9(a) — solved-fraction CDFs (time objective)",
        [
            ("naive solved at 6", "~60%", f"{naive['6']:.0%}"),
            ("augmented solved at 6", ">= naive", f"{augmented['6']:.0%}"),
            ("naive solved at 10", "~80%", f"{naive['10']:.0%}"),
            ("augmented solved at 10", "~96%", f"{augmented['10']:.0%}"),
            ("hybrid solved at 6", ">= naive", f"{hybrid['6']:.0%}"),
            ("hybrid solved at 10", ">= naive", f"{hybrid['10']:.0%}"),
        ],
    )
    for label, curve in result["curves"].items():
        print(f"{label:<10}", " ".join(f"{v:.2f}" for v in curve))

    # Shape claims (small slack for repeat noise):
    assert augmented["10"] >= naive["10"] - 0.03
    assert augmented["12"] >= naive["12"] - 0.03
    assert hybrid["6"] >= naive["6"] - 0.05
    assert hybrid["10"] >= naive["10"] - 0.05
    # Everyone finishes a full sweep having found the optimum.
    for curve in result["curves"].values():
        assert curve[-1] == 1.0
