"""Figure 13: the time-cost-product objective (threshold 1.05).

Paper: Naive BO needs long searches (>6 measurements) on ~24% of
workloads and very long ones (>=10) on ~13%, while Augmented BO never
needs more than six actual evaluations across all 107 workloads.
"""

from conftest import show

from repro.analysis.experiments import fig13_timecost_product


def test_fig13_timecost_product(benchmark, runner):
    result = benchmark.pedantic(
        fig13_timecost_product, args=(runner,), rounds=1, iterations=1
    )

    counts = result["counts"]
    show(
        "Figure 13 — time-cost product with stopping rules",
        [
            ("naive long searches (>6)", "~24%", f"{result['naive_long_search_fraction']:.0%}"),
            (
                "naive very long searches (>=10)",
                "~13%",
                f"{result['naive_very_long_search_fraction']:.0%}",
            ),
            (
                "augmented max search cost",
                "<= 6",
                f"{result['augmented_max_search_cost']:.0f}",
            ),
            ("win", "53", str(counts["win"])),
            ("same", "14", str(counts["same"])),
            ("draw", "32+2", str(counts["draw"])),
            ("loss", "6", str(counts["loss"])),
        ],
    )

    # Shape claims: Naive runs long searches on a material share of
    # workloads; Augmented's searches stay short and bounded.
    assert result["naive_long_search_fraction"] > 0.10
    assert result["augmented_max_search_cost"] <= 8
    assert counts["win"] >= counts["loss"]
