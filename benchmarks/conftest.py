"""Shared fixtures for the reproduction benchmark suite.

Every ``test_fig*`` / ``test_table*`` benchmark regenerates one table or
figure of the paper through :mod:`repro.analysis.experiments` and prints
a paper-vs-measured comparison.  Results are cached under
``results/cache`` (shared with ``scripts/build_cache.py``), so a
populated cache makes the whole suite fast; a cold cache computes
everything from scratch.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.runner import ExperimentRunner
from repro.trace.generate import default_trace

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="session")
def trace():
    """The canonical benchmark trace."""
    return default_trace()


@pytest.fixture(scope="session")
def runner():
    """Experiment runner over the canonical trace with the shared cache."""
    return ExperimentRunner(cache_dir=REPO_ROOT / "results" / "cache")


def show(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a paper-vs-measured comparison block."""
    print(f"\n=== {title} ===")
    print(f"{'quantity':<46} {'paper':>16} {'measured':>16}")
    for quantity, paper, measured in rows:
        print(f"{quantity:<46} {paper:>16} {measured:>16}")
