"""Figure 10: per-workload search traces with median and IQR.

Paper: on pagerank (time), als (time) and lr (cost), Augmented BO
reaches the optimal VM in fewer measurements and with smaller
across-repeat variance (IQR) than Naive BO.
"""

from conftest import show

from repro.analysis.experiments import fig10_example_traces


def test_fig10_example_traces(benchmark, runner):
    result = benchmark.pedantic(
        fig10_example_traces, args=(runner,), rounds=1, iterations=1
    )

    rows = []
    wins = 0
    for case in result["cases"]:
        label = f"{case['workload']} ({case['objective']})"
        naive = case["methods"]["naive"]
        augmented = case["methods"]["augmented"]
        rows.append(
            (
                f"{label}: median cost naive/augmented",
                "augmented lower",
                f"{naive['median_cost_to_optimum']:.0f}/"
                f"{augmented['median_cost_to_optimum']:.0f}",
            )
        )
        rows.append(
            (
                f"{label}: IQR naive/augmented",
                "augmented tighter",
                f"{naive['iqr_cost_to_optimum']:.0f}/{augmented['iqr_cost_to_optimum']:.0f}",
            )
        )
        if augmented["median_cost_to_optimum"] <= naive["median_cost_to_optimum"]:
            wins += 1
    show("Figure 10 — example search traces", rows)

    # Shape: Augmented matches or beats Naive's median search cost on at
    # least two of the three showcase workloads.
    assert wins >= 2
    # And every median trace ends at the optimum after a full sweep.
    for case in result["cases"]:
        for method in case["methods"].values():
            assert method["median_curve"][-1] <= 1.001
