"""Figure 12: win/draw/loss of Augmented vs Naive BO (cost objective).

Paper: with the prescribed stopping rules (10% EI vs Delta 1.1),
Augmented BO wins on 46 of 107 workloads (lower search cost AND lower
deployment cost), performs the same on 39, trades on 17 and loses search
cost on only 5; on average it cuts search cost ~20% and deployment cost
~5%.
"""

from conftest import show

from repro.analysis.experiments import fig12_win_loss


def test_fig12_win_loss(benchmark, runner):
    result = benchmark.pedantic(fig12_win_loss, args=(runner,), rounds=1, iterations=1)

    counts = result["counts"]
    show(
        "Figure 12 — Augmented vs Naive with stopping rules (cost)",
        [
            ("win (both axes better)", "46", str(counts["win"])),
            ("same", "39", str(counts["same"])),
            ("draw (trade-off)", "17", str(counts["draw"])),
            ("loss (higher search cost)", "5", str(counts["loss"])),
            ("mean search-cost reduction", "~20%", f"{result['mean_search_reduction']:.0%}"),
            ("mean deployment-cost improvement", "~5%", f"{result['mean_value_improvement']:.0%}"),
        ],
    )

    total = sum(counts.values())
    assert total == 107
    # Shape claims: wins dominate losses heavily, and the average search
    # cost drops.
    assert counts["win"] >= 3 * counts["loss"]
    assert counts["win"] + counts["same"] >= total * 0.4
    assert result["mean_search_reduction"] > 0.0
