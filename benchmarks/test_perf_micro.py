"""Microbenchmarks of the substrate hot paths.

These are conventional pytest-benchmark timings (many rounds) for the
pieces the optimisers hammer: GP fit/predict, Extra-Trees fit/predict,
one full surrogate step of each optimiser, and trace generation.
"""

import numpy as np
import pytest

from repro.core.augmented_bo import PairwiseTreeScorer
from repro.core.naive_bo import GPScorer
from repro.ml.extra_trees import ExtraTreesRegressor
from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import Matern52
from repro.ml.sampling import SobolSequence
from repro.trace.generate import generate_trace


@pytest.fixture(scope="module")
def gp_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(-3, 3, size=(12, 4))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1]
    return X, y


@pytest.fixture(scope="module")
def tree_data():
    rng = np.random.default_rng(1)
    X = rng.uniform(size=(200, 14))
    y = 3.0 * (X[:, 0] > 0.5) + X[:, 3] + rng.normal(0, 0.1, size=200)
    return X, y


def test_gp_fit_12_points(benchmark, gp_data):
    X, y = gp_data

    def fit():
        return GaussianProcessRegressor(Matern52(), n_restarts=0, seed=0).fit(X, y)

    benchmark(fit)


@pytest.mark.parametrize("gradient", ["analytic", "numeric"])
def test_gp_fit_by_gradient_mode(benchmark, gp_data, gradient):
    """The one-Cholesky fused value+grad path vs finite differences."""
    X, y = gp_data

    def fit():
        return GaussianProcessRegressor(
            Matern52(), n_restarts=0, seed=0, gradient=gradient
        ).fit(X, y)

    benchmark(fit)


def test_gp_lml_value_and_grad(benchmark, gp_data):
    """One fused LML value+gradient evaluation from cached geometry."""
    from repro.ml.kernels import Geometry

    X, y = gp_data
    gp = GaussianProcessRegressor(Matern52(), optimise=False, seed=0).fit(X, y)
    gp._eye = np.eye(X.shape[0])
    y_scaled = (y - y.mean()) / y.std()
    geometry = Geometry(X)
    theta = gp._packed_theta()
    benchmark(gp._lml_value_and_grad, theta, y_scaled, geometry)


def test_gp_predict_with_std(benchmark, gp_data):
    X, y = gp_data
    gp = GaussianProcessRegressor(Matern52(), n_restarts=0, seed=0).fit(X, y)
    queries = np.random.default_rng(2).uniform(-3, 3, size=(18, 4))
    benchmark(gp.predict, queries, return_std=True)


def test_extra_trees_fit_200x14(benchmark, tree_data):
    X, y = tree_data

    def fit():
        return ExtraTreesRegressor(n_estimators=30, min_samples_split=4, seed=0).fit(X, y)

    benchmark(fit)


def test_extra_trees_predict_500_rows(benchmark, tree_data):
    X, y = tree_data
    model = ExtraTreesRegressor(n_estimators=30, min_samples_split=4, seed=0).fit(X, y)
    queries = np.random.default_rng(3).uniform(size=(500, 14))
    benchmark(model.predict, queries)


def test_naive_bo_one_step(benchmark, gp_data):
    design = np.random.default_rng(4).uniform(size=(18, 4))
    scorer = GPScorer(design, seed=0)
    measured = list(range(9))
    values = np.random.default_rng(5).uniform(10, 100, size=9)
    unmeasured = list(range(9, 18))
    benchmark(scorer.score, measured, values, unmeasured)


def test_augmented_bo_one_step(benchmark, trace):
    workload_id = "kmeans/Spark 2.1/small"
    design = np.random.default_rng(6).uniform(size=(18, 4))
    scorer = PairwiseTreeScorer(design, seed=0)
    measured = list(range(9))
    values = trace.times_for(workload_id)[:9]
    measurements = [trace.measurement(workload_id, trace.catalog[i]) for i in measured]
    unmeasured = list(range(9, 18))
    benchmark(scorer.score, measured, values, measurements, unmeasured)


def test_sobol_1024_points(benchmark):
    benchmark(lambda: SobolSequence(4).generate(1024))


def test_trace_generation_full_study(benchmark):
    """Full 107x18 sweep through the performance model (one round)."""
    benchmark.pedantic(lambda: generate_trace(seed=5), rounds=1, iterations=1)
