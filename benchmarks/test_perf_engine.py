"""Performance benchmark: parallel engine + surrogate hot path.

Writes ``BENCH_perf.json`` at the repo root with

* grid wall-clock for serial vs parallel execution of a
  workloads x repeats Augmented-BO grid (plus the bit-identity check on
  the resulting cache files) and the engine's clamped worker count,
* per-step surrogate scoring time at 15 measurements for the
  full-refit configuration vs the warm-start ``refit_fraction`` path,
  including the per-step build/fit/predict breakdown, and
* full-refit fit time under the classic per-node grower vs the
  level-synchronous vectorized builder, and
* full-search wall-clock for batched (``batch_size=4``) vs sequential
  suggestions on the tree and GP paths (the ``batch`` section), and
* suggest-cycle latency across catalog sizes — the paper's 18 types,
  ``aws-large`` (210) and ``multicloud`` (390) — comparing the
  incremental query-row buffer against the legacy rebuild path, plus a
  budgeted end-to-end Hybrid-BO search on ``multicloud`` (the
  ``catalog`` section), and
* grid wall-clock for the lock-step cross-search ``--executor vector``
  driver vs the serial loop on a stopping-rule Augmented-BO grid, with
  the result bit-identity check (the ``vector`` section).

Every section records the ``cpu_count`` it ran under and whether its
parallelism-dependent numbers were ``clamped`` by the machine, so the
regression gate can judge (or skip) each in context.

Before the first write of a session the previous ``BENCH_perf.json`` is
preserved as ``BENCH_perf.prev.json`` and each section prints a
previous-vs-current delta table, so regressions are visible in CI logs.

The grid size is environment-tunable so CI can run a tiny smoke grid::

    ARROW_PERF_WORKLOADS=2 ARROW_PERF_REPEATS=2 pytest benchmarks/test_perf_engine.py -s

Speedup assertions are gated on the host actually having cores: on a
single-core container the parallel run cannot beat serial — the engine
clamps the pool to one worker and the recorded speedup is ~1.0 — so the
2x speedup is only enforced when ``os.cpu_count() >= 4``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.analysis.runner import ExperimentRunner, RunGrid
from repro.analysis.experiments import all_workload_ids
from repro.core.augmented_bo import AugmentedBO, PairwiseTreeScorer
from repro.core.naive_bo import GPScorer, NaiveBO
from repro.core.objectives import Objective
from repro.core.stopping import PredictionDeltaThreshold
from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import kernel_by_name
from repro.parallel import plan_workers, run_cells

from conftest import REPO_ROOT, show

BENCH_PATH = REPO_ROOT / "BENCH_perf.json"
BENCH_PREV_PATH = REPO_ROOT / "BENCH_perf.prev.json"

N_WORKLOADS = int(os.environ.get("ARROW_PERF_WORKLOADS", "10"))
N_REPEATS = int(os.environ.get("ARROW_PERF_REPEATS", "8"))
N_WORKERS = int(os.environ.get("ARROW_PERF_WORKERS", "4"))
N_GP_WORKLOADS = int(os.environ.get("ARROW_PERF_GP_WORKLOADS", "2"))
N_GP_REPEATS = int(os.environ.get("ARROW_PERF_GP_REPEATS", "2"))
N_BATCH_ROUNDS = int(os.environ.get("ARROW_PERF_BATCH_ROUNDS", "3"))
N_CATALOG_ROUNDS = int(os.environ.get("ARROW_PERF_CATALOG_ROUNDS", "10"))
CATALOG_E2E_BUDGET = int(os.environ.get("ARROW_PERF_CATALOG_BUDGET", "40"))
N_VECTOR_SEARCHES = int(os.environ.get("ARROW_PERF_VECTOR_SEARCHES", "16"))
N_VECTOR_ROUNDS = int(os.environ.get("ARROW_PERF_VECTOR_ROUNDS", "3"))

#: Batch size benchmarked against the sequential loop.
BATCH_Q = 4

#: Warm-start fraction used by both benchmark sections.
FAST_REFIT = 0.25

#: Measured-history size at which the surrogate hot path is profiled.
AT_MEASUREMENTS = 15

# Snapshot of the committed BENCH_perf.json, taken once per session
# before the first overwrite; None when there was nothing to preserve.
_previous_bench: dict | None = None
_previous_recorded = False


def _load_bench(path: Path) -> dict:
    if not path.exists():
        return {}
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return {}


def _snapshot_previous() -> None:
    global _previous_bench, _previous_recorded
    if _previous_recorded:
        return
    _previous_recorded = True
    existing = _load_bench(BENCH_PATH)
    if existing:
        _previous_bench = existing
        BENCH_PREV_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _merge_bench(section: str, payload: dict) -> None:
    _snapshot_previous()
    # Every section carries the machine context it was measured under:
    # the core count, and whether the machine limited ("clamped") the
    # section's parallelism-dependent numbers.  Sections with a real
    # clamp criterion set ``clamped`` themselves; the default False
    # marks purely single-threaded sections, which no machine can clamp.
    payload.setdefault("cpu_count", os.cpu_count())
    payload.setdefault("clamped", False)
    existing = _load_bench(BENCH_PATH)
    existing["generated_by"] = "benchmarks/test_perf_engine.py"
    existing["cpu_count"] = os.cpu_count()
    existing[section] = payload
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _show_delta(section: str, payload: dict) -> None:
    """Print previous-vs-current numbers for one bench section."""
    previous = (_previous_bench or {}).get(section, {})
    rows = []
    for key, current in payload.items():
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            continue
        before = previous.get(key)
        if isinstance(before, (int, float)) and not isinstance(before, bool):
            delta = f"{current / before:.2f}x" if before else "-"
            rows.append((key, f"{before:g}", f"{current:g} ({delta})"))
        else:
            rows.append((key, "-", f"{current:g}"))
    show(f"{section}: previous vs current (BENCH_perf.prev.json)", rows)


def _grid_factory(environment, objective, seed):
    return AugmentedBO(
        environment, objective=objective, seed=seed, refit_fraction=FAST_REFIT
    )


def test_parallel_grid_speedup(trace, tmp_path):
    workload_ids = tuple(all_workload_ids()[:N_WORKLOADS])
    grid = RunGrid(
        key="perf-engine",
        factory=_grid_factory,
        objective=Objective.TIME,
        workload_ids=workload_ids,
        repeats=N_REPEATS,
    )

    t0 = perf_counter()
    serial = ExperimentRunner(trace, cache_dir=tmp_path / "serial").run(
        grid, workers=1
    )
    serial_s = perf_counter() - t0

    t0 = perf_counter()
    parallel = ExperimentRunner(trace, cache_dir=tmp_path / "parallel").run(
        grid, workers=N_WORKERS
    )
    parallel_s = perf_counter() - t0

    serial_bytes = (tmp_path / "serial" / "perf-engine__time.json").read_bytes()
    parallel_bytes = (tmp_path / "parallel" / "perf-engine__time.json").read_bytes()
    bit_identical = serial_bytes == parallel_bytes
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    workers_effective = plan_workers(N_WORKERS, len(workload_ids) * N_REPEATS)
    clamped = workers_effective == 1

    payload = {
        "workloads": len(workload_ids),
        "repeats": N_REPEATS,
        "workers": N_WORKERS,
        "workers_effective": workers_effective,
        "clamped": clamped,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        # With one effective worker the "speedup" is pure timer noise
        # plus dispatch overhead; recording it would invite nonsense
        # deltas, so a clamped run records no speedup at all.
        "speedup": None if clamped else round(speedup, 3),
        "bit_identical": bit_identical,
    }
    _merge_bench("grid", payload)
    show(
        f"parallel engine ({len(workload_ids)}x{N_REPEATS} grid, "
        f"{N_WORKERS} workers -> {workers_effective} effective, "
        f"{os.cpu_count()} cores)",
        [
            ("serial wall-clock (s)", "-", f"{serial_s:.1f}"),
            ("parallel wall-clock (s)", "-", f"{parallel_s:.1f}"),
            (
                "speedup",
                ">= 2x (4+ cores)",
                "n/a (clamped)" if clamped else f"{speedup:.2f}x",
            ),
            ("caches bit-identical", "yes", "yes" if bit_identical else "NO"),
        ],
    )
    _show_delta("grid", payload)

    assert serial == parallel
    assert bit_identical
    # A clamped run (one effective worker) measures timer noise and a
    # little dispatch overhead, not parallelism: the section is marked
    # ``clamped`` and every speedup assertion is skipped — both here and
    # in scripts/check_perf_regression.py — instead of recording pool
    # overhead as a regression.
    if not clamped and (os.cpu_count() or 1) >= 4 and N_WORKERS >= 4:
        assert speedup >= 2.0


def test_surrogate_scoring_reduction(trace):
    environment = trace.environment(all_workload_ids()[0])
    environment.reset()
    catalog = list(environment.catalog)
    measured = list(range(AT_MEASUREMENTS))
    measurements = [environment.measure(catalog[index]) for index in measured]
    values = [Objective.TIME.value_of(m) for m in measurements]
    unmeasured = list(range(AT_MEASUREMENTS, len(catalog)))

    probe = AugmentedBO(environment, seed=0)
    design = probe.design_matrix

    def best_score_time(scorer: PairwiseTreeScorer, rounds: int = 5) -> float:
        """Fastest of ``rounds`` timed calls — the min is the standard
        noise-robust statistic on busy shared runners."""
        scorer.score(measured, values, measurements, unmeasured)  # warm-up
        timings = []
        for _ in range(rounds):
            t0 = perf_counter()
            scorer.score(measured, values, measurements, unmeasured)
            timings.append(perf_counter() - t0)
        return min(timings)

    def best_fit_time(scorer: PairwiseTreeScorer, rounds: int = 5) -> float:
        """Fastest per-step ensemble fit time over ``rounds`` calls."""
        scorer.score(measured, values, measurements, unmeasured)  # warm-up
        fits = []
        for _ in range(rounds):
            scorer.score(measured, values, measurements, unmeasured)
            fits.append(scorer.step_timings[-1]["fit_s"])
        return min(fits)

    full = PairwiseTreeScorer(design, seed=0)
    fast = PairwiseTreeScorer(design, seed=0, refit_fraction=FAST_REFIT)
    full_s = best_score_time(full)
    fast_s = best_score_time(fast)
    reduction = full_s / fast_s if fast_s > 0 else float("inf")

    # The tentpole comparison: the same full-refit fit under the classic
    # per-node grower vs the level-synchronous vectorized builder.
    classic_fit_s = best_fit_time(
        PairwiseTreeScorer(design, seed=0, tree_builder="classic")
    )
    vector_fit_s = best_fit_time(
        PairwiseTreeScorer(design, seed=0, tree_builder="vectorized")
    )
    builder_reduction = (
        classic_fit_s / vector_fit_s if vector_fit_s > 0 else float("inf")
    )

    payload = {
        "n_measured": AT_MEASUREMENTS,
        "n_candidates": len(unmeasured),
        "refit_fraction": FAST_REFIT,
        "full_refit_score_s": round(full_s, 6),
        "warm_refit_score_s": round(fast_s, 6),
        "reduction": round(reduction, 3),
        "classic_builder_fit_s": round(classic_fit_s, 6),
        "vectorized_builder_fit_s": round(vector_fit_s, 6),
        "builder_reduction": round(builder_reduction, 3),
        "classic_step_timings": full.step_timings[-1],
        "warm_step_timings": fast.step_timings[-1],
    }
    _merge_bench("surrogate", payload)
    show(
        f"surrogate scoring at {AT_MEASUREMENTS} measurements",
        [
            ("full-refit score (ms)", "-", f"{full_s * 1e3:.1f}"),
            ("warm-refit score (ms)", "-", f"{fast_s * 1e3:.1f}"),
            ("warm-start reduction", ">= 3x", f"{reduction:.2f}x"),
            ("classic-builder fit (ms)", "-", f"{classic_fit_s * 1e3:.1f}"),
            ("vectorized-builder fit (ms)", "-", f"{vector_fit_s * 1e3:.1f}"),
            ("builder reduction", ">= 4x", f"{builder_reduction:.2f}x"),
        ],
    )
    _show_delta("surrogate", payload)
    assert reduction >= 3.0
    assert builder_reduction >= 4.0


#: The paper's Figure 7 kernel sweep: Naive BO under each of the four.
FIG7_KERNELS = ("rbf", "matern12", "matern32", "matern52")


def _naive_grid(kernel_name: str, gradient: str, workload_ids) -> RunGrid:
    def factory(environment, objective, seed):
        return NaiveBO(
            environment,
            objective=objective,
            seed=seed,
            kernel=kernel_by_name(kernel_name),
            gp_gradient=gradient,
        )

    return RunGrid(
        key=f"perf-gp-{kernel_name}-{gradient}",
        factory=factory,
        objective=Objective.TIME,
        workload_ids=workload_ids,
        repeats=N_GP_REPEATS,
    )


def test_gp_hot_path(trace):
    environment = trace.environment(all_workload_ids()[0])
    environment.reset()
    catalog = list(environment.catalog)
    measured = list(range(AT_MEASUREMENTS))
    measurements = [environment.measure(catalog[index]) for index in measured]
    values = np.array([Objective.TIME.value_of(m) for m in measurements])
    unmeasured = list(range(AT_MEASUREMENTS, len(catalog)))

    design = NaiveBO(environment, seed=0).design_matrix
    scale = design.std(axis=0)
    X = (design - design.mean(axis=0)) / np.where(scale > 0, scale, 1.0)
    X_measured = X[measured]

    # -- hyperparameter-fit micro-benchmark: fresh GP per round so the
    # warm start cannot flatten the comparison.
    def best_fit(gradient: str, rounds: int = 5) -> tuple[float, int, int]:
        timings, gp = [], None
        for _ in range(rounds + 1):  # first round is the warm-up
            gp = GaussianProcessRegressor(
                kernel_by_name("matern52"), seed=0, gradient=gradient
            )
            t0 = perf_counter()
            gp.fit(X_measured, values)
            timings.append(perf_counter() - t0)
        return min(timings[1:]), gp.n_lml_evals, gp.n_kernel_builds

    fit_s, lml_analytic, builds_analytic = best_fit("analytic")
    fit_numeric_s, lml_numeric, builds_numeric = best_fit("numeric")
    builds_reduction = builds_numeric / builds_analytic

    # -- per-step scorer time (fit + incremental cross-covariance predict).
    def best_score(gradient: str, rounds: int = 5) -> float:
        scorer = GPScorer(design, seed=0, gradient=gradient)
        scorer.score(measured, values, unmeasured)  # warm-up
        timings = []
        for _ in range(rounds):
            t0 = perf_counter()
            scorer.score(measured, values, unmeasured)
            timings.append(perf_counter() - t0)
        return min(timings)

    score_s = best_score("analytic")
    score_numeric_s = best_score("numeric")

    # -- end-to-end Figure 7 kernel-fragility grid, analytic vs numeric.
    workload_ids = tuple(all_workload_ids()[:N_GP_WORKLOADS])
    grid_s = {}
    for gradient in ("analytic", "numeric"):
        t0 = perf_counter()
        for kernel_name in FIG7_KERNELS:
            ExperimentRunner(trace, cache_dir=None).run(
                _naive_grid(kernel_name, gradient, workload_ids)
            )
        grid_s[gradient] = perf_counter() - t0
    grid_speedup = grid_s["numeric"] / grid_s["analytic"]

    payload = {
        "n_measured": AT_MEASUREMENTS,
        "fit_s": round(fit_s, 6),
        "fit_numeric_s": round(fit_numeric_s, 6),
        "fit_speedup": round(fit_numeric_s / fit_s, 3),
        "lml_evals_analytic": lml_analytic,
        "lml_evals_numeric": lml_numeric,
        "kernel_builds_analytic": builds_analytic,
        "kernel_builds_numeric": builds_numeric,
        "builds_reduction": round(builds_reduction, 3),
        "score_s": round(score_s, 6),
        "score_numeric_s": round(score_numeric_s, 6),
        "grid_kernels": len(FIG7_KERNELS),
        "grid_workloads": len(workload_ids),
        "grid_repeats": N_GP_REPEATS,
        "grid_analytic_s": round(grid_s["analytic"], 3),
        "grid_numeric_s": round(grid_s["numeric"], 3),
        "grid_speedup": round(grid_speedup, 3),
    }
    _merge_bench("gp", payload)
    show(
        f"GP hot path at {AT_MEASUREMENTS} measurements "
        f"(Fig. 7 grid: {len(FIG7_KERNELS)} kernels x {len(workload_ids)} "
        f"workloads x {N_GP_REPEATS} repeats)",
        [
            ("analytic fit (ms)", "-", f"{fit_s * 1e3:.1f}"),
            ("numeric fit (ms)", "-", f"{fit_numeric_s * 1e3:.1f}"),
            ("kernel builds / fit", ">= 3x fewer", f"{builds_analytic} vs {builds_numeric}"),
            ("analytic score (ms)", "-", f"{score_s * 1e3:.1f}"),
            ("numeric score (ms)", "-", f"{score_numeric_s * 1e3:.1f}"),
            ("grid analytic (s)", "-", f"{grid_s['analytic']:.1f}"),
            ("grid numeric (s)", "-", f"{grid_s['numeric']:.1f}"),
            ("grid speedup", ">= 2x", f"{grid_speedup:.2f}x"),
        ],
    )
    _show_delta("gp", payload)
    assert builds_reduction >= 3.0
    assert grid_speedup >= 2.0


def test_batch_suggestions(trace):
    """q-point suggestions vs the sequential loop, at catalog scale.

    A full search over the 18-VM catalog fits the surrogate once per
    acquisition round; ``batch_size=q`` measures q suggestions per round,
    so the fit count — the dominant per-step cost against microsecond
    trace measurements — drops by ~q x.  The fan-out is the inline
    serial one, so the reduction below is pure suggest-cycle savings;
    concurrent measurement (``--batch-workers``) stacks on top of it on
    real clouds.
    """
    workload_id = all_workload_ids()[0]

    def best_search(optimizer_cls, q: int) -> tuple[float, int, int]:
        """(fastest wall-clock, surrogate fits, suggestions) of a full search."""
        timings, fits, steps = [], 0, 0
        for _ in range(N_BATCH_ROUNDS + 1):  # first round is the warm-up
            environment = trace.environment(workload_id)
            optimizer = optimizer_cls(environment, seed=0, batch_size=q)
            t0 = perf_counter()
            result = optimizer.run()
            timings.append(perf_counter() - t0)
            fits = sum(1 for e in result.events if e.kind == "surrogate_fitted")
            steps = len(result.steps)
        return min(timings[1:]), fits, steps

    q1_s, q1_fits, q1_steps = best_search(AugmentedBO, 1)
    q4_s, q4_fits, q4_steps = best_search(AugmentedBO, BATCH_Q)
    gp_q1_s, _, _ = best_search(NaiveBO, 1)
    gp_q4_s, _, _ = best_search(NaiveBO, BATCH_Q)
    reduction = q1_s / q4_s if q4_s > 0 else float("inf")
    gp_reduction = gp_q1_s / gp_q4_s if gp_q4_s > 0 else float("inf")
    clamped = (os.cpu_count() or 1) < 2

    payload = {
        "q": BATCH_Q,
        "suggestions": q1_steps,
        "clamped": clamped,
        "q1_s": round(q1_s, 6),
        "q4_s": round(q4_s, 6),
        "reduction": round(reduction, 3),
        "q1_fits": q1_fits,
        "q4_fits": q4_fits,
        "q1_suggestions_per_s": round(q1_steps / q1_s, 3) if q1_s > 0 else None,
        "q4_suggestions_per_s": round(q4_steps / q4_s, 3) if q4_s > 0 else None,
        "gp_q1_s": round(gp_q1_s, 6),
        "gp_q4_s": round(gp_q4_s, 6),
        "gp_reduction": round(gp_reduction, 3),
    }
    _merge_bench("batch", payload)
    show(
        f"batched suggestions (q={BATCH_Q}, full {q1_steps}-VM searches)",
        [
            ("tree q=1 wall-clock (ms)", "-", f"{q1_s * 1e3:.1f}"),
            (f"tree q={BATCH_Q} wall-clock (ms)", "-", f"{q4_s * 1e3:.1f}"),
            ("tree reduction", ">= 1.8x", f"{reduction:.2f}x"),
            ("surrogate fits", f"{q1_fits} -> ~1/{BATCH_Q}", f"{q4_fits}"),
            ("gp q=1 wall-clock (ms)", "-", f"{gp_q1_s * 1e3:.1f}"),
            (f"gp q={BATCH_Q} wall-clock (ms)", "-", f"{gp_q4_s * 1e3:.1f}"),
            ("gp reduction", "-", f"{gp_reduction:.2f}x"),
        ],
    )
    _show_delta("batch", payload)

    # Both modes exhaust the same catalog; q batching must not change
    # coverage, only the number of acquisition rounds.
    assert q1_steps == q4_steps
    assert q4_fits < q1_fits
    if not clamped:
        assert reduction >= 1.8


#: Catalogs profiled by the candidate-scale section, with the short key
#: prefix each one's metrics use in the ``catalog`` payload.
CATALOG_SIZES = (("aws-2017", "small"), ("aws-large", "large"), ("multicloud", "multi"))


def test_catalog_scaling():
    """Suggest-cycle latency as the candidate axis grows 18 -> 210 -> 390.

    At a fixed measured history the scorer's query phase — assembling
    and scaling one (candidates x sources) row block per score call —
    is the part that grows with the catalog.  The incremental
    ``query_mode`` serves it from a preallocated scaled buffer instead
    of rebuilding with ``repeat``/``tile`` every call; both modes are
    bit-identical, so the comparison below is pure assembly cost.  The
    end-to-end number is a budgeted seeded Hybrid-BO search on the
    390-type ``multicloud`` catalog: large catalogs stay searchable
    under a measurement budget.
    """
    from repro.core.hybrid_bo import HybridBO
    from repro.trace.generate import canonical_trace

    workload_id = all_workload_ids()[0]
    payload: dict = {"history": AT_MEASUREMENTS - 3, "rounds": N_CATALOG_ROUNDS}
    history = AT_MEASUREMENTS - 3  # 12: late enough to be in tree phase
    rows = []
    for catalog_name, prefix in CATALOG_SIZES:
        bench_trace = canonical_trace(catalog_name)
        environment = bench_trace.environment(workload_id)
        environment.reset()
        catalog = list(environment.catalog)
        measured = list(range(history))
        measurements = [environment.measure(catalog[i]) for i in measured]
        values = [Objective.TIME.value_of(m) for m in measurements]
        unmeasured = list(range(history, len(catalog)))
        design = AugmentedBO(environment, seed=0).design_matrix

        mode_stats: dict = {}
        for mode in ("incremental", "rebuild"):
            scorer = PairwiseTreeScorer(design, seed=0, query_mode=mode)
            first = scorer.score(measured, values, measurements, unmeasured)
            best_suggest = best_query = float("inf")
            for _ in range(N_CATALOG_ROUNDS):
                t0 = perf_counter()
                scorer.score(measured, values, measurements, unmeasured)
                best_suggest = min(best_suggest, perf_counter() - t0)
                best_query = min(best_query, scorer.step_timings[-1]["query_s"])
            mode_stats[mode] = (best_suggest, best_query, first.scores)

        suggest_s, query_s, scores = mode_stats["incremental"]
        rebuild_suggest_s, rebuild_query_s, rebuild_scores = mode_stats["rebuild"]
        speedup = rebuild_query_s / query_s if query_s > 0 else float("inf")
        identical = bool(np.array_equal(scores, rebuild_scores))
        payload[f"{prefix}_candidates"] = len(unmeasured)
        payload[f"{prefix}_suggest_s"] = round(suggest_s, 6)
        payload[f"{prefix}_suggest_rebuild_s"] = round(rebuild_suggest_s, 6)
        payload[f"{prefix}_query_s"] = round(query_s, 6)
        payload[f"{prefix}_query_rebuild_s"] = round(rebuild_query_s, 6)
        payload[f"{prefix}_query_speedup"] = round(speedup, 3)
        payload[f"{prefix}_bit_identical"] = identical
        rows.append(
            (
                f"{catalog_name} ({len(unmeasured)} candidates)",
                ">= 2x (200+)" if len(unmeasured) >= 200 else "-",
                f"query {query_s * 1e6:.0f}us vs {rebuild_query_s * 1e6:.0f}us "
                f"({speedup:.2f}x), identical: {'yes' if identical else 'NO'}",
            )
        )

    # End-to-end: a full seeded budgeted search over the largest catalog.
    e2e_trace = canonical_trace("multicloud")
    optimizer = HybridBO(
        e2e_trace.environment(workload_id),
        seed=0,
        max_measurements=CATALOG_E2E_BUDGET,
    )
    t0 = perf_counter()
    result = optimizer.run()
    e2e_s = perf_counter() - t0
    payload["e2e_multicloud_budget"] = CATALOG_E2E_BUDGET
    payload["e2e_multicloud_s"] = round(e2e_s, 3)
    payload["e2e_multicloud_steps"] = len(result.steps)
    rows.append(
        (
            f"multicloud e2e ({CATALOG_E2E_BUDGET}-measurement budget)",
            "completes",
            f"{e2e_s:.2f}s, {len(result.steps)} steps",
        )
    )

    _merge_bench("catalog", payload)
    show(f"catalog scaling at {history} measurements", rows)
    _show_delta("catalog", payload)

    # Correctness first: the fast path must not change a single score.
    assert payload["small_bit_identical"]
    assert payload["large_bit_identical"]
    assert payload["multi_bit_identical"]
    # The perf contract: incremental query assembly at 200+ candidates
    # beats the repeat/tile rebuild by at least 2x.
    assert payload["multi_query_speedup"] >= 2.0
    assert len(result.steps) == CATALOG_E2E_BUDGET


def _vector_factory(environment, objective, seed):
    # The paper's own configuration: full-refit vectorized Extra-Trees
    # with the prediction-delta stopping rule.  The stopping rule is
    # what keeps every search in the small-m, dispatch-bound regime
    # (most stop within ~5-9 measurements) where cross-search stacking
    # pays; fixed-depth searches drift compute-bound and converge to ~1x.
    return AugmentedBO(
        environment,
        objective=objective,
        seed=seed,
        stopping=PredictionDeltaThreshold(),
    )


def test_vectorized_grid_reduction(trace):
    """Lock-step cross-search stepping vs the serial cell loop.

    Both executors run the identical stopping-rule Augmented-BO grid
    through :func:`repro.parallel.run_cells`; the ``vector`` backend
    advances all ``S`` searches together and batches each round's
    ensemble growth (one stacked frontier), candidate prediction (one
    packed traversal across all ensembles) and scoring.  The results
    must be bit-identical — the reduction is pure dispatch amortisation.

    The floor does not need multiple cores (everything is
    single-threaded numpy batching), but a 1-core runner is marked
    ``clamped`` for the regression gate's benefit, matching the other
    machine-dependent sections.
    """
    workload_ids = all_workload_ids()
    cells = [
        (workload_ids[index % len(workload_ids)], index // len(workload_ids))
        for index in range(N_VECTOR_SEARCHES)
    ]

    def best_run(executor: str) -> tuple[float, list]:
        results, best = [], float("inf")
        for _ in range(N_VECTOR_ROUNDS + 1):  # first round is the warm-up
            t0 = perf_counter()
            results = list(
                run_cells(
                    trace=trace,
                    factory=_vector_factory,
                    objective=Objective.TIME,
                    cells=cells,
                    workers=1,
                    executor=executor,
                )
            )
            best = min(best, perf_counter() - t0)
        return best, results

    serial_s, serial_results = best_run("serial")
    vector_s, vector_results = best_run("vector")
    grid_reduction = serial_s / vector_s if vector_s > 0 else float("inf")
    bit_identical = [cell for cell, _ in vector_results] == cells and all(
        serial_result == vector_result
        for (_, serial_result), (_, vector_result) in zip(
            serial_results, vector_results
        )
    )
    clamped = (os.cpu_count() or 1) < 2
    steps = sum(len(result.steps) for _, result in serial_results)

    payload = {
        "searches": N_VECTOR_SEARCHES,
        "rounds": N_VECTOR_ROUNDS,
        "total_measurements": steps,
        "clamped": clamped,
        "serial_s": round(serial_s, 6),
        "vector_s": round(vector_s, 6),
        "grid_reduction": round(grid_reduction, 3),
        "bit_identical": bit_identical,
    }
    _merge_bench("vector", payload)
    show(
        f"vectorized lock-step grid ({N_VECTOR_SEARCHES} stopping-rule "
        f"searches, {steps} total measurements)",
        [
            ("serial wall-clock (ms)", "-", f"{serial_s * 1e3:.1f}"),
            ("vector wall-clock (ms)", "-", f"{vector_s * 1e3:.1f}"),
            ("grid reduction", ">= 2x (S>=8)", f"{grid_reduction:.2f}x"),
            ("results bit-identical", "yes", "yes" if bit_identical else "NO"),
        ],
    )
    _show_delta("vector", payload)

    # Correctness is unconditional: lock-step batching must not change
    # one bit of any search result.
    assert bit_identical
    if N_VECTOR_SEARCHES >= 8 and not clamped:
        assert grid_reduction >= 2.0
