"""Performance benchmark: parallel engine + surrogate hot path.

Writes ``BENCH_perf.json`` at the repo root with

* grid wall-clock for serial vs parallel execution of a
  workloads x repeats Augmented-BO grid (plus the bit-identity check on
  the resulting cache files), and
* per-step surrogate scoring time at 15 measurements for the classic
  full-refit configuration vs the warm-start ``refit_fraction`` path,
  including the per-step build/fit/predict breakdown.

The grid size is environment-tunable so CI can run a tiny smoke grid::

    ARROW_PERF_WORKLOADS=2 ARROW_PERF_REPEATS=2 pytest benchmarks/test_perf_engine.py -s

Speedup assertions are gated on the host actually having cores: on a
single-core container the parallel run cannot beat serial, so the
benchmark records the measured numbers honestly and only enforces the
2x speedup when ``os.cpu_count() >= 4``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter

from repro.analysis.runner import ExperimentRunner, RunGrid
from repro.analysis.experiments import all_workload_ids
from repro.core.augmented_bo import AugmentedBO, PairwiseTreeScorer
from repro.core.objectives import Objective

from conftest import REPO_ROOT, show

BENCH_PATH = REPO_ROOT / "BENCH_perf.json"

N_WORKLOADS = int(os.environ.get("ARROW_PERF_WORKLOADS", "10"))
N_REPEATS = int(os.environ.get("ARROW_PERF_REPEATS", "8"))
N_WORKERS = int(os.environ.get("ARROW_PERF_WORKERS", "4"))

#: Warm-start fraction used by both benchmark sections.
FAST_REFIT = 0.25

#: Measured-history size at which the surrogate hot path is profiled.
AT_MEASUREMENTS = 15


def _merge_bench(section: str, payload: dict) -> None:
    existing = {}
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except json.JSONDecodeError:
            existing = {}
    existing["generated_by"] = "benchmarks/test_perf_engine.py"
    existing["cpu_count"] = os.cpu_count()
    existing[section] = payload
    BENCH_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _grid_factory(environment, objective, seed):
    return AugmentedBO(
        environment, objective=objective, seed=seed, refit_fraction=FAST_REFIT
    )


def test_parallel_grid_speedup(trace, tmp_path):
    workload_ids = tuple(all_workload_ids()[:N_WORKLOADS])
    grid = RunGrid(
        key="perf-engine",
        factory=_grid_factory,
        objective=Objective.TIME,
        workload_ids=workload_ids,
        repeats=N_REPEATS,
    )

    t0 = perf_counter()
    serial = ExperimentRunner(trace, cache_dir=tmp_path / "serial").run(
        grid, workers=1
    )
    serial_s = perf_counter() - t0

    t0 = perf_counter()
    parallel = ExperimentRunner(trace, cache_dir=tmp_path / "parallel").run(
        grid, workers=N_WORKERS
    )
    parallel_s = perf_counter() - t0

    serial_bytes = (tmp_path / "serial" / "perf-engine__time.json").read_bytes()
    parallel_bytes = (tmp_path / "parallel" / "perf-engine__time.json").read_bytes()
    bit_identical = serial_bytes == parallel_bytes
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")

    _merge_bench(
        "grid",
        {
            "workloads": len(workload_ids),
            "repeats": N_REPEATS,
            "workers": N_WORKERS,
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(speedup, 3),
            "bit_identical": bit_identical,
        },
    )
    show(
        f"parallel engine ({len(workload_ids)}x{N_REPEATS} grid, "
        f"{N_WORKERS} workers, {os.cpu_count()} cores)",
        [
            ("serial wall-clock (s)", "-", f"{serial_s:.1f}"),
            ("parallel wall-clock (s)", "-", f"{parallel_s:.1f}"),
            ("speedup", ">= 2x (4+ cores)", f"{speedup:.2f}x"),
            ("caches bit-identical", "yes", "yes" if bit_identical else "NO"),
        ],
    )

    assert serial == parallel
    assert bit_identical
    if (os.cpu_count() or 1) >= 4 and N_WORKERS >= 4:
        assert speedup >= 2.0


def test_surrogate_scoring_reduction(trace):
    environment = trace.environment(all_workload_ids()[0])
    environment.reset()
    catalog = list(environment.catalog)
    measured = list(range(AT_MEASUREMENTS))
    measurements = [environment.measure(catalog[index]) for index in measured]
    values = [Objective.TIME.value_of(m) for m in measurements]
    unmeasured = list(range(AT_MEASUREMENTS, len(catalog)))

    probe = AugmentedBO(environment, seed=0)
    design = probe.design_matrix

    def best_score_time(scorer: PairwiseTreeScorer, rounds: int = 5) -> float:
        """Fastest of ``rounds`` timed calls — the min is the standard
        noise-robust statistic on busy shared runners."""
        scorer.score(measured, values, measurements, unmeasured)  # warm-up
        timings = []
        for _ in range(rounds):
            t0 = perf_counter()
            scorer.score(measured, values, measurements, unmeasured)
            timings.append(perf_counter() - t0)
        return min(timings)

    classic = PairwiseTreeScorer(design, seed=0)
    fast = PairwiseTreeScorer(design, seed=0, refit_fraction=FAST_REFIT)
    classic_s = best_score_time(classic)
    fast_s = best_score_time(fast)
    reduction = classic_s / fast_s if fast_s > 0 else float("inf")

    _merge_bench(
        "surrogate",
        {
            "n_measured": AT_MEASUREMENTS,
            "n_candidates": len(unmeasured),
            "refit_fraction": FAST_REFIT,
            "full_refit_score_s": round(classic_s, 6),
            "warm_refit_score_s": round(fast_s, 6),
            "reduction": round(reduction, 3),
            "classic_step_timings": classic.step_timings[-1],
            "warm_step_timings": fast.step_timings[-1],
        },
    )
    show(
        f"surrogate scoring at {AT_MEASUREMENTS} measurements",
        [
            ("full-refit score (ms)", "-", f"{classic_s * 1e3:.1f}"),
            ("warm-refit score (ms)", "-", f"{fast_s * 1e3:.1f}"),
            ("reduction", ">= 3x", f"{reduction:.2f}x"),
        ],
    )
    assert reduction >= 3.0
