"""Section III-C: Naive BO is sensitive to the initial design.

Paper: with one triple of initial VMs about 15% of workloads miss the
optimum within six attempts; with a different triple the same search
succeeds — so the initial points dramatically affect BO.
"""

from conftest import show

from repro.analysis.experiments import sec3c_initial_points


def test_sec3c_initial_points(benchmark, runner):
    result = benchmark.pedantic(
        sec3c_initial_points, args=(runner,), rounds=1, iterations=1
    )

    show(
        "Section III-C — initial-point sensitivity (time objective)",
        [
            (
                f"unsolved at 6 with clustered init {result['bad_initial']}",
                "~15%",
                f"{result['bad_unsolved_at_6']:.0%}",
            ),
            (
                f"unsolved at 6 with distinct init {result['good_initial']}",
                "much lower",
                f"{result['good_unsolved_at_6']:.0%}",
            ),
        ],
    )

    # Shape: the clustered design leaves notably more workloads unsolved.
    assert result["bad_unsolved_at_6"] > result["good_unsolved_at_6"]
    assert result["bad_unsolved_at_6"] >= 0.08
