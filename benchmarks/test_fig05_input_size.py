"""Figure 5: the same application with different input sizes favours
different VM types.

Paper: e.g. m4.2xlarge is the most cost-effective VM for bayes at the
small input but loses its optimality at the large input.
"""

from conftest import show

from repro.analysis.experiments import fig5_input_size


def test_fig5_input_size(benchmark, runner):
    result = benchmark.pedantic(fig5_input_size, args=(runner,), rounds=1, iterations=1)

    show(
        "Figure 5 — optimal VM moves with input size",
        [
            ("(application, framework) pairs", "38", str(result["n_app_framework_pairs"])),
            (
                "pairs whose best-cost VM changes with size",
                "many",
                str(result["changed_best_cost"]),
            ),
            (
                "pairs whose best-time VM changes with size",
                "many",
                str(result["changed_best_time"]),
            ),
        ],
    )
    for example in result["examples"]:
        print(
            f"  {example['application']}/{example['framework']}: "
            f"{example['best_cost_by_size']}"
        )

    # Shape: optima move with scale for a substantial share of pairs.
    assert result["changed_best_cost"] >= result["n_app_framework_pairs"] * 0.3
    assert result["examples"]
