"""Ablations of Augmented BO's design choices (DESIGN.md section 5).

Two questions the paper's design section raises but does not isolate:

1. **Do the low-level metrics actually help**, or is the gain from the
   Extra-Trees + Prediction-Delta machinery alone?  We re-run Augmented
   BO with the metrics replaced by constants — everything else equal —
   and compare search cost to the optimum.
2. **Does the relational (log-ratio) target help** versus the literal
   absolute-performance target of Algorithm 2?

Both ablations run on a diverse workload slice with several repeats.
"""

import numpy as np
import pytest
from conftest import show

from repro.analysis.experiments import all_workload_ids, augmented_factory
from repro.analysis.runner import RunGrid
from repro.core.augmented_bo import AugmentedBO
from repro.core.objectives import Objective
from repro.simulator.cluster import Measurement
from repro.simulator.lowlevel import LowLevelMetrics

SLICE = all_workload_ids()[::8]  # 14 workloads
REPEATS = 4

_BLANK_METRICS = LowLevelMetrics(50.0, 50.0, 8.0, 50.0, 50.0, 10.0)


class BlindAugmentedBO(AugmentedBO):
    """Augmented BO with the low-level metrics blanked out."""

    name = "augmented-bo-blind"

    @property
    def measured_measurements(self):
        return [
            Measurement(
                vm=m.vm,
                execution_time_s=m.execution_time_s,
                cost_usd=m.cost_usd,
                metrics=_BLANK_METRICS,
            )
            for m in super().measured_measurements
        ]


def blind_factory(environment, objective, seed):
    return BlindAugmentedBO(environment, objective=objective, seed=seed)


def median_costs(runner, key, factory, objective=Objective.TIME):
    grid = RunGrid(
        key=key, factory=factory, objective=objective,
        workload_ids=SLICE, repeats=REPEATS,
    )
    results = runner.run(grid)
    costs = runner.costs_to_optimum(results, objective)
    per_workload = [
        float(np.median([18 if c is None else c for c in cs])) for cs in costs.values()
    ]
    return float(np.mean(per_workload))


def test_ablation_low_level_metrics(benchmark, runner):
    """Blanking the metrics must make the search more expensive."""

    def run():
        full = median_costs(runner, "ablation-augmented-full", augmented_factory())
        blind = median_costs(runner, "ablation-augmented-blind", blind_factory)
        return full, blind

    full, blind = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — low-level metrics",
        [
            ("mean median search cost, full metrics", "(lower)", f"{full:.2f}"),
            ("mean median search cost, blanked metrics", "(higher)", f"{blind:.2f}"),
        ],
    )
    assert full <= blind + 0.35, (
        "low-level metrics should not hurt; expected full <= blind"
    )


def test_ablation_relational_target(benchmark, runner):
    """Compare relational (log-ratio) vs absolute surrogate targets."""

    def run():
        relational = median_costs(
            runner, "ablation-augmented-full", augmented_factory()
        )
        absolute = median_costs(
            runner, "ablation-augmented-absolute", augmented_factory(relational=False)
        )
        return relational, absolute

    relational, absolute = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — relational vs absolute targets",
        [
            ("mean median search cost, relational", "(comparable)", f"{relational:.2f}"),
            ("mean median search cost, absolute", "(comparable)", f"{absolute:.2f}"),
        ],
    )
    # Informational ablation: both must at least work end to end.
    assert relational < 10 and absolute < 12
