"""Figure 8: low-level metrics expose a memory bottleneck.

Paper: running logistic regression, c3.large is 14.8x slower than the
best VM and its memory pressure / CPU utilisation profile reveals why —
the kind of signal the published instance features cannot carry.
"""

from conftest import show

from repro.analysis.experiments import fig8_memory_bottleneck


def test_fig8_memory_bottleneck(benchmark, runner):
    result = benchmark.pedantic(
        fig8_memory_bottleneck, args=(runner,), rounds=1, iterations=1
    )
    rows = result["rows"]
    slowest = rows[0]
    fastest = rows[-1]

    show(
        f"Figure 8 — memory bottleneck for {result['workload']}",
        [
            ("slowest VM", "c3.large (14.8x)", f"{slowest['vm']} ({slowest['normalised_time']:.1f}x)"),
            ("slowest VM memory commit", ">100%", f"{slowest['mem_commit_pct']:.0f}%"),
            ("fastest VM", "c4.2xlarge (1.0x)", f"{fastest['vm']} ({fastest['normalised_time']:.1f}x)"),
            ("fastest VM memory commit", "<100%", f"{fastest['mem_commit_pct']:.0f}%"),
        ],
    )
    print(f"{'VM':<12} {'norm time':>9} {'mem%':>6} {'iowait%':>8} {'cpu%':>6}")
    for row in rows:
        print(
            f"{row['vm']:<12} {row['normalised_time']:>9.1f} {row['mem_commit_pct']:>6.0f}"
            f" {row['cpu_iowait_pct']:>8.1f} {row['cpu_user_pct']:>6.1f}"
        )

    # Shape: small compute VMs thrash (order-of-magnitude slowdown with
    # saturated memory commit); large-memory VMs do not.
    assert slowest["vm"] in {"c3.large", "c4.large"}
    assert slowest["normalised_time"] > 5
    assert slowest["mem_commit_pct"] > 110
    assert fastest["mem_commit_pct"] < 100

    # The metrics separate paging VMs from healthy ones.
    paging = [r for r in rows if r["mem_commit_pct"] > 110]
    healthy = [r for r in rows if r["mem_commit_pct"] < 90]
    assert paging and healthy
    assert min(r["normalised_time"] for r in paging) > max(
        r["normalised_time"] for r in healthy
    ) * 0.9
