"""Robustness benchmark: search cost under rising measurement-failure rates.

Not a figure from the paper — a fault matrix for the fault-tolerant
measurement layer: Naive BO vs Augmented BO on one workload, with the
transient-failure rate swept from 0 to 40%.  The searches must complete
at every rate (degrading, not dying), and the *charged* cost — failed
attempts included — is the honest price of searching a flaky cloud.

The spot section compares the charged cost of the same search under
three pricing regimes — on-demand, pure spot (never falls back), and
spot with the on-demand fallback ladder — and records the result in
the ``spot`` section of ``BENCH_perf.json``, where
``scripts/check_perf_regression.py`` holds the saving ratio to a
>= 1.05x floor.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from conftest import REPO_ROOT, show
from repro.cloud.spot import SpotMarket, SpotPolicy
from repro.core.augmented_bo import AugmentedBO
from repro.core.naive_bo import NaiveBO
from repro.core.stopping import PredictionDeltaThreshold
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SpotInterruptions,
    TransientTimeouts,
)

WORKLOAD = "kmeans/Spark 2.1/small"
RATES = (0.0, 0.2, 0.4)
METHODS = (("naive-bo", NaiveBO), ("augmented-bo", AugmentedBO))


def run_search(trace, cls, rate: float, seed: int):
    environment = trace.environment(WORKLOAD)
    if rate > 0:
        plan = FaultPlan((TransientTimeouts(rate=rate),), seed=17 + seed)
        environment = FaultInjector(environment, plan)
    return cls(
        environment,
        stopping=PredictionDeltaThreshold(threshold=1.1),
        retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=1.0),
        seed=seed,
    ).run()


@pytest.mark.parametrize("method_name,cls", METHODS, ids=[m for m, _ in METHODS])
def test_search_degrades_gracefully_under_faults(trace, method_name, cls):
    optimum = trace.times_for(WORKLOAD).min()
    rows = []
    charged_by_rate = {}
    for rate in RATES:
        results = [run_search(trace, cls, rate, seed) for seed in range(3)]
        charged = [r.charged_cost for r in results]
        charged_by_rate[rate] = sum(charged) / len(charged)
        ratios = [r.best_value / optimum for r in results]
        rows.append(
            (
                f"{method_name} @ {rate:.0%} failure rate",
                "completes",
                f"charged {charged_by_rate[rate]:.1f}, "
                f"best {max(ratios):.2f}x opt",
            )
        )
        for result in results:
            # Degrade, never die: every search ends with a usable result.
            assert result.search_cost >= 1
            assert result.charged_cost >= result.search_cost
            assert result.best_value / optimum < 2.0
        if rate == 0.0:
            assert all(r.failure_count == 0 for r in results)
        else:
            assert any(r.failure_count > 0 for r in results)
    show(f"fault matrix — {method_name}", rows)
    # Failures make search strictly more expensive in charged attempts.
    assert charged_by_rate[RATES[-1]] > charged_by_rate[0.0]


def test_fault_matrix_is_deterministic(trace):
    a = run_search(trace, NaiveBO, 0.4, seed=1)
    b = run_search(trace, NaiveBO, 0.4, seed=1)
    assert a == b


# -- spot pricing ----------------------------------------------------------

SPOT_MARKET_SEED = 11
SPOT_SEEDS = (0, 1, 2)


def _store_bench(section: str, payload: dict) -> None:
    bench_path = REPO_ROOT / "BENCH_perf.json"
    bench = {}
    if bench_path.exists():
        try:
            bench = json.loads(bench_path.read_text())
        except json.JSONDecodeError:
            bench = {}
    payload.setdefault("cpu_count", os.cpu_count())
    payload.setdefault("clamped", False)
    bench[section] = payload
    bench_path.write_text(json.dumps(bench, indent=2) + "\n")


def run_spot_search(trace, seed: int, policy: SpotPolicy | None):
    """One Augmented BO search; spot pricing when ``policy`` is given.

    The spot runs layer a market-driven revocation plan over the same
    environment; objective values are untouched (the trace stays ground
    truth), so only the charge accounting and retry ladder differ.
    """
    environment = trace.environment(WORKLOAD)
    if policy is not None:
        plan = FaultPlan(
            (SpotInterruptions(market=policy.market),),
            seed=SPOT_MARKET_SEED + seed,
        )
        environment = plan.injector(environment)
    return AugmentedBO(
        environment,
        stopping=PredictionDeltaThreshold(threshold=1.1),
        measure_retries=6,
        seed=seed,
        spot=policy,
    ).run()


def _policy(**overrides) -> SpotPolicy:
    # Hazard boosted above the default so revocations (and the fallback
    # ladder) actually fire within the benchmark's short searches; the
    # default market rarely revokes twice on one VM here.
    market = SpotMarket(seed=SPOT_MARKET_SEED, base_hazard=0.25, hazard_slope=0.5)
    return SpotPolicy(market=market, **overrides)


def test_spot_pricing_saves_charged_cost(trace):
    def mean_charged(policy_for) -> float:
        charges = [
            run_spot_search(trace, seed, policy_for()).charged_cost
            for seed in SPOT_SEEDS
        ]
        return sum(charges) / len(charges)

    on_demand_cost = mean_charged(lambda: None)
    # A fallback threshold no 6-retry ladder can reach: pure spot.
    spot_cost = mean_charged(lambda: _policy(fallback_after=1_000_000))
    spot_fallback_cost = mean_charged(lambda: _policy())
    saving_ratio = on_demand_cost / spot_fallback_cost

    show("spot pricing — augmented-bo charged cost", [
        ("on-demand", "baseline", f"{on_demand_cost:.2f}"),
        ("spot (no fallback)", "discounted", f"{spot_cost:.2f}"),
        ("spot + fallback", "discounted", f"{spot_fallback_cost:.2f}"),
        ("saving ratio", ">= 1.05 floor", f"{saving_ratio:.2f}x"),
    ])

    # Spot discounts must beat unit billing even after revocation churn
    # and partial-charge retries; the perf gate pins the same floor.
    assert saving_ratio >= 1.05
    assert spot_cost < on_demand_cost

    _store_bench("spot", {
        "workload": WORKLOAD,
        "seeds": len(SPOT_SEEDS),
        "on_demand_cost": round(on_demand_cost, 6),
        "spot_cost": round(spot_cost, 6),
        "spot_fallback_cost": round(spot_fallback_cost, 6),
        "saving_ratio": round(saving_ratio, 6),
    })


def test_spot_pricing_is_deterministic(trace):
    a = run_spot_search(trace, 1, _policy())
    b = run_spot_search(trace, 1, _policy())
    assert a == b
    assert a.charged_cost == b.charged_cost
