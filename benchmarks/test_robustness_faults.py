"""Robustness benchmark: search cost under rising measurement-failure rates.

Not a figure from the paper — a fault matrix for the fault-tolerant
measurement layer: Naive BO vs Augmented BO on one workload, with the
transient-failure rate swept from 0 to 40%.  The searches must complete
at every rate (degrading, not dying), and the *charged* cost — failed
attempts included — is the honest price of searching a flaky cloud.
"""

from __future__ import annotations

import pytest

from conftest import show
from repro.core.augmented_bo import AugmentedBO
from repro.core.naive_bo import NaiveBO
from repro.core.stopping import PredictionDeltaThreshold
from repro.faults import FaultInjector, FaultPlan, RetryPolicy, TransientTimeouts

WORKLOAD = "kmeans/Spark 2.1/small"
RATES = (0.0, 0.2, 0.4)
METHODS = (("naive-bo", NaiveBO), ("augmented-bo", AugmentedBO))


def run_search(trace, cls, rate: float, seed: int):
    environment = trace.environment(WORKLOAD)
    if rate > 0:
        plan = FaultPlan((TransientTimeouts(rate=rate),), seed=17 + seed)
        environment = FaultInjector(environment, plan)
    return cls(
        environment,
        stopping=PredictionDeltaThreshold(threshold=1.1),
        retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=1.0),
        seed=seed,
    ).run()


@pytest.mark.parametrize("method_name,cls", METHODS, ids=[m for m, _ in METHODS])
def test_search_degrades_gracefully_under_faults(trace, method_name, cls):
    optimum = trace.times_for(WORKLOAD).min()
    rows = []
    charged_by_rate = {}
    for rate in RATES:
        results = [run_search(trace, cls, rate, seed) for seed in range(3)]
        charged = [r.charged_cost for r in results]
        charged_by_rate[rate] = sum(charged) / len(charged)
        ratios = [r.best_value / optimum for r in results]
        rows.append(
            (
                f"{method_name} @ {rate:.0%} failure rate",
                "completes",
                f"charged {charged_by_rate[rate]:.1f}, "
                f"best {max(ratios):.2f}x opt",
            )
        )
        for result in results:
            # Degrade, never die: every search ends with a usable result.
            assert result.search_cost >= 1
            assert result.charged_cost >= result.search_cost
            assert result.best_value / optimum < 2.0
        if rate == 0.0:
            assert all(r.failure_count == 0 for r in results)
        else:
            assert any(r.failure_count > 0 for r in results)
    show(f"fault matrix — {method_name}", rows)
    # Failures make search strictly more expensive in charged attempts.
    assert charged_by_rate[RATES[-1]] > charged_by_rate[0.0]


def test_fault_matrix_is_deterministic(trace):
    a = run_search(trace, NaiveBO, 0.4, seed=1)
    b = run_search(trace, NaiveBO, 0.4, seed=1)
    assert a == b
