"""Figure 3: worst-vs-best VM spreads.

Paper: a wrong VM choice can cost up to 20x in execution time and up to
10x in deployment cost.
"""

from conftest import show

from repro.analysis.experiments import fig3_worst_best_spread


def test_fig3_worst_best_spread(benchmark, runner):
    result = benchmark.pedantic(
        fig3_worst_best_spread, args=(runner,), rounds=1, iterations=1
    )

    show(
        "Figure 3 — worst/best VM ratios",
        [
            ("max time spread", "~20x", f"{result['max_time_spread']:.1f}x"),
            ("max cost spread", "~10x", f"{result['max_cost_spread']:.1f}x"),
            ("median time spread", "(not reported)", f"{result['median_time_spread']:.1f}x"),
            ("median cost spread", "(not reported)", f"{result['median_cost_spread']:.1f}x"),
            ("worst time workload", "classification/Spark 1.5", result["max_time_workload"]),
            ("worst cost workload", "lr (linear regression)", result["max_cost_workload"]),
        ],
    )

    # Shape: order-of-magnitude spreads exist, and time spreads exceed
    # cost spreads (price partially compensates slowness).
    assert result["max_time_spread"] > 10
    assert result["max_cost_spread"] > 3.5
    assert result["max_time_spread"] > result["max_cost_spread"]
