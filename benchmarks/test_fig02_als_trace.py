"""Figure 2: Naive BO is sluggish on a fragile workload.

Paper: on its Region-III showcase (ALS on Spark), after five measurements
the found VM is still ~1.75x slower than optimal and the optimum is not
found until around the thirteenth attempt.  Our dataset's equivalent
fragile workload takes the same role; the magnitudes are milder (see
DESIGN.md section 7) but the shape — still suboptimal past the initial
design, optimum only found deep into the search — is the claim.
"""

from conftest import show

from repro.analysis.experiments import fig2_als_trace


def test_fig2_fragile_trace(benchmark, runner):
    result = benchmark.pedantic(fig2_als_trace, args=(runner,), rounds=1, iterations=1)

    show(
        f"Figure 2 — Naive BO trace on {result['workload']} (time objective)",
        [
            ("normalised time after 5 measurements", "~1.75x", f"{result['median_at_5']:.3f}x"),
            (
                "median measurements to optimum",
                "~13",
                f"{result['steps_to_optimum_median']:.0f}",
            ),
        ],
    )
    print("median curve:", " ".join(f"{v:.2f}" for v in result["median_curve"]))

    median = result["median_curve"]
    # Shape: progress is monotone, still above optimal after the initial
    # design + two acquisitions, optimal only well past the 33% mark,
    # and exact by the end of a full sweep.
    assert all(a >= b - 1e-12 for a, b in zip(median, median[1:]))
    assert result["median_at_5"] > 1.005
    assert result["steps_to_optimum_median"] >= 6
    assert median[-1] <= 1.001
