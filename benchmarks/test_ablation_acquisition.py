"""Ablation: acquisition functions for the GP surrogate.

Section III-A lists PI, EI and GP-UCB as the common acquisition
functions and notes CherryPick's use of EI.  This bench compares the
three over a workload slice to document that the reproduction's Naive BO
is not hostage to one acquisition choice.
"""

import numpy as np
from conftest import show

from repro.analysis.experiments import all_workload_ids, naive_factory
from repro.analysis.runner import RunGrid
from repro.core.objectives import Objective

SLICE = all_workload_ids()[::10]  # 11 workloads
REPEATS = 4


def mean_median_cost(runner, acquisition):
    grid = RunGrid(
        key=f"ablation-naive-acq-{acquisition}",
        factory=naive_factory(acquisition=acquisition),
        objective=Objective.TIME,
        workload_ids=SLICE,
        repeats=REPEATS,
    )
    results = runner.run(grid)
    costs = runner.costs_to_optimum(results, Objective.TIME)
    return float(
        np.mean(
            [
                np.median([18 if c is None else c for c in cs])
                for cs in costs.values()
            ]
        )
    )


def test_ablation_acquisition(benchmark, runner):
    def run():
        return {acq: mean_median_cost(runner, acq) for acq in ("ei", "pi", "lcb")}

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        "Ablation — GP acquisition functions (time objective)",
        [
            ("mean median search cost, EI", "(CherryPick's pick)", f"{costs['ei']:.2f}"),
            ("mean median search cost, PI", "(greedier)", f"{costs['pi']:.2f}"),
            ("mean median search cost, LCB", "(explorative)", f"{costs['lcb']:.2f}"),
        ],
    )

    # All three must be functional searches, far better than brute force.
    assert all(cost < 12 for cost in costs.values())
    # EI should be competitive (within one measurement of the best).
    assert costs["ei"] <= min(costs.values()) + 1.0
