"""Figure 6: cost creates a level playing field.

Paper: for the regression workload on Spark 1.5, execution times differ
widely across VM types while deployment costs are similar — several VMs
inferior in time become competitive in cost, making the cost search
harder.
"""

from conftest import show

from repro.analysis.experiments import fig6_cost_levelling


def test_fig6_cost_levelling(benchmark, runner):
    result = benchmark.pedantic(fig6_cost_levelling, args=(runner,), rounds=1, iterations=1)

    show(
        f"Figure 6 — time vs cost spread for {result['workload']}",
        [
            ("time worst/best", "~4x", f"{result['time_spread']:.1f}x"),
            ("cost worst/best", "~1.5x", f"{result['cost_spread']:.1f}x"),
            (
                "VMs within 25% of best (time)",
                "few",
                str(result["time_competitive"]),
            ),
            (
                "VMs within 25% of best (cost)",
                "several",
                str(result["cost_competitive"]),
            ),
        ],
    )
    print(f"{'VM':<12} {'time':>6} {'cost':>6}   (normalised, sorted by cost)")
    for row in result["rows"]:
        print(f"{row['vm']:<12} {row['time']:>6.2f} {row['cost']:>6.2f}")

    # Shape: cost compresses the spread for this workload.
    assert result["cost_spread"] < result["time_spread"]
