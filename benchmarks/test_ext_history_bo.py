"""Extension: history-augmented BO (the paper's stated future work).

The paper's conclusion proposes augmenting the optimiser with historical
performance data to cut search cost further.  This bench measures that:
for each target workload, a prior is trained on the *other* 106
workloads' pairwise data and blended into Augmented BO's predictions.
"""

import numpy as np
from conftest import show

from repro.analysis.experiments import all_workload_ids
from repro.core.augmented_bo import AugmentedBO
from repro.core.history_bo import HistoryAugmentedBO, HistoryModel, build_history_pairs
from repro.core.objectives import Objective

SLICE = all_workload_ids()[::16]  # 7 workloads
REPEATS = 4


def run_comparison(runner):
    trace = runner.trace
    plain_costs, primed_costs = [], []
    for workload_id in SLICE:
        optimum = runner.optimal_value(workload_id, Objective.TIME)
        rows, targets = build_history_pairs(
            trace, workload_id, "time", pairs_per_workload=16, seed=0
        )
        history = HistoryModel(rows, targets, seed=0)
        for seed in range(REPEATS):
            plain = AugmentedBO(trace.environment(workload_id), seed=seed).run()
            primed = HistoryAugmentedBO(
                trace.environment(workload_id), history=history, seed=seed
            ).run()
            plain_costs.append(plain.first_step_reaching(optimum) or 19)
            primed_costs.append(primed.first_step_reaching(optimum) or 19)
    return np.array(plain_costs), np.array(primed_costs)


def test_extension_history_prior(benchmark, runner):
    plain, primed = benchmark.pedantic(
        run_comparison, args=(runner,), rounds=1, iterations=1
    )

    show(
        "Extension — history-augmented BO (time objective)",
        [
            ("mean search cost, plain augmented", "(baseline)", f"{plain.mean():.2f}"),
            ("mean search cost, with history prior", "(lower)", f"{primed.mean():.2f}"),
            ("worst case, plain", "(baseline)", f"{plain.max():.0f}"),
            ("worst case, with history prior", "(lower)", f"{primed.max():.0f}"),
        ],
    )

    # The prior must not hurt on average, and should tame the worst case.
    assert primed.mean() <= plain.mean() + 0.4
    assert primed.max() <= plain.max()
