"""Figure 4: the priciest VM is not always fastest, nor the cheapest
VM always cheapest to run.

Paper: c4.2xlarge is the fastest VM for only ~50% of workloads; c4.large
is the cheapest-to-run for only ~50%.
"""

from conftest import show

from repro.analysis.experiments import fig4_extreme_vms


def test_fig4_extreme_vms(benchmark, runner):
    result = benchmark.pedantic(fig4_extreme_vms, args=(runner,), rounds=1, iterations=1)

    expensive = result["expensive_optimal_time_fraction"]
    cheap = result["cheap_optimal_cost_fraction"]
    show(
        "Figure 4 — extreme VMs vs actual optima",
        [
            ("c4.2xlarge fastest", "~50%", f"{expensive['c4.2xlarge']:.0%}"),
            ("m4.2xlarge fastest", "<50%", f"{expensive['m4.2xlarge']:.0%}"),
            ("r4.2xlarge fastest", "<50%", f"{expensive['r4.2xlarge']:.0%}"),
            ("c4.large cheapest to run", "~50%", f"{cheap['c4.large']:.0%}"),
            ("m4.large cheapest to run", "<50%", f"{cheap['m4.large']:.0%}"),
            ("r4.large cheapest to run", "<50%", f"{cheap['r4.large']:.0%}"),
        ],
    )

    # Shape: none of the rule-of-thumb extremes is optimal for even 60%
    # of workloads — "no VM rules all".
    assert all(fraction < 0.6 for fraction in expensive.values())
    assert all(fraction < 0.6 for fraction in cheap.values())
    # But they are not useless either: some workloads do pick them.
    assert expensive["c4.2xlarge"] > 0.05
    assert max(cheap.values()) > 0.05
