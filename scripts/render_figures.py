#!/usr/bin/env python3
"""Render every cached figure JSON under results/figures/ as SVG.

Run ``scripts/build_cache.py`` first.  Outputs land next to the JSONs:
``results/figures/<name>.svg``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.svg_plots import bar_chart_svg, line_chart_svg

ROOT = Path(__file__).resolve().parent.parent
FIGURES = ROOT / "results" / "figures"


def render(name: str, payload: dict) -> str | None:
    if name in {"fig9a", "fig9b"}:
        objective = payload.get("objective", "")
        return line_chart_svg(
            payload["curves"],
            title=f"Figure 9 — solved fraction vs search cost ({objective})",
            x_label="search cost (# of measurements)",
            y_label="fraction of workloads",
            y_min=0.0,
            y_max=1.0,
        )
    if name == "fig1":
        return line_chart_svg(
            {"naive-bo": payload["curve"]},
            title="Figure 1 — Naive BO search-cost CDF (time)",
            x_label="search cost (# of measurements)",
            y_label="fraction of workloads",
            y_min=0.0,
            y_max=1.0,
        )
    if name == "fig2":
        return line_chart_svg(
            {
                "median": payload["median_curve"],
                "q1": payload["q1_curve"],
                "q3": payload["q3_curve"],
            },
            title=f"Figure 2 — Naive BO on {payload['workload']}",
            x_label="search cost (# of measurements)",
            y_label="normalised execution time",
        )
    if name == "fig8":
        return bar_chart_svg(
            {row["vm"]: row["normalised_time"] for row in payload["rows"]},
            title=f"Figure 8 — normalised time of {payload['workload']}",
            unit="x",
        )
    if name == "fig6":
        times = {row["vm"]: row["time"] for row in payload["rows"]}
        return bar_chart_svg(
            times,
            title=f"Figure 6 — normalised time (sorted by cost) of {payload['workload']}",
            unit="x",
        )
    return None


def main() -> None:
    rendered = 0
    for json_path in sorted(FIGURES.glob("*.json")):
        payload = json.loads(json_path.read_text())
        svg = render(json_path.stem, payload)
        if svg is None:
            continue
        json_path.with_suffix(".svg").write_text(svg)
        rendered += 1
        print(f"rendered {json_path.stem}.svg")
    print(f"{rendered} figures rendered")


if __name__ == "__main__":
    main()
