#!/usr/bin/env python
"""End-to-end chaos smoke test for the supervised execution plane.

Drives a real interrupted-grid scenario, outside pytest, the way an
operator would hit it:

1. Computes a clean serial reference cache for a small grid.
2. Launches a child process running the same grid on a worker pool with
   a worker-killer factory (one cell kills its worker to exercise pool
   self-healing) and per-cell pacing, waits until the child's crash-safe
   journal holds a few completed cells, then SIGTERMs it mid-grid.
3. Re-runs the grid with ``resume=True`` and asserts that

   * no journaled/flushed cell is recomputed — only the cells that were
     in flight (or never started) at the moment of the signal are
     scheduled, and
   * the final consolidated cache is byte-identical to the clean
     serial reference.

Timings are appended to ``BENCH_perf.json`` under the ``chaos`` section,
which ``scripts/check_perf_regression.py`` explicitly exempts from the
perf gate — chaos runs measure signal latency and recovery, not hot-path
speed, and must never fail a perf check.

Usage::

    python scripts/chaos_smoke.py            # full scenario (parent)
    python scripts/chaos_smoke.py --child D  # internal: interrupted run
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.runner import ExperimentRunner, RunGrid, run_seed  # noqa: E402
from repro.core.baselines import RandomSearch  # noqa: E402
from repro.core.objectives import Objective  # noqa: E402
from repro.parallel import GridCheckpoint  # noqa: E402
from repro.trace.generate import default_trace  # noqa: E402

WORKLOADS = (
    "kmeans/Spark 2.1/small",
    "lr/Spark 1.5/medium",
    "pagerank/Hadoop 2.7/small",
)
REPEATS = 4
GRID_KEY = "chaos-smoke"
CACHE_NAME = f"{GRID_KEY}__time"

#: Worker-side pacing so the parent can SIGTERM the child mid-grid.
PACE_S = 0.5

#: The cell whose pool attempts kill their worker.  The *first* cell in
#: submission order: results are yielded (and journaled) in that order,
#: so a crash-recovering cell in the middle would buffer every completed
#: sibling and make the journal grow in one burst instead of steadily.
LETHAL_SEED = run_seed(WORKLOADS[0], 0)


def clean_factory(environment, objective, seed):
    return RandomSearch(environment, objective=objective, seed=seed, max_measurements=6)


def _grid(factory) -> RunGrid:
    return RunGrid(
        key=GRID_KEY,
        factory=factory,
        objective=Objective.TIME,
        workload_ids=WORKLOADS,
        repeats=REPEATS,
    )


def run_child(cache_dir: Path) -> int:
    """The interrupted run: paced pool with a worker-killer, until SIGTERM."""
    main_pid = os.getpid()
    # This box may have a single CPU; the scenario needs a real pool, so
    # lie to the auto-clamp. Worker-kill recovery on one core is slower
    # but identical in behaviour.
    os.cpu_count = lambda: 4  # type: ignore[method-assign]

    def chaos_factory(environment, objective, seed):
        if os.getpid() != main_pid:
            time.sleep(PACE_S)
            if seed == LETHAL_SEED:
                os._exit(1)
        return clean_factory(environment, objective, seed)

    runner = ExperimentRunner(default_trace(), cache_dir=cache_dir)
    runner.run(_grid(chaos_factory), workers=2)
    return 0


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        return run_child(Path(sys.argv[2]))

    import tempfile

    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        work = Path(tmp)
        ref_dir, chaos_dir = work / "ref", work / "chaos"
        trace = default_trace()
        total = len(WORKLOADS) * REPEATS

        print(f"chaos-smoke: clean serial reference ({total} cells)")
        ExperimentRunner(trace, cache_dir=ref_dir).run(_grid(clean_factory), workers=1)
        reference = (ref_dir / f"{CACHE_NAME}.json").read_bytes()

        print("chaos-smoke: launching interrupted pool run")
        started = time.monotonic()
        child = subprocess.Popen(
            [sys.executable, __file__, "--child", str(chaos_dir)],
            cwd=REPO_ROOT,
        )
        journal_path = chaos_dir / f"{CACHE_NAME}.journal"
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if child.poll() is not None:
                print("chaos-smoke: FAIL — child finished before the signal")
                return 1
            if journal_path.exists() and len(journal_path.read_bytes().splitlines()) >= 3:
                break
            time.sleep(0.05)
        else:
            child.kill()
            print("chaos-smoke: FAIL — journal never reached 3 cells")
            return 1
        child.send_signal(signal.SIGTERM)
        child.wait(timeout=60.0)
        interrupted_s = time.monotonic() - started
        if child.returncode != 128 + signal.SIGTERM:
            print(f"chaos-smoke: FAIL — child exit {child.returncode}, wanted 143")
            return 1

        journaled = GridCheckpoint(journal_path, cache_key=CACHE_NAME).load()
        print(
            f"chaos-smoke: child SIGTERMed after {len(journaled)} journaled cells "
            f"({interrupted_s:.1f}s)"
        )

        events = []
        started = time.monotonic()
        ExperimentRunner(trace, cache_dir=chaos_dir).run(
            _grid(clean_factory), workers=1, resume=True, on_event=events.append
        )
        resume_s = time.monotonic() - started

        completed = {e.cell for e in events if e.kind in ("cell_cached", "cell_resumed")}
        scheduled = {e.cell for e in events if e.kind == "cell_scheduled"}
        recomputed_beyond_in_flight = scheduled & set(journaled)
        print(
            f"chaos-smoke: resume recovered {len(completed)} cells, "
            f"recomputed {len(scheduled)} ({resume_s:.1f}s)"
        )
        failures = []
        if recomputed_beyond_in_flight:
            failures.append(
                f"recomputed journaled cells: {sorted(recomputed_beyond_in_flight)}"
            )
        if scheduled | completed != {
            (w, r) for w in WORKLOADS for r in range(REPEATS)
        } or len(scheduled) + len(completed) != total:
            failures.append("recovered + recomputed cells do not partition the grid")
        final = (chaos_dir / f"{CACHE_NAME}.json").read_bytes()
        if final != reference:
            failures.append("resumed cache differs from the clean serial reference")
        if journal_path.exists():
            failures.append("journal not retired after clean completion")

        bench_path = REPO_ROOT / "BENCH_perf.json"
        bench = {}
        if bench_path.exists():
            try:
                bench = json.loads(bench_path.read_text())
            except json.JSONDecodeError:
                bench = {}
        bench["chaos"] = {
            "interrupted_run_s": round(interrupted_s, 3),
            "resume_run_s": round(resume_s, 3),
            "journaled_cells": len(journaled),
            "recovered_cells": len(completed),
            "recomputed_cells": len(scheduled),
        }
        bench_path.write_text(json.dumps(bench, indent=2) + "\n")

        if failures:
            for failure in failures:
                print(f"chaos-smoke: FAIL — {failure}")
            return 1
        print("chaos-smoke: passed (byte-identical resume, zero extra recompute)")
        return 0


if __name__ == "__main__":
    sys.exit(main())
