#!/usr/bin/env python
"""End-to-end chaos smoke tests for the supervised execution plane.

Drives real interrupted-grid scenarios, outside pytest, the way an
operator would hit them.

``--scenario pool`` (journal/resume):

1. Computes a clean serial reference cache for a small grid.
2. Launches a child process running the same grid on a worker pool with
   a worker-killer factory (one cell kills its worker to exercise pool
   self-healing) and per-cell pacing, waits until the child's crash-safe
   journal holds a few completed cells, then SIGTERMs it mid-grid.
3. Re-runs the grid with ``resume=True`` and asserts that

   * no journaled/flushed cell is recomputed — only the cells that were
     in flight (or never started) at the moment of the signal are
     scheduled, and
   * the final consolidated cache is byte-identical to the clean
     serial reference.

``--scenario queue`` (durable queue / lease recovery):

1. Computes a clean serial reference cache.
2. Launches a queue coordinator (``executor="queue"``, no local
   workers) plus a fleet of three external pull-workers against the
   shared queue database, then ``SIGKILL``\\ s one worker the moment it
   holds a lease — mid-cell, no goodbye.
3. Asserts the grid still completes: the dead worker's lease expires
   and its cell is requeued to a surviving worker, every cell ends
   ``done`` exactly once (no lost cells, no double result writes, as
   witnessed by the queue's durable event log), and the final cache is
   byte-identical to the serial reference.

``--scenario spot`` (spot pricing / partial credit under SIGKILL):

1. Computes a clean serial reference cache for a spot-priced grid
   (market-driven revocations, partial-credit resume, on-demand
   fallback ladder).
2. Launches a queue coordinator plus three external workers running the
   same spot grid, ``SIGKILL``\\ s one worker the moment it holds a
   lease — mid-spot-run, partial charges in flight.
3. Asserts the grid completes with a cache byte-identical to the serial
   reference, that fractional partial-credit charges are present in the
   done payloads (revocation credit survived the worker loss), that the
   queue's recorded pricing mode is ``spot``, and that a final
   ``resume=True`` pass recomputes nothing.

Timings are appended to ``BENCH_perf.json`` under the ``chaos`` /
``chaos_queue`` / ``chaos_spot`` sections, which
``scripts/check_perf_regression.py`` explicitly exempts from the perf
gate — chaos runs measure signal latency and recovery, not hot-path
speed, and must never fail a perf check.

Usage::

    python scripts/chaos_smoke.py                     # all scenarios
    python scripts/chaos_smoke.py --scenario queue    # one scenario
    python scripts/chaos_smoke.py --child D           # internal: pool child
    python scripts/chaos_smoke.py --queue-coordinator D   # internal
    python scripts/chaos_smoke.py --queue-worker D OWNER  # internal
    python scripts/chaos_smoke.py --spot-coordinator D    # internal
    python scripts/chaos_smoke.py --spot-worker D OWNER   # internal
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.runner import ExperimentRunner, RunGrid, run_seed  # noqa: E402
from repro.cloud.spot import SpotMarket, SpotPolicy  # noqa: E402
from repro.core.baselines import RandomSearch  # noqa: E402
from repro.core.objectives import Objective  # noqa: E402
from repro.faults.models import FaultPlan, SpotInterruptions  # noqa: E402
from repro.parallel import GridCheckpoint, WorkQueue  # noqa: E402
from repro.trace.generate import default_trace  # noqa: E402

WORKLOADS = (
    "kmeans/Spark 2.1/small",
    "lr/Spark 1.5/medium",
    "pagerank/Hadoop 2.7/small",
)
REPEATS = 4
GRID_KEY = "chaos-smoke"
CACHE_NAME = f"{GRID_KEY}__time"

QUEUE_GRID_KEY = "chaos-queue"
QUEUE_CACHE_NAME = f"{QUEUE_GRID_KEY}__time"
QUEUE_WORKERS = 3
QUEUE_LEASE_S = 2.0

SPOT_GRID_KEY = "chaos-spot"
SPOT_CACHE_NAME = f"{SPOT_GRID_KEY}__time"
SPOT_SEED = 5

#: Worker-side pacing so the parent can signal a worker mid-cell.
PACE_S = 0.5

#: The cell whose pool attempts kill their worker.  The *first* cell in
#: submission order: results are yielded (and journaled) in that order,
#: so a crash-recovering cell in the middle would buffer every completed
#: sibling and make the journal grow in one burst instead of steadily.
LETHAL_SEED = run_seed(WORKLOADS[0], 0)

ALL_CELLS = {(w, r) for w in WORKLOADS for r in range(REPEATS)}


def clean_factory(environment, objective, seed):
    return RandomSearch(environment, objective=objective, seed=seed, max_measurements=6)


def _spot_market() -> SpotMarket:
    # Hazard boosted well above the default so revocations (and partial
    # charges) reliably appear within a 6-measurement smoke run.
    return SpotMarket(seed=SPOT_SEED, base_hazard=0.25, hazard_slope=0.5)


def spot_factory(environment, objective, seed):
    """A spot-priced search under a market-driven revocation plan.

    Built identically by the serial reference, the coordinator and
    every queue worker: the injector is created per cell, so fault
    streams reset per cell and results are independent of who runs it.
    """
    plan = FaultPlan((SpotInterruptions(market=_spot_market()),), seed=SPOT_SEED + seed)
    return RandomSearch(
        plan.injector(environment),
        objective=objective,
        seed=seed,
        max_measurements=6,
        measure_retries=5,
        spot=SpotPolicy(market=_spot_market()),
    )


def _grid(factory, key: str = GRID_KEY) -> RunGrid:
    return RunGrid(
        key=key,
        factory=factory,
        objective=Objective.TIME,
        workload_ids=WORKLOADS,
        repeats=REPEATS,
    )


def _load_bench() -> dict:
    bench_path = REPO_ROOT / "BENCH_perf.json"
    if bench_path.exists():
        try:
            return json.loads(bench_path.read_text())
        except json.JSONDecodeError:
            return {}
    return {}


def _store_bench(section: str, payload: dict) -> None:
    bench_path = REPO_ROOT / "BENCH_perf.json"
    bench = _load_bench()
    bench[section] = payload
    bench_path.write_text(json.dumps(bench, indent=2) + "\n")


# -- pool scenario ---------------------------------------------------------


def run_child(cache_dir: Path) -> int:
    """The interrupted run: paced pool with a worker-killer, until SIGTERM."""
    main_pid = os.getpid()
    # This box may have a single CPU; the scenario needs a real pool, so
    # lie to the auto-clamp. Worker-kill recovery on one core is slower
    # but identical in behaviour.
    os.cpu_count = lambda: 4  # type: ignore[method-assign]

    def chaos_factory(environment, objective, seed):
        if os.getpid() != main_pid:
            time.sleep(PACE_S)
            if seed == LETHAL_SEED:
                os._exit(1)
        return clean_factory(environment, objective, seed)

    runner = ExperimentRunner(default_trace(), cache_dir=cache_dir)
    runner.run(_grid(chaos_factory), workers=2)
    return 0


def scenario_pool(work: Path, trace) -> int:
    ref_dir, chaos_dir = work / "ref", work / "chaos"
    total = len(ALL_CELLS)

    print(f"chaos-smoke[pool]: clean serial reference ({total} cells)")
    ExperimentRunner(trace, cache_dir=ref_dir).run(_grid(clean_factory), workers=1)
    reference = (ref_dir / f"{CACHE_NAME}.json").read_bytes()

    print("chaos-smoke[pool]: launching interrupted pool run")
    started = time.monotonic()
    child = subprocess.Popen(
        [sys.executable, __file__, "--child", str(chaos_dir)],
        cwd=REPO_ROOT,
    )
    journal_path = chaos_dir / f"{CACHE_NAME}.journal"
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if child.poll() is not None:
            print("chaos-smoke[pool]: FAIL — child finished before the signal")
            return 1
        if journal_path.exists() and len(journal_path.read_bytes().splitlines()) >= 3:
            break
        time.sleep(0.05)
    else:
        child.kill()
        print("chaos-smoke[pool]: FAIL — journal never reached 3 cells")
        return 1
    child.send_signal(signal.SIGTERM)
    child.wait(timeout=60.0)
    interrupted_s = time.monotonic() - started
    if child.returncode != 128 + signal.SIGTERM:
        print(f"chaos-smoke[pool]: FAIL — child exit {child.returncode}, wanted 143")
        return 1

    journaled = GridCheckpoint(journal_path, cache_key=CACHE_NAME).load()
    print(
        f"chaos-smoke[pool]: child SIGTERMed after {len(journaled)} journaled cells "
        f"({interrupted_s:.1f}s)"
    )

    events = []
    started = time.monotonic()
    ExperimentRunner(trace, cache_dir=chaos_dir).run(
        _grid(clean_factory), workers=1, resume=True, on_event=events.append
    )
    resume_s = time.monotonic() - started

    completed = {e.cell for e in events if e.kind in ("cell_cached", "cell_resumed")}
    scheduled = {e.cell for e in events if e.kind == "cell_scheduled"}
    recomputed_beyond_in_flight = scheduled & set(journaled)
    print(
        f"chaos-smoke[pool]: resume recovered {len(completed)} cells, "
        f"recomputed {len(scheduled)} ({resume_s:.1f}s)"
    )
    failures = []
    if recomputed_beyond_in_flight:
        failures.append(
            f"recomputed journaled cells: {sorted(recomputed_beyond_in_flight)}"
        )
    if scheduled | completed != ALL_CELLS or len(scheduled) + len(completed) != total:
        failures.append("recovered + recomputed cells do not partition the grid")
    final = (chaos_dir / f"{CACHE_NAME}.json").read_bytes()
    if final != reference:
        failures.append("resumed cache differs from the clean serial reference")
    if journal_path.exists():
        failures.append("journal not retired after clean completion")

    _store_bench("chaos", {
        "interrupted_run_s": round(interrupted_s, 3),
        "resume_run_s": round(resume_s, 3),
        "journaled_cells": len(journaled),
        "recovered_cells": len(completed),
        "recomputed_cells": len(scheduled),
    })

    if failures:
        for failure in failures:
            print(f"chaos-smoke[pool]: FAIL — {failure}")
        return 1
    print("chaos-smoke[pool]: passed (byte-identical resume, zero extra recompute)")
    return 0


# -- queue scenario --------------------------------------------------------


def run_queue_coordinator(cache_dir: Path) -> int:
    """The coordinator: owns the queue, forks no local workers — the
    external fleet does every cell."""
    runner = ExperimentRunner(default_trace(), cache_dir=cache_dir)
    runner.run(
        _grid(clean_factory, key=QUEUE_GRID_KEY),
        executor="queue",
        queue_workers=0,
        queue_lease_s=QUEUE_LEASE_S,
        queue_stall_timeout_s=300.0,
    )
    return 0


def run_queue_worker(cache_dir: Path, owner: str) -> int:
    """One external pull-worker (what ``arrow queue-worker`` does),
    paced so the parent can SIGKILL it mid-cell."""
    from repro.parallel import queue_worker_loop

    path = cache_dir / f"{QUEUE_CACHE_NAME}.queue"
    queue = None
    deadline = time.monotonic() + 60.0
    while queue is None:
        try:
            queue = WorkQueue.attach(path)
        except (FileNotFoundError, ValueError):
            # The coordinator has not created (or finished stamping)
            # the queue yet.
            if time.monotonic() >= deadline:
                print(f"worker {owner}: no queue at {path}", file=sys.stderr)
                return 1
            time.sleep(0.05)
    trace = default_trace()

    def run_lease(lease):
        time.sleep(PACE_S)
        environment = trace.environment(lease.workload_id)
        return clean_factory(environment, Objective.TIME, lease.seed).run()

    try:
        completed = queue_worker_loop(queue, run_lease, owner=owner)
    finally:
        queue.close()
    print(f"worker {owner}: processed {completed} cell(s)")
    return 0


def scenario_queue(work: Path, trace) -> int:
    ref_dir, chaos_dir = work / "queue-ref", work / "queue-chaos"
    total = len(ALL_CELLS)

    print(f"chaos-smoke[queue]: clean serial reference ({total} cells)")
    ExperimentRunner(trace, cache_dir=ref_dir).run(
        _grid(clean_factory, key=QUEUE_GRID_KEY), workers=1
    )
    reference = (ref_dir / f"{QUEUE_CACHE_NAME}.json").read_bytes()

    print(
        f"chaos-smoke[queue]: coordinator + {QUEUE_WORKERS} external workers, "
        f"SIGKILL one mid-cell"
    )
    started = time.monotonic()
    coordinator = subprocess.Popen(
        [sys.executable, __file__, "--queue-coordinator", str(chaos_dir)],
        cwd=REPO_ROOT,
    )
    victim_owner = "victim"
    owners = ["w1", victim_owner, "w3"]
    workers = {
        owner: subprocess.Popen(
            [sys.executable, __file__, "--queue-worker", str(chaos_dir), owner],
            cwd=REPO_ROOT,
        )
        for owner in owners
    }

    queue_path = chaos_dir / f"{QUEUE_CACHE_NAME}.queue"
    try:
        # Wait until the victim actually holds a lease, then kill -9:
        # mid-cell, mid-lease, no cleanup of any kind.
        deadline = time.monotonic() + 120.0
        victim_cell = None
        while victim_cell is None:
            if time.monotonic() >= deadline:
                print("chaos-smoke[queue]: FAIL — victim never claimed a lease")
                return 1
            if coordinator.poll() is not None:
                print("chaos-smoke[queue]: FAIL — coordinator exited early")
                return 1
            if queue_path.exists():
                try:
                    with WorkQueue.attach(queue_path, readonly=True) as queue:
                        for cell, owner, _attempts, _age, _left in queue.leases():
                            if owner == victim_owner:
                                victim_cell = cell
                except (ValueError, FileNotFoundError):
                    pass
            time.sleep(0.02)
        workers[victim_owner].send_signal(signal.SIGKILL)
        print(
            f"chaos-smoke[queue]: SIGKILLed {victim_owner} holding {victim_cell}"
        )

        coordinator.wait(timeout=300.0)
        for owner in ("w1", "w3"):
            workers[owner].wait(timeout=60.0)
        workers[victim_owner].wait(timeout=60.0)
    finally:
        for process in (coordinator, *workers.values()):
            if process.poll() is None:
                process.kill()
    queue_run_s = time.monotonic() - started

    failures = []
    if coordinator.returncode != 0:
        failures.append(f"coordinator exit {coordinator.returncode}, wanted 0")
    if workers[victim_owner].returncode != -signal.SIGKILL:
        failures.append(
            f"victim exit {workers[victim_owner].returncode}, wanted -9"
        )
    for owner in ("w1", "w3"):
        if workers[owner].returncode != 0:
            failures.append(f"worker {owner} exit {workers[owner].returncode}")

    final_path = chaos_dir / f"{QUEUE_CACHE_NAME}.json"
    if not final_path.exists():
        failures.append("no final cache written")
    elif final_path.read_bytes() != reference:
        failures.append("queue-run cache differs from the clean serial reference")

    requeued = 0
    if not queue_path.exists():
        failures.append("queue database missing after the run")
    else:
        with WorkQueue.attach(queue_path) as queue:
            counts = queue.counts()
            if counts["done"] != total or not queue.drained():
                failures.append(f"lost cells: counts {counts}")
            done_cells = {
                cell for cell, state, _p, _e, _a in queue.terminal_cells()
                if state == "done"
            }
            if done_cells != ALL_CELLS:
                failures.append(
                    f"done rows do not cover the grid: missing "
                    f"{sorted(ALL_CELLS - done_cells)}"
                )
            events = queue.events_since(0)
            kinds = [kind for _id, kind, _cell, _detail in events]
            requeued = kinds.count("cell_requeued")
            if kinds.count("lease_expired") < 1 or kinds.count("worker_lost") < 1:
                failures.append("no lease expired — the kill was not observed")
            if requeued < 1:
                failures.append("no cell was requeued after the kill")
            done_writes: dict = {}
            for _id, kind, cell, _detail in events:
                if kind == "cell_done":
                    done_writes[cell] = done_writes.get(cell, 0) + 1
            doubled = {cell: n for cell, n in done_writes.items() if n > 1}
            if doubled:
                failures.append(f"double result writes: {doubled}")

    _store_bench("chaos_queue", {
        "queue_run_s": round(queue_run_s, 3),
        "workers": QUEUE_WORKERS,
        "lease_s": QUEUE_LEASE_S,
        "requeued_cells": requeued,
        "cells": total,
    })

    if failures:
        for failure in failures:
            print(f"chaos-smoke[queue]: FAIL — {failure}")
        return 1
    print(
        "chaos-smoke[queue]: passed (grid survived SIGKILL, zero lost cells, "
        "no double writes, byte-identical cache)"
    )
    return 0


# -- spot scenario ---------------------------------------------------------


def run_spot_coordinator(cache_dir: Path) -> int:
    """The spot grid's coordinator: durable queue, external fleet only."""
    runner = ExperimentRunner(default_trace(), cache_dir=cache_dir)
    runner.run(
        _grid(spot_factory, key=SPOT_GRID_KEY),
        executor="queue",
        queue_workers=0,
        queue_lease_s=QUEUE_LEASE_S,
        queue_stall_timeout_s=300.0,
        queue_pricing="spot",
    )
    return 0


def run_spot_worker(cache_dir: Path, owner: str) -> int:
    """One external pull-worker running spot-priced cells, paced so the
    parent can SIGKILL it mid-spot-run."""
    from repro.parallel import queue_worker_loop

    path = cache_dir / f"{SPOT_CACHE_NAME}.queue"
    queue = None
    deadline = time.monotonic() + 60.0
    while queue is None:
        try:
            queue = WorkQueue.attach(path)
        except (FileNotFoundError, ValueError):
            if time.monotonic() >= deadline:
                print(f"worker {owner}: no queue at {path}", file=sys.stderr)
                return 1
            time.sleep(0.05)
    trace = default_trace()

    def run_lease(lease):
        time.sleep(PACE_S)
        environment = trace.environment(lease.workload_id)
        return spot_factory(environment, Objective.TIME, lease.seed).run()

    try:
        completed = queue_worker_loop(queue, run_lease, owner=owner)
    finally:
        queue.close()
    print(f"worker {owner}: processed {completed} cell(s)")
    return 0


def _partial_credit(payload: dict) -> float:
    """Attempt-units this done payload saved vs unit billing."""
    steps = payload.get("steps", [])
    failures = payload.get("failures", [])
    charged = sum(
        float(row[3]) if len(row) == 4 else 1.0 for row in steps
    ) + sum(float(row[4]) if len(row) == 5 else 1.0 for row in failures)
    return len(steps) + len(failures) - charged


def scenario_spot(work: Path, trace) -> int:
    ref_dir, chaos_dir = work / "spot-ref", work / "spot-chaos"
    total = len(ALL_CELLS)

    print(f"chaos-smoke[spot]: clean serial spot reference ({total} cells)")
    ExperimentRunner(trace, cache_dir=ref_dir).run(
        _grid(spot_factory, key=SPOT_GRID_KEY), workers=1
    )
    reference = (ref_dir / f"{SPOT_CACHE_NAME}.json").read_bytes()

    print(
        f"chaos-smoke[spot]: coordinator + {QUEUE_WORKERS} external workers "
        "on the spot grid, SIGKILL one mid-spot-run"
    )
    started = time.monotonic()
    coordinator = subprocess.Popen(
        [sys.executable, __file__, "--spot-coordinator", str(chaos_dir)],
        cwd=REPO_ROOT,
    )
    victim_owner = "victim"
    owners = ["w1", victim_owner, "w3"]
    workers = {
        owner: subprocess.Popen(
            [sys.executable, __file__, "--spot-worker", str(chaos_dir), owner],
            cwd=REPO_ROOT,
        )
        for owner in owners
    }

    queue_path = chaos_dir / f"{SPOT_CACHE_NAME}.queue"
    try:
        deadline = time.monotonic() + 120.0
        victim_cell = None
        while victim_cell is None:
            if time.monotonic() >= deadline:
                print("chaos-smoke[spot]: FAIL — victim never claimed a lease")
                return 1
            if coordinator.poll() is not None:
                print("chaos-smoke[spot]: FAIL — coordinator exited early")
                return 1
            if queue_path.exists():
                try:
                    with WorkQueue.attach(queue_path, readonly=True) as queue:
                        for cell, owner, _attempts, _age, _left in queue.leases():
                            if owner == victim_owner:
                                victim_cell = cell
                except (ValueError, FileNotFoundError):
                    pass
            time.sleep(0.02)
        workers[victim_owner].send_signal(signal.SIGKILL)
        print(f"chaos-smoke[spot]: SIGKILLed {victim_owner} holding {victim_cell}")

        coordinator.wait(timeout=300.0)
        for owner in ("w1", "w3"):
            workers[owner].wait(timeout=60.0)
        workers[victim_owner].wait(timeout=60.0)
    finally:
        for process in (coordinator, *workers.values()):
            if process.poll() is None:
                process.kill()
    spot_run_s = time.monotonic() - started

    failures = []
    if coordinator.returncode != 0:
        failures.append(f"coordinator exit {coordinator.returncode}, wanted 0")
    if workers[victim_owner].returncode != -signal.SIGKILL:
        failures.append(
            f"victim exit {workers[victim_owner].returncode}, wanted -9"
        )
    for owner in ("w1", "w3"):
        if workers[owner].returncode != 0:
            failures.append(f"worker {owner} exit {workers[owner].returncode}")

    final_path = chaos_dir / f"{SPOT_CACHE_NAME}.json"
    if not final_path.exists():
        failures.append("no final cache written")
    elif final_path.read_bytes() != reference:
        failures.append("spot-run cache differs from the clean serial reference")

    requeued = 0
    fractional_cells = 0
    credit_total = 0.0
    if not queue_path.exists():
        failures.append("queue database missing after the run")
    else:
        with WorkQueue.attach(queue_path) as queue:
            if queue.pricing != "spot":
                failures.append(f"queue pricing {queue.pricing!r}, wanted 'spot'")
            counts = queue.counts()
            if counts["done"] != total or not queue.drained():
                failures.append(f"lost cells: counts {counts}")
            for cell, state, payload, _e, _a in queue.terminal_cells():
                if state != "done" or not isinstance(payload, dict):
                    continue
                credit = _partial_credit(payload)
                if credit > 0.0:
                    fractional_cells += 1
                    credit_total += credit
            events = queue.events_since(0)
            kinds = [kind for _id, kind, _cell, _detail in events]
            requeued = kinds.count("cell_requeued")
            if kinds.count("lease_expired") < 1 or kinds.count("worker_lost") < 1:
                failures.append("no lease expired — the kill was not observed")
            if requeued < 1:
                failures.append("no cell was requeued after the kill")
    if fractional_cells < 1:
        failures.append(
            "no fractional partial-credit charges in the done payloads — "
            "partial credit did not survive"
        )

    # A resume pass over the completed campaign must recompute nothing
    # and leave the cache bytes untouched: partial charges round-trip
    # the cache exactly (repr-based JSON floats).
    events = []
    ExperimentRunner(trace, cache_dir=chaos_dir).run(
        _grid(spot_factory, key=SPOT_GRID_KEY),
        workers=1, resume=True, on_event=events.append,
    )
    scheduled = {e.cell for e in events if e.kind == "cell_scheduled"}
    if scheduled:
        failures.append(f"resume recomputed cells: {sorted(scheduled)}")
    if final_path.read_bytes() != reference:
        failures.append("cache bytes changed across the resume pass")

    _store_bench("chaos_spot", {
        "spot_run_s": round(spot_run_s, 3),
        "workers": QUEUE_WORKERS,
        "lease_s": QUEUE_LEASE_S,
        "requeued_cells": requeued,
        "cells": total,
        "fractional_cells": fractional_cells,
        "partial_credit_units": round(credit_total, 6),
    })

    if failures:
        for failure in failures:
            print(f"chaos-smoke[spot]: FAIL — {failure}")
        return 1
    print(
        "chaos-smoke[spot]: passed (spot grid survived SIGKILL, partial "
        f"credit intact across {fractional_cells} cells, byte-identical cache)"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario", choices=("pool", "queue", "spot", "all"), default="all"
    )
    parser.add_argument("--child", metavar="DIR", help=argparse.SUPPRESS)
    parser.add_argument("--queue-coordinator", metavar="DIR", help=argparse.SUPPRESS)
    parser.add_argument(
        "--queue-worker", nargs=2, metavar=("DIR", "OWNER"), help=argparse.SUPPRESS
    )
    parser.add_argument("--spot-coordinator", metavar="DIR", help=argparse.SUPPRESS)
    parser.add_argument(
        "--spot-worker", nargs=2, metavar=("DIR", "OWNER"), help=argparse.SUPPRESS
    )
    args = parser.parse_args()

    if args.child:
        return run_child(Path(args.child))
    if args.queue_coordinator:
        return run_queue_coordinator(Path(args.queue_coordinator))
    if args.queue_worker:
        return run_queue_worker(Path(args.queue_worker[0]), args.queue_worker[1])
    if args.spot_coordinator:
        return run_spot_coordinator(Path(args.spot_coordinator))
    if args.spot_worker:
        return run_spot_worker(Path(args.spot_worker[0]), args.spot_worker[1])

    import tempfile

    rc = 0
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        work = Path(tmp)
        trace = default_trace()
        if args.scenario in ("pool", "all"):
            rc = scenario_pool(work, trace) or rc
        if args.scenario in ("queue", "all"):
            rc = scenario_queue(work, trace) or rc
        if args.scenario in ("spot", "all"):
            rc = scenario_spot(work, trace) or rc
    return rc


if __name__ == "__main__":
    sys.exit(main())
