#!/usr/bin/env python
"""Soft perf-regression gate for CI.

Compares the surrogate fit time in a freshly generated ``BENCH_perf.json``
against the committed baseline (``BENCH_perf.prev.json``, written by the
benchmark before it overwrites the committed file — or an explicit
``--baseline`` path). Fails when the vectorized per-step ensemble fit
time regresses by more than ``--max-ratio`` (default 2x).

The gate is *soft* in the sense that it only guards order-of-magnitude
regressions — shared CI runners are too noisy for tight thresholds —
and it skips cleanly (exit 0 with a notice) when either file is missing
or the baseline predates the tracked metric, so the check never blocks
unrelated work.

Two kinds of absolute floors ride along: the ``batch`` section's
wall-clock reduction for q-point suggestions must stay >= 1.8x, the
``catalog`` section's incremental query-assembly speedup at 200+
candidates must stay >= 2x, the ``vector`` section's lock-step
cross-search grid reduction must stay >= 2x, the ``spot`` section's
cost-saving ratio of spot+fallback pricing over on-demand must stay
>= 1.05x, and a section marked
``clamped`` (the engine collapsed to one effective worker, or the
runner has a single core) is skipped rather than judged — a clamped
run measures pool overhead, not performance.

Usage::

    python scripts/check_perf_regression.py \
        [--current BENCH_perf.json] [--baseline BENCH_perf.prev.json] \
        [--max-ratio 2.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Metrics guarded by the gate: (section, key, human label).
TRACKED = (
    ("surrogate", "vectorized_builder_fit_s", "vectorized full-refit fit"),
    ("surrogate", "warm_refit_score_s", "warm-start scoring step"),
    ("gp", "fit_s", "analytic GP hyperparameter fit"),
)

#: Sections recorded for observability only, never gated.  ``chaos``
#: (pool interrupt/resume), ``chaos_queue`` (durable-queue SIGKILL
#: recovery), and ``chaos_spot`` (spot-grid partial-credit survival)
#: hold chaos-smoke timings (scripts/chaos_smoke.py): they measure
#: signal latency, crash recovery, and deliberate pacing sleeps — not
#: hot-path speed — so a "regression" there is meaningless by design.
EXEMPT_SECTIONS = ("chaos", "chaos_queue", "chaos_spot")

#: Higher-is-better floors: (section, key, minimum, human label).  A
#: floored metric is skipped when its section (current *or* baseline)
#: is marked ``clamped`` — the run had no parallelism to measure.
FLOORS = (
    ("batch", "reduction", 1.8, "batched-suggestion wall-clock reduction"),
    # Pure single-thread arithmetic (buffer gather vs repeat/tile), so
    # no clamped exemption applies in practice: the section never sets
    # ``clamped``.
    ("catalog", "large_query_speedup", 2.0, "incremental query speedup @210 types"),
    ("catalog", "multi_query_speedup", 2.0, "incremental query speedup @390 types"),
    # Single-threaded dispatch amortisation, so it usually clears the
    # floor even on one core; the bench still marks 1-core runs
    # ``clamped`` (exempting them here) to keep timing-noise verdicts
    # off degenerate machines.
    ("vector", "grid_reduction", 2.0, "vectorized lock-step grid reduction"),
    # Deterministic seeded arithmetic (no wall-clock timing), so the
    # floor is tight: spot pricing with the on-demand fallback ladder
    # must keep the search strictly cheaper than pure on-demand.
    ("spot", "saving_ratio", 1.05, "spot+fallback cost saving vs on-demand"),
)


def _clamped(bench: dict | None, section: str) -> bool:
    return bool((bench or {}).get(section, {}).get("clamped"))


def _load(path: Path) -> dict | None:
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", type=Path, default=REPO_ROOT / "BENCH_perf.json"
    )
    parser.add_argument(
        "--baseline", type=Path, default=REPO_ROOT / "BENCH_perf.prev.json"
    )
    parser.add_argument("--max-ratio", type=float, default=2.0)
    args = parser.parse_args(argv)

    current = _load(args.current)
    baseline = _load(args.baseline)
    if current is None:
        print(f"perf gate: no current bench at {args.current}; skipping")
        return 0
    if baseline is None:
        print(f"perf gate: no baseline at {args.baseline}; skipping")
        return 0

    for section in EXEMPT_SECTIONS:
        if section in current or section in baseline:
            print(f"perf gate: section '{section}' present but exempt; ignoring")

    failures = []
    for section, key, label in TRACKED:
        if _clamped(current, section) or _clamped(baseline, section):
            print(f"perf gate: {label}: section '{section}' clamped, skipping")
            continue
        now = current.get(section, {}).get(key)
        before = baseline.get(section, {}).get(key)
        if not isinstance(now, (int, float)) or not isinstance(
            before, (int, float)
        ):
            print(f"perf gate: {label}: metric missing, skipping")
            continue
        if before <= 0:
            print(f"perf gate: {label}: degenerate baseline {before}, skipping")
            continue
        ratio = now / before
        verdict = "OK" if ratio <= args.max_ratio else "REGRESSION"
        print(
            f"perf gate: {label}: {before * 1e3:.2f} ms -> {now * 1e3:.2f} ms "
            f"({ratio:.2f}x, limit {args.max_ratio:.1f}x) {verdict}"
        )
        if ratio > args.max_ratio:
            failures.append(label)

    for section, key, minimum, label in FLOORS:
        value = current.get(section, {}).get(key)
        if not isinstance(value, (int, float)):
            print(f"perf gate: {label}: metric missing, skipping")
            continue
        if _clamped(current, section):
            print(
                f"perf gate: {label}: {value:.2f}x recorded but section "
                f"'{section}' clamped (single effective worker), skipping"
            )
            continue
        verdict = "OK" if value >= minimum else "REGRESSION"
        print(
            f"perf gate: {label}: {value:.2f}x (floor {minimum:.1f}x) {verdict}"
        )
        if value < minimum:
            failures.append(label)

    if failures:
        print(f"perf gate: FAILED for: {', '.join(failures)}")
        return 1
    print("perf gate: passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
