#!/usr/bin/env python
"""CI smoke: ``--executor vector`` must be byte-identical to serial.

Runs the same small experiment grid twice through
:class:`~repro.analysis.runner.ExperimentRunner` — once with the serial
executor, once with the lock-step vectorized driver — and fails unless
the cache files that land on disk are **byte**-identical.  Two grids are
checked: a clean stopping-rule Augmented-BO grid (the configuration the
vectorized driver batches most aggressively) and a fault-injected one
(transient faults + retries, exercising the driver's interplay with the
failure machinery and the desync fallback when searches stop at
different steps).

Exit status: 0 when both comparisons match, 1 otherwise.

Usage::

    python scripts/vector_smoke.py [--workloads 2] [--repeats 2]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiments import all_workload_ids  # noqa: E402
from repro.analysis.runner import ExperimentRunner, RunGrid  # noqa: E402
from repro.core.augmented_bo import AugmentedBO  # noqa: E402
from repro.core.objectives import Objective  # noqa: E402
from repro.core.stopping import PredictionDeltaThreshold  # noqa: E402
from repro.faults import FaultInjector, RetryPolicy, parse_fault_plan  # noqa: E402
from repro.trace.generate import default_trace  # noqa: E402


def clean_factory(environment, objective, seed):
    return AugmentedBO(
        environment,
        objective=objective,
        seed=seed,
        stopping=PredictionDeltaThreshold(),
    )


def faulty_factory(environment, objective, seed):
    plan = parse_fault_plan("transient:rate=0.3", seed=seed)
    return AugmentedBO(
        FaultInjector(environment, plan),
        objective=objective,
        seed=seed,
        stopping=PredictionDeltaThreshold(),
        retry_policy=RetryPolicy(max_attempts=3),
    )


def compare(trace, name: str, factory, workloads: int, repeats: int) -> bool:
    grid = RunGrid(
        key=f"vector-smoke-{name}",
        factory=factory,
        objective=Objective.TIME,
        workload_ids=tuple(all_workload_ids()[:workloads]),
        repeats=repeats,
    )
    with tempfile.TemporaryDirectory(prefix="vector-smoke-") as tmp:
        caches = {}
        for executor in ("serial", "vector"):
            cache_dir = Path(tmp) / executor
            runner = ExperimentRunner(trace, cache_dir=cache_dir)
            runner.run(grid, workers=1, executor=executor)
            caches[executor] = (
                cache_dir / f"vector-smoke-{name}__time.json"
            ).read_bytes()
    identical = caches["serial"] == caches["vector"]
    verdict = "byte-identical" if identical else "MISMATCH"
    print(
        f"vector smoke: {name} grid ({workloads}x{repeats}): "
        f"serial vs vector caches {verdict} "
        f"({len(caches['serial'])} bytes)"
    )
    return identical


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args(argv)

    trace = default_trace()
    ok = compare(trace, "clean", clean_factory, args.workloads, args.repeats)
    ok = compare(trace, "faulty", faulty_factory, args.workloads, args.repeats) and ok
    if not ok:
        print("vector smoke: FAILED — vectorized executor diverged from serial")
        return 1
    print("vector smoke: passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
