#!/usr/bin/env python3
"""Run every reproduction experiment and cache results under results/.

Usage::

    python scripts/build_cache.py [--fast]

``--fast`` uses tiny repeat counts (for smoke-testing the pipeline).
Each figure's output lands in ``results/figures/<name>.json``; the raw
per-run cache lives in ``results/cache/`` and makes re-runs incremental.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.analysis import experiments as exp
from repro.analysis.runner import ExperimentRunner
from repro.core.objectives import Objective

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
FIGURES = RESULTS / "figures"


def main() -> None:
    fast = "--fast" in sys.argv
    full = 3 if fast else exp.FULL_REPEATS
    single = 5 if fast else exp.SINGLE_REPEATS
    sweep = 2 if fast else exp.SWEEP_REPEATS

    FIGURES.mkdir(parents=True, exist_ok=True)
    runner = ExperimentRunner(cache_dir=RESULTS / "cache")

    jobs = [
        ("table1", lambda: exp.table1_registry()),
        ("fig3", lambda: exp.fig3_worst_best_spread(runner)),
        ("fig4", lambda: exp.fig4_extreme_vms(runner)),
        ("fig5", lambda: exp.fig5_input_size(runner)),
        ("fig6", lambda: exp.fig6_cost_levelling(runner)),
        ("fig8", lambda: exp.fig8_memory_bottleneck(runner)),
        ("fig1", lambda: exp.fig1_naive_cdf(runner, repeats=full)),
        ("fig9a", lambda: exp.fig9_cdf(runner, Objective.TIME, repeats=full)),
        ("fig2", lambda: exp.fig2_als_trace(runner, repeats=single)),
        ("fig7", lambda: exp.fig7_kernel_fragility(runner, repeats=single)),
        ("fig9b", lambda: exp.fig9_cdf(runner, Objective.COST, repeats=full, include_hybrid=False)),
        ("fig10", lambda: exp.fig10_example_traces(runner, repeats=single)),
        ("sec3c", lambda: exp.sec3c_initial_points(runner, repeats=5 if not fast else 2)),
        ("fig12", lambda: exp.fig12_win_loss(runner, repeats=full)),
        ("fig13", lambda: exp.fig13_timecost_product(runner, repeats=full)),
        ("fig11", lambda: exp.fig11_stopping_tradeoff(runner, repeats=sweep)),
    ]

    for name, job in jobs:
        start = time.time()
        result = job()
        (FIGURES / f"{name}.json").write_text(json.dumps(result, indent=1))
        print(f"[{time.strftime('%H:%M:%S')}] {name} done in {time.time() - start:.0f}s", flush=True)

    print("all experiments cached")


if __name__ == "__main__":
    main()
