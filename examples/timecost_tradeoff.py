#!/usr/bin/env python3
"""Navigate the time-cost trade-off (paper Section VI-B, Figure 13).

The time-cost product weighs a 10% time improvement exactly against a
10% cost increase.  The paper reports that with this objective and a
1.05 Prediction-Delta threshold, Augmented BO never needs more than six
measurements, while Naive BO runs long searches on a quarter of the
workloads.  This example replays that comparison on a sample of
workloads.

Run with::

    python examples/timecost_tradeoff.py
"""

import numpy as np

from repro import (
    AugmentedBO,
    EIThreshold,
    NaiveBO,
    Objective,
    PredictionDeltaThreshold,
    default_trace,
)

REPEATS = 8


def main() -> None:
    trace = default_trace()
    workload_ids = [w.workload_id for w in trace.registry][::8]  # 14 workloads
    objective = Objective.TIME_COST_PRODUCT

    naive_costs, augmented_costs = [], []
    naive_quality, augmented_quality = [], []
    for workload_id in workload_ids:
        optimum = trace.objective_values(workload_id, "product").min()
        for seed in range(REPEATS):
            naive = NaiveBO(
                trace.environment(workload_id),
                objective=objective,
                stopping=EIThreshold(fraction=0.1),
                seed=seed,
            ).run()
            augmented = AugmentedBO(
                trace.environment(workload_id),
                objective=objective,
                stopping=PredictionDeltaThreshold(threshold=1.05),
                seed=seed,
            ).run()
            naive_costs.append(naive.search_cost)
            augmented_costs.append(augmented.search_cost)
            naive_quality.append(naive.best_value / optimum)
            augmented_quality.append(augmented.best_value / optimum)

    def report(label, costs, quality):
        costs, quality = np.array(costs), np.array(quality)
        print(
            f"{label:<12} median search {np.median(costs):4.1f}  "
            f"long searches (>6): {np.mean(costs > 6) * 100:4.0f}%  "
            f"median quality {np.median(quality):.3f}x optimum"
        )

    print(f"time-cost product over {len(workload_ids)} workloads x {REPEATS} repeats\n")
    report("naive", naive_costs, naive_quality)
    report("augmented", augmented_costs, augmented_quality)
    print(
        "\nThe paper's claim to check: Augmented BO's search stays short"
        "\n(bounded around six measurements) without giving up quality."
    )


if __name__ == "__main__":
    main()
