#!/usr/bin/env python3
"""Use historical measurements of other workloads as a search prior.

Implements the paper's future-work idea: a new recurring job arrives,
but the operator has already profiled dozens of other workloads on the
same VM fleet.  A prior trained on those old (VM pair, low-level
metrics) -> speedup relations steers the first few acquisitions of the
new search.

Run with::

    python examples/history_prior.py
"""

import numpy as np

from repro import (
    AugmentedBO,
    HistoryAugmentedBO,
    HistoryModel,
    build_history_pairs,
    default_trace,
)

TARGET = "word2vec/Spark 2.1/small"
REPEATS = 10


def main() -> None:
    trace = default_trace()
    optimum = trace.objective_values(TARGET, "time").min()

    print(f"target workload: {TARGET}")
    print("building a prior from the other 106 workloads' measurements...")
    rows, targets = build_history_pairs(
        trace, TARGET, "time", pairs_per_workload=16, seed=0
    )
    history = HistoryModel(rows, targets, seed=0)
    print(f"prior trained on {len(targets)} historical (source -> dest) pairs\n")

    plain_costs, primed_costs = [], []
    for seed in range(REPEATS):
        plain = AugmentedBO(trace.environment(TARGET), seed=seed).run()
        primed = HistoryAugmentedBO(
            trace.environment(TARGET), history=history, seed=seed
        ).run()
        plain_costs.append(plain.first_step_reaching(optimum) or 19)
        primed_costs.append(primed.first_step_reaching(optimum) or 19)

    print(f"{'method':<24} {'median':>7} {'worst':>6}   measurements to optimum")
    print(f"{'augmented (no prior)':<24} {np.median(plain_costs):>7.1f} {max(plain_costs):>6}")
    print(f"{'history-augmented':<24} {np.median(primed_costs):>7.1f} {max(primed_costs):>6}")
    print("\nper-seed costs (no prior):  ", plain_costs)
    print("per-seed costs (with prior):", primed_costs)


if __name__ == "__main__":
    main()
