#!/usr/bin/env python3
"""Quickstart: find the best cloud VM for one workload.

Runs the paper's Augmented BO against the canonical benchmark trace and
shows what a search looks like measurement by measurement — which VMs it
tried, what they cost, and how close the final pick is to the true
optimum (which we can check because the trace contains all 18 VMs).

Run with::

    python examples/quickstart.py
"""

from repro import AugmentedBO, NaiveBO, Objective, PredictionDeltaThreshold, default_trace


def main() -> None:
    trace = default_trace()
    workload_id = "als/Spark 2.1/medium"
    objective = Objective.COST

    print(f"Searching for the most cost-effective VM for {workload_id}\n")

    environment = trace.environment(workload_id)
    optimizer = AugmentedBO(
        environment,
        objective=objective,
        stopping=PredictionDeltaThreshold(threshold=1.1),
        seed=42,
    )
    result = optimizer.run()

    print(f"{'step':>4}  {'VM type':<12} {'cost (USD)':>10}  {'best so far':>11}")
    for step in result.steps:
        print(
            f"{step.step:>4}  {step.vm_name:<12} {step.objective_value:>10.4f}"
            f"  {step.best_value:>11.4f}"
        )

    optimum = trace.objective_values(workload_id, "cost").min()
    optimal_vm = trace.best_vm(workload_id, "cost").name
    print(f"\nsearch stopped by: {result.stopped_by}")
    print(f"picked {result.best_vm_name} after {result.search_cost} measurements")
    print(f"true optimum: {optimal_vm} at {optimum:.4f} USD")
    print(f"found cost is {result.best_value / optimum:.2f}x the optimum")

    # For contrast: what the CherryPick baseline does on the same budget.
    naive = NaiveBO(environment, objective=objective, seed=42).run()
    naive_at_same_budget = naive.best_value_at(result.search_cost)
    print(
        f"\nNaive BO after the same {result.search_cost} measurements: "
        f"{naive_at_same_budget / optimum:.2f}x the optimum"
    )


if __name__ == "__main__":
    main()
