#!/usr/bin/env python3
"""Demonstrate Naive BO's kernel fragility (paper Figure 7).

Runs CherryPick-style BO with each of the four covariance kernels on two
workloads — ALS minimising time and Bayes minimising cost — and shows
that the kernel that wins on one workload can be the worst on the other.
This is the paper's argument for a surrogate that needs no kernel choice.

Run with::

    python examples/kernel_fragility.py
"""

import numpy as np

from repro import NaiveBO, Objective, default_trace
from repro.ml.kernels import kernel_by_name

KERNELS = ("rbf", "matern12", "matern32", "matern52")
CASES = (
    ("als/Spark 2.1/medium", Objective.TIME),
    ("bayes/Spark 2.1/medium", Objective.COST),
)
REPEATS = 20


def main() -> None:
    trace = default_trace()
    for workload_id, objective in CASES:
        optimum = trace.objective_values(workload_id, objective.trace_key).min()
        print(f"\n{workload_id}, minimising {objective.value}")
        print(f"{'kernel':<10} {'median measurements to optimum':>32}")
        medians = {}
        for kernel_name in KERNELS:
            costs = []
            for seed in range(REPEATS):
                result = NaiveBO(
                    trace.environment(workload_id),
                    objective=objective,
                    kernel=kernel_by_name(kernel_name),
                    seed=seed,
                ).run()
                costs.append(result.first_step_reaching(optimum) or 19)
            medians[kernel_name] = float(np.median(costs))
            print(f"{kernel_name:<10} {medians[kernel_name]:>32.1f}")
        best = min(medians, key=medians.__getitem__)
        worst = max(medians, key=medians.__getitem__)
        print(f"-> best kernel here: {best}; worst: {worst}")

    print(
        "\nIf the winning kernel differs between the two cases, no single"
        "\nkernel choice is safe — the fragility the paper demonstrates."
    )


if __name__ == "__main__":
    main()
