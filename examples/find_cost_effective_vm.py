#!/usr/bin/env python3
"""Compare Naive BO and Augmented BO on the cost objective.

Reproduces the Figure-12 story at small scale: both methods run with
their paper-prescribed stopping rules (10% Expected Improvement for
Naive, Prediction-Delta threshold 1.1 for Augmented) on a handful of
workloads, and we report search cost and deployment-cost quality side by
side.

Run with::

    python examples/find_cost_effective_vm.py
"""

import numpy as np

from repro import (
    AugmentedBO,
    EIThreshold,
    NaiveBO,
    Objective,
    PredictionDeltaThreshold,
    default_trace,
)

WORKLOADS = (
    "lr/Spark 1.5/medium",
    "bayes/Spark 2.1/medium",
    "terasort/Hadoop 2.7/large",
    "kmeans/Spark 2.1/large",
    "svd/Spark 2.1/medium",
    "join/Hadoop 2.7/medium",
)

REPEATS = 10


def run_method(trace, workload_id, method, repeats=REPEATS):
    """Median (search cost, normalised deployment cost) over repeats."""
    optimum = trace.objective_values(workload_id, "cost").min()
    costs, values = [], []
    for seed in range(repeats):
        if method == "naive":
            optimizer = NaiveBO(
                trace.environment(workload_id),
                objective=Objective.COST,
                stopping=EIThreshold(fraction=0.1),
                seed=seed,
            )
        else:
            optimizer = AugmentedBO(
                trace.environment(workload_id),
                objective=Objective.COST,
                stopping=PredictionDeltaThreshold(threshold=1.1),
                seed=seed,
            )
        result = optimizer.run()
        costs.append(result.search_cost)
        values.append(result.best_value / optimum)
    return float(np.median(costs)), float(np.median(values))


def main() -> None:
    trace = default_trace()
    print(f"{'workload':<28} {'naive':>14} {'augmented':>14}  verdict")
    print(f"{'':<28} {'meas / xopt':>14} {'meas / xopt':>14}")
    wins = 0
    for workload_id in WORKLOADS:
        naive_cost, naive_value = run_method(trace, workload_id, "naive")
        aug_cost, aug_value = run_method(trace, workload_id, "augmented")
        if aug_cost <= naive_cost and aug_value <= naive_value + 0.01:
            verdict = "augmented wins/ties"
            wins += 1
        elif aug_cost < naive_cost:
            verdict = "cheaper search, worse pick"
        else:
            verdict = "naive wins"
        print(
            f"{workload_id:<28} {naive_cost:>6.1f} / {naive_value:>4.2f}"
            f" {aug_cost:>7.1f} / {aug_value:>4.2f}  {verdict}"
        )
    print(f"\naugmented wins or ties on {wins}/{len(WORKLOADS)} workloads")


if __name__ == "__main__":
    main()
