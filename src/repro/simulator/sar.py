"""Sysstat-style time-series recording.

The paper runs a ``sysstat`` daemon during each execution and consumes
*summaries* of its samples (Section IV-A).  The rest of this library
works with those summaries (:class:`LowLevelMetrics`); this module adds
the layer underneath: a per-interval sample stream shaped like ``sar``
output, whose time-average reproduces the summary metrics.

This matters for fidelity tests (the summary really is an aggregate of a
plausible sample stream) and for the CLI's ``profile`` command, which
shows how a run *looks* over time: CPU ramps through start-up, I/O wait
burts at the start and end (input read / output write), memory commit
climbs towards the working set, and paging runs pin the disk throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.vmtypes import VMType
from repro.simulator.lowlevel import METRIC_NAMES, LowLevelMetrics, derive_metrics
from repro.simulator.perfmodel import PhaseBreakdown
from repro.workloads.spec import ResourceProfile

#: Relative jitter of each sample around its shaped value.
_SAMPLE_NOISE_SIGMA = 0.08


@dataclass(frozen=True, slots=True)
class SarSample:
    """One sampling interval of the recorder."""

    time_s: float
    cpu_user_pct: float
    cpu_iowait_pct: float
    task_count: float
    mem_commit_pct: float
    disk_util_pct: float
    disk_wait_ms: float

    def to_vector(self) -> np.ndarray:
        """Metric values in :data:`METRIC_NAMES` order."""
        return np.array(
            [
                self.cpu_user_pct,
                self.cpu_iowait_pct,
                self.task_count,
                self.mem_commit_pct,
                self.disk_util_pct,
                self.disk_wait_ms,
            ]
        )


class SarTrace:
    """An ordered sequence of :class:`SarSample` for one run."""

    def __init__(self, samples: list[SarSample]) -> None:
        if not samples:
            raise ValueError("a sar trace needs at least one sample")
        self._samples = list(samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)

    @property
    def samples(self) -> tuple[SarSample, ...]:
        return tuple(self._samples)

    @property
    def duration_s(self) -> float:
        """Timestamp of the last sample."""
        return self._samples[-1].time_s

    def to_matrix(self) -> np.ndarray:
        """``(n_samples, 6)`` matrix in :data:`METRIC_NAMES` order."""
        return np.stack([sample.to_vector() for sample in self._samples])

    def aggregate(self) -> LowLevelMetrics:
        """Time-averaged summary, as the paper's pipeline consumes."""
        return LowLevelMetrics.from_vector(self.to_matrix().mean(axis=0))


def _shape(name: str, t: np.ndarray, paging: bool) -> np.ndarray:
    """Unit-mean temporal shape of one metric over normalised time t in [0, 1]."""
    if name == "cpu_user_pct":
        # Trapezoid: ramp up through start-up, steady, tail off at the end.
        raw = np.minimum(np.minimum(t / 0.08, 1.0), np.minimum((1.0 - t) / 0.08, 1.0))
        raw = np.clip(raw, 0.05, 1.0)
    elif name == "cpu_iowait_pct":
        # Input read at the start, output write at the end; constant under paging.
        raw = 0.35 + 0.65 * (np.exp(-t / 0.15) + np.exp(-(1 - t) / 0.15))
        if paging:
            raw = np.maximum(raw, 0.9)
    elif name == "task_count":
        raw = np.where(t < 0.05, 0.6, 1.0)
    elif name == "mem_commit_pct":
        # Sigmoid climb towards the working set.
        raw = 0.35 + 0.65 / (1.0 + np.exp(-(t - 0.2) / 0.08))
    elif name == "disk_util_pct":
        raw = 0.4 + 0.6 * (np.exp(-t / 0.2) + np.exp(-(1 - t) / 0.2))
        if paging:
            raw = np.maximum(raw, 0.95)
    elif name == "disk_wait_ms":
        raw = 0.5 + 0.5 * (np.exp(-t / 0.2) + np.exp(-(1 - t) / 0.2))
        if paging:
            raw = np.maximum(raw, 0.9)
    else:
        raise ValueError(f"unknown metric {name!r}")
    return raw / raw.mean()


def record_sar_trace(
    vm: VMType,
    profile: ResourceProfile,
    breakdown: PhaseBreakdown,
    interval_s: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> SarTrace:
    """Simulate the sysstat sample stream of one run.

    The stream's time-average matches
    :func:`~repro.simulator.lowlevel.derive_metrics` for the same run up
    to sampling noise (each metric's shaped series is renormalised to the
    summary value, then jittered).

    Args:
        vm: the VM the workload ran on.
        profile: the workload's latent profile.
        breakdown: the run's phase decomposition.
        interval_s: sampling interval (sysstat default: 1 second).
        seed: seed (or Generator) for sample jitter.

    Raises:
        ValueError: if ``interval_s`` is not positive.
    """
    if interval_s <= 0:
        raise ValueError(f"interval_s must be positive, got {interval_s}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    summary = derive_metrics(vm, profile, breakdown).to_vector()
    n_samples = max(int(round(breakdown.total_time_s / interval_s)), 4)
    t = (np.arange(n_samples) + 0.5) / n_samples

    columns = []
    for name, target in zip(METRIC_NAMES, summary):
        series = target * _shape(name, t, breakdown.paging)
        noise = np.exp(rng.normal(0.0, _SAMPLE_NOISE_SIGMA, size=n_samples))
        series = series * noise
        # Renormalise so the time-average equals the summary exactly,
        # then clip utilisation-style metrics into their physical range.
        series *= target / series.mean() if series.mean() > 0 else 1.0
        if name.endswith("_pct") and name != "mem_commit_pct":
            series = np.clip(series, 0.0, 100.0)
        columns.append(series)

    matrix = np.column_stack(columns)
    samples = [
        SarSample(time_s=float((i + 1) * interval_s), **dict(zip(METRIC_NAMES, row)))
        for i, row in enumerate(matrix)
    ]
    return SarTrace(samples)
