"""Cloud interference noise.

The paper motivates search-based optimisation over one-shot modelling
partly because cloud measurements are noisy — shared infrastructure causes
performance interference (Section II-D).  We model that as multiplicative
lognormal noise, applied *independently* to the execution time and to each
low-level metric, so that metrics are an informative but imperfect window
into the latent state, as they are on real machines.
"""

from __future__ import annotations

import numpy as np

from repro.simulator.lowlevel import LowLevelMetrics

#: Default relative noise on execution time (a few percent, per CherryPick).
DEFAULT_TIME_SIGMA = 0.03

#: Default relative noise on each low-level metric.
DEFAULT_METRIC_SIGMA = 0.05


class InterferenceModel:
    """Seedable multiplicative-noise generator for one measurement stream.

    Args:
        time_sigma: lognormal sigma applied to execution times.
        metric_sigma: lognormal sigma applied to each low-level metric.
        seed: seed (or Generator) for the noise stream.  Two models built
            from the same seed produce identical noise sequences.
    """

    def __init__(
        self,
        time_sigma: float = DEFAULT_TIME_SIGMA,
        metric_sigma: float = DEFAULT_METRIC_SIGMA,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if time_sigma < 0 or metric_sigma < 0:
            raise ValueError("noise sigmas must be non-negative")
        self.time_sigma = time_sigma
        self.metric_sigma = metric_sigma
        self._rng = np.random.default_rng(seed)

    def reseed(self, rng: int | np.random.Generator | None) -> None:
        """Replace the noise stream (batched measurements re-seed per task)."""
        self._rng = np.random.default_rng(rng)

    def perturb_time(self, execution_time_s: float) -> float:
        """Return ``execution_time_s`` with one draw of interference noise."""
        if self.time_sigma == 0.0:
            return execution_time_s
        return float(execution_time_s * np.exp(self._rng.normal(0.0, self.time_sigma)))

    def perturb_metrics(self, metrics: LowLevelMetrics) -> LowLevelMetrics:
        """Return ``metrics`` with independent noise on each component."""
        if self.metric_sigma == 0.0:
            return metrics
        vector = metrics.to_vector()
        factors = np.exp(self._rng.normal(0.0, self.metric_sigma, size=vector.shape))
        return LowLevelMetrics.from_vector(vector * factors)
