"""Sysstat-style low-level metrics derived from the latent execution state.

The paper's Augmented BO consumes six low-level metric groups collected by
a sysstat daemon during each measured run (Section IV-A):

* workload progress — CPU utilisation (user time), I/O wait time, number
  of tasks in the task list,
* memory pressure — % of commits in memory,
* I/O pressure — disk utilisation and disk wait time.

We derive the same six from the :class:`PhaseBreakdown` the performance
model produced, so the metrics of a *measured* VM carry real information
about the workload's latent demands — which is exactly the property the
paper's surrogate exploits to predict performance on *unmeasured* VMs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.vmtypes import VMType
from repro.simulator.perfmodel import PhaseBreakdown
from repro.workloads.spec import ResourceProfile

#: Metric names in canonical vector order.
METRIC_NAMES: tuple[str, ...] = (
    "cpu_user_pct",
    "cpu_iowait_pct",
    "task_count",
    "mem_commit_pct",
    "disk_util_pct",
    "disk_wait_ms",
)

#: Memory commit saturates: the OS will not report more than ~140% commit.
_MEM_COMMIT_CAP_PCT = 140.0


@dataclass(frozen=True)
class LowLevelMetrics:
    """One run's low-level metric summary (time-averaged, as sysstat reports)."""

    cpu_user_pct: float
    cpu_iowait_pct: float
    task_count: float
    mem_commit_pct: float
    disk_util_pct: float
    disk_wait_ms: float

    def to_vector(self) -> np.ndarray:
        """Return the metrics as a float vector in :data:`METRIC_NAMES` order.

        The vector is built once per instance and memoised (the class is
        frozen, so it cannot go stale): the pairwise surrogate reads every
        measured VM's metrics on *every* search step, and rebuilding the
        array each time was a measurable constant in the hot path.  The
        returned array is marked read-only because it is shared.
        """
        cached = self.__dict__.get("_vector")
        if cached is None:
            cached = np.array(
                [
                    self.cpu_user_pct,
                    self.cpu_iowait_pct,
                    self.task_count,
                    self.mem_commit_pct,
                    self.disk_util_pct,
                    self.disk_wait_ms,
                ]
            )
            cached.flags.writeable = False
            object.__setattr__(self, "_vector", cached)
        return cached

    @classmethod
    def from_vector(cls, values: np.ndarray) -> LowLevelMetrics:
        """Inverse of :meth:`to_vector`.

        Raises:
            ValueError: if ``values`` does not have exactly 6 entries.
        """
        flat = np.asarray(values, dtype=float).ravel()
        if flat.shape != (len(METRIC_NAMES),):
            raise ValueError(
                f"expected {len(METRIC_NAMES)} metric values, got shape {flat.shape}"
            )
        return cls(*map(float, flat))


def derive_metrics(
    vm: VMType, profile: ResourceProfile, breakdown: PhaseBreakdown
) -> LowLevelMetrics:
    """Derive noise-free low-level metrics for one run.

    CPU-user and I/O-wait shares follow the phase balance; memory commit
    tracks the working-set-to-RAM ratio (saturating, as real ``%commit``
    does); disk wait grows superlinearly with disk utilisation, spiking
    under paging — the signature visible in the paper's Figure 8.
    """
    busy = breakdown.compute_time_s + breakdown.disk_time_s
    cpu_share = breakdown.compute_time_s / busy if busy > 0 else 0.0
    io_share = breakdown.disk_time_s / busy if busy > 0 else 0.0

    # Parallel efficiency limits achievable CPU utilisation: a workload
    # with speedup 3 on 8 cores cannot drive all 8 cores to 100%.
    parallel_efficiency = breakdown.parallel_speedup / vm.vcpus
    cpu_user = 100.0 * cpu_share * (0.35 + 0.65 * parallel_efficiency)
    cpu_iowait = 100.0 * io_share * 0.9

    mem_commit = min(100.0 * breakdown.memory_ratio, _MEM_COMMIT_CAP_PCT)

    disk_util = 100.0 * min(1.0, breakdown.disk_time_s / breakdown.total_time_s)
    paging_surge = 1.0 + 0.5 * (breakdown.paging_gb / vm.ram_gb if vm.ram_gb else 0.0)
    disk_wait = (2.0 + 45.0 * (disk_util / 100.0) ** 3) * paging_surge

    task_count = vm.vcpus * (1.0 + 2.0 * profile.parallel_fraction)

    return LowLevelMetrics(
        cpu_user_pct=cpu_user,
        cpu_iowait_pct=cpu_iowait,
        task_count=task_count,
        mem_commit_pct=mem_commit,
        disk_util_pct=disk_util,
        disk_wait_ms=disk_wait,
    )
