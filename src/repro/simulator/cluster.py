"""The measurable cloud: the black-box ``f`` that optimisers call.

In the paper, ``f(vm)`` deploys the workload on a VM type, runs it to
completion under a sysstat daemon, and returns the execution time (hence
deployment cost) and the collected low-level metrics — each call costs
real money, which is why search cost is counted in measurements.

:class:`SimulatedCloud` reproduces that interface over the performance
model.  :class:`MeasurementEnvironment` is the protocol optimisers depend
on, so they run unchanged against either a live simulation or a recorded
trace (:class:`repro.trace.dataset.TraceEnvironment`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.cloud.catalog import Catalog
from repro.cloud.pricing import PriceList, default_price_list, deployment_cost
from repro.cloud.vmtypes import VMType, default_catalog
from repro.simulator.lowlevel import LowLevelMetrics, derive_metrics
from repro.simulator.noise import InterferenceModel
from repro.simulator.perfmodel import PerformanceModel
from repro.workloads.spec import Workload


@dataclass(frozen=True, slots=True)
class Measurement:
    """The outcome of running one workload once on one VM type."""

    vm: VMType
    execution_time_s: float
    cost_usd: float
    metrics: LowLevelMetrics


@runtime_checkable
class MeasurementEnvironment(Protocol):
    """What an optimiser needs from the world: measure a VM, count the bill."""

    @property
    def catalog(self) -> tuple[VMType, ...]:
        """The VM types available for measurement."""
        ...

    @property
    def measurement_count(self) -> int:
        """How many measurement *attempts* have been charged so far.

        Failed attempts count too: the cloud bills a run that a spot
        reclamation killed.  Implementations must charge before the
        measurement can fail.
        """
        ...

    def measure(self, vm: VMType) -> Measurement:
        """Run the workload on ``vm`` and return the measured outcome.

        May raise on real clouds (or under a
        :class:`~repro.faults.models.FaultInjector`); the attempt is
        charged regardless.
        """
        ...

    def reset(self) -> None:
        """Reset the measurement counter (the trace/noise stream may continue)."""
        ...


class SimulatedCloud:
    """Live simulation of measuring one workload across the VM catalog.

    Each :meth:`measure` call draws fresh interference noise, mimicking
    repeated real executions.  Use a fixed ``seed`` for reproducible runs.
    """

    def __init__(
        self,
        workload: Workload,
        catalog: "Catalog | tuple[VMType, ...] | None" = None,
        prices: PriceList | None = None,
        noise: InterferenceModel | None = None,
        seed: int | None = None,
    ) -> None:
        if noise is not None and seed is not None:
            raise ValueError("pass either a noise model or a seed, not both")
        self.workload = workload
        if isinstance(catalog, Catalog):
            # A named catalog brings its own price list unless overridden.
            self._catalog = catalog.vms
            self._prices = prices if prices is not None else catalog.prices
        else:
            self._catalog = catalog if catalog is not None else default_catalog()
            self._prices = prices if prices is not None else default_price_list()
        self._noise = noise if noise is not None else InterferenceModel(seed=seed)
        self._model = PerformanceModel()
        self._count = 0

    @property
    def catalog(self) -> tuple[VMType, ...]:
        return self._catalog

    @property
    def measurement_count(self) -> int:
        return self._count

    def measure(self, vm: VMType) -> Measurement:
        """Simulate one full run of the workload on ``vm``.

        The attempt is charged up front, so a wrapper that makes this
        call fail (fault injection, a live cloud) still bills it.
        """
        self._count += 1
        breakdown = self._model.breakdown(vm, self.workload.profile)
        time_s = self._noise.perturb_time(breakdown.total_time_s)
        metrics = self._noise.perturb_metrics(
            derive_metrics(vm, self.workload.profile, breakdown)
        )
        return Measurement(
            vm=vm,
            execution_time_s=time_s,
            cost_usd=deployment_cost(time_s, vm, self._prices),
            metrics=metrics,
        )

    def reset(self) -> None:
        self._count = 0

    def arm_for(self, spawn_key: tuple[int, ...]) -> None:
        """Re-seed the interference stream for one batched measurement task.

        Makes the noise a task draws a pure function of its spawn key,
        independent of completion order and worker count.
        """
        self._noise.reseed(np.random.default_rng(list(spawn_key)))

    def measure_all(self) -> list[Measurement]:
        """Measure every VM in the catalog once (a brute-force sweep)."""
        return [self.measure(vm) for vm in self._catalog]

    def noise_free_times(self) -> np.ndarray:
        """Ground-truth execution times per catalog VM (for analysis only)."""
        return np.array(
            [self._model.execution_time(vm, self.workload.profile) for vm in self._catalog]
        )
