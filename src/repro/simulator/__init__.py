"""Simulation substrate standing in for the paper's AWS testbed.

The paper measures real workloads on real EC2 VMs with a sysstat daemon
collecting low-level metrics.  Offline, we replace that testbed with a
bottleneck-composition performance model: a workload's latent resource
profile meets a VM's hardware attributes and produces an execution time, a
deployment cost and the sysstat-style low-level metrics, all from the same
latent state (so the metrics genuinely carry signal about performance, as
they do on real machines).  See DESIGN.md section 2 for the substitution
rationale.
"""

from repro.simulator.perfmodel import PerformanceModel, PhaseBreakdown
from repro.simulator.lowlevel import (
    METRIC_NAMES,
    LowLevelMetrics,
    derive_metrics,
)
from repro.simulator.noise import InterferenceModel
from repro.simulator.cluster import Measurement, MeasurementEnvironment, SimulatedCloud
from repro.simulator.sar import SarSample, SarTrace, record_sar_trace

__all__ = [
    "PerformanceModel",
    "PhaseBreakdown",
    "METRIC_NAMES",
    "LowLevelMetrics",
    "derive_metrics",
    "InterferenceModel",
    "Measurement",
    "MeasurementEnvironment",
    "SimulatedCloud",
    "SarSample",
    "SarTrace",
    "record_sar_trace",
]
