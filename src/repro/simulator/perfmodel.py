"""Execution-time model: where latent workload demands meet VM hardware.

The model composes three interacting phases:

* **compute** — Amdahl's law over the VM's vCPUs, with per-core speed
  ``clock_factor ** cpu_gen_sensitivity`` (clock-bound workloads feel the
  full family clock difference; I/O-shaped ones barely notice it),
* **disk** — bulk I/O plus shuffle traffic through the best available disk
  path (local SSD on third-generation families, EBS otherwise),
* **paging** — the performance cliff: once the working set exceeds a safe
  fraction of VM RAM, the overflow is churned through the disk several
  times over and the CPU stalls on memory pressure.  This is what makes
  e.g. ``lr`` 14x slower on ``c3.large`` than on ``c4.2xlarge`` (paper
  Figure 8) and what makes the objective non-smooth in the encoded
  instance space (the paper's fragility argument, Section III-B).

Compute and disk partially overlap, as they do in real pipelines: the
total is the longer phase plus half the shorter one.

All outputs here are noise-free; interference noise is applied separately
by :class:`repro.simulator.noise.InterferenceModel` so that execution time
and low-level metrics are perturbed independently (the metrics must not be
a clean invertible function of the measured time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.vmtypes import VMType
from repro.workloads.spec import ResourceProfile

#: Fraction of VM RAM usable before paging starts (OS + framework overhead).
MEM_SAFE_FRACTION = 0.85

#: How many times each GiB of working-set overflow crosses the disk.
PAGING_CHURN = 16.0

#: Paging is random-access: it achieves only this fraction of the disk's
#: sequential bandwidth.
PAGING_BANDWIDTH_FRACTION = 0.3

#: CPU slowdown per unit of working-set overflow ratio (memory stalls).
MEM_STALL_FACTOR = 0.6

#: Fraction of the shorter phase that overlaps the longer one.
PHASE_OVERLAP = 0.5


@dataclass(frozen=True, slots=True)
class PhaseBreakdown:
    """Noise-free decomposition of one (workload, VM) execution.

    This is the latent state shared by the execution-time model and the
    low-level metric derivation.
    """

    compute_time_s: float
    disk_time_s: float
    total_time_s: float
    paging_gb: float
    memory_ratio: float
    parallel_speedup: float

    @property
    def paging(self) -> bool:
        """Whether the working set overflowed the VM's safe RAM capacity."""
        return self.paging_gb > 0.0


class PerformanceModel:
    """Deterministic bottleneck-composition performance model.

    The model is stateless; parameters are module constants because the
    paper's phenomena depend on their relations, not their exact values,
    and a single canonical parameterisation keeps every experiment
    comparable.
    """

    def breakdown(self, vm: VMType, profile: ResourceProfile) -> PhaseBreakdown:
        """Compute the full phase decomposition for ``profile`` on ``vm``."""
        par = profile.parallel_fraction
        speedup = 1.0 / ((1.0 - par) + par / vm.vcpus)
        core_speed = vm.clock_factor**profile.cpu_gen_sensitivity

        memory_ratio = profile.working_set_gb / vm.ram_gb
        overflow_ratio = max(0.0, memory_ratio - MEM_SAFE_FRACTION)
        paging_gb = PAGING_CHURN * overflow_ratio * vm.ram_gb
        mem_stall = 1.0 + MEM_STALL_FACTOR * overflow_ratio

        compute_time = profile.cpu_seconds / (speedup * core_speed) * mem_stall

        bulk_gb = profile.io_gb + profile.shuffle_gb
        disk_time = (
            bulk_gb * 1024.0 / vm.disk_mbps
            + paging_gb * 1024.0 / (vm.disk_mbps * PAGING_BANDWIDTH_FRACTION)
        )

        longer, shorter = max(compute_time, disk_time), min(compute_time, disk_time)
        total = longer + (1.0 - PHASE_OVERLAP) * shorter

        return PhaseBreakdown(
            compute_time_s=compute_time,
            disk_time_s=disk_time,
            total_time_s=total,
            paging_gb=paging_gb,
            memory_ratio=memory_ratio,
            parallel_speedup=speedup,
        )

    def execution_time(self, vm: VMType, profile: ResourceProfile) -> float:
        """Noise-free execution time in seconds of ``profile`` on ``vm``."""
        return self.breakdown(vm, profile).total_time_s
