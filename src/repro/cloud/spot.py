"""Seeded spot (preemptible) markets over any catalog.

Cloud providers sell spare capacity at a steep discount with one catch:
the instance can be *revoked* mid-run.  This module models that trade
deterministically so every existing catalog gains a spot twin without
new data files:

* :class:`SpotMarket` — a pure function of its seed.  Each VM type gets
  a discount depth (hashed from its name, so adding a VM never shifts
  another's market), a price-volatility stream, and a revocation hazard
  that *rises with the discount*: the cheaper the capacity, the sooner
  the provider wants it back.
* :class:`PriceQuote` — one VM's market terms at one tick: discounted
  hourly price, discount depth, and the per-attempt revocation hazard.
* :class:`SpotPolicy` — how a search consumes the market: the retry
  ladder's fallback threshold (revocations per observation before the
  search pays on-demand price for a guaranteed run), the resume credit
  (fraction of a revoked run's completed work a retry may reuse), and
  the revocation-churn quarantine threshold for the circuit breaker.

Everything is arithmetic over ``numpy`` Philox streams keyed by
``(market seed, crc32(vm name))``: two processes with the same seed
quote the same market, which is what keeps spot searches bit-identical
across worker counts and completion orders.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.cloud.catalog import Catalog
from repro.cloud.pricing import PriceList
from repro.cloud.vmtypes import VMType

#: The two pricing modes a search (or a single attempt) can run under.
PRICING_MODES = ("on-demand", "spot")


@dataclass(frozen=True, slots=True)
class PriceQuote:
    """One VM's spot-market terms at one tick.

    Attributes:
        vm_name: the quoted VM type.
        pricing: ``"spot"`` (quotes for on-demand capacity are the
            degenerate quote: zero discount, zero hazard).
        on_demand_price_per_hour: the catalog's posted hourly price.
        price_per_hour: the discounted (and volatility-perturbed at
            ``tick > 0``) spot price.
        discount: fraction knocked off the on-demand price at tick 0.
        hazard_rate: per-attempt probability the instance is revoked
            mid-run.
    """

    vm_name: str
    pricing: str
    on_demand_price_per_hour: float
    price_per_hour: float
    discount: float
    hazard_rate: float

    @property
    def price_ratio(self) -> float:
        """Spot price as a fraction of on-demand (``1 - discount``)."""
        return 1.0 - self.discount


def _vm_stream(seed: int, vm_name: str, *extra: int) -> np.random.Generator:
    """A Philox stream keyed by the market seed and the VM's name hash."""
    return np.random.default_rng(
        [seed, zlib.crc32(vm_name.encode()) & 0x7FFFFFFF, *extra]
    )


@dataclass(frozen=True, slots=True)
class SpotMarket:
    """A seeded, deterministic spot market over VM-type names.

    Attributes:
        seed: root seed; the whole market is a pure function of it.
        min_discount: shallowest discount any VM is quoted.
        max_discount: deepest discount any VM is quoted.
        base_hazard: per-attempt revocation probability at zero discount.
        hazard_slope: extra hazard per unit of discount — deep discounts
            mean capacity the provider reclaims eagerly.
        volatility: half-width of the tick-to-tick price wobble, as a
            fraction of the tick-0 spot price (tick 0 is never wobbled,
            so catalog pricing stays stable).
    """

    seed: int = 0
    min_discount: float = 0.35
    max_discount: float = 0.8
    base_hazard: float = 0.02
    hazard_slope: float = 0.25
    volatility: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_discount <= self.max_discount < 1.0:
            raise ValueError(
                "discounts must satisfy 0 <= min <= max < 1, got "
                f"[{self.min_discount}, {self.max_discount}]"
            )
        if not 0.0 <= self.base_hazard < 1.0:
            raise ValueError(f"base_hazard must be in [0, 1), got {self.base_hazard}")
        if self.hazard_slope < 0.0:
            raise ValueError(f"hazard_slope must be >= 0, got {self.hazard_slope}")
        if not 0.0 <= self.volatility < 1.0:
            raise ValueError(f"volatility must be in [0, 1), got {self.volatility}")

    def discount(self, vm_name: str) -> float:
        """The VM's discount depth — hashed from its name, not its
        catalog position, so catalogs can grow without moving markets."""
        u = float(_vm_stream(self.seed, vm_name).random())
        return self.min_discount + u * (self.max_discount - self.min_discount)

    def hazard(self, vm_name: str) -> float:
        """Per-attempt revocation probability; rises with the discount."""
        raw = self.base_hazard + self.hazard_slope * self.discount(vm_name)
        return min(raw, 0.95)

    def quote(
        self, vm: VMType | str, on_demand_price_per_hour: float, tick: int = 0
    ) -> PriceQuote:
        """The VM's spot terms at ``tick`` (0 = the stable base quote)."""
        name = vm.name if isinstance(vm, VMType) else vm
        discount = self.discount(name)
        price = on_demand_price_per_hour * (1.0 - discount)
        if tick > 0 and self.volatility > 0.0:
            wobble = float(_vm_stream(self.seed, name, tick).random())
            price *= 1.0 + self.volatility * (2.0 * wobble - 1.0)
        return PriceQuote(
            vm_name=name,
            pricing="spot",
            on_demand_price_per_hour=on_demand_price_per_hour,
            price_per_hour=round(price, 6),
            discount=discount,
            hazard_rate=self.hazard(name),
        )

    def price_list(self, prices: PriceList) -> PriceList:
        """The spot twin of an on-demand price list (tick-0 quotes)."""
        return PriceList(
            prices={
                name: self.quote(name, hourly).price_per_hour
                for name, hourly in prices.prices.items()
            }
        )


def spot_twin(catalog: Catalog, market: SpotMarket) -> Catalog:
    """A catalog priced at ``market``'s tick-0 spot quotes.

    Same name, same VM tuple, same canonical order — encoders, traces
    and grid keys see an identical instance space; only the price list
    changes.  The twin is *not* registered: spot pricing is a view of a
    catalog, not a new catalog.
    """
    return Catalog(
        name=catalog.name,
        vms=catalog.vms,
        prices=market.price_list(catalog.prices),
        description=(
            f"{catalog.description} [spot twin, market seed {market.seed}]"
        ).strip(),
    )


@dataclass(frozen=True, slots=True)
class SpotPolicy:
    """How a search consumes a :class:`SpotMarket`.

    Attributes:
        market: the market quoting discounts and hazards.
        fallback_after: revocations *within one observation's retry
            ladder* before the remaining attempts run on-demand at full
            price (guaranteed, never revoked).
        resume_credit: fraction of a revoked run's newly completed work
            the retry resumes from (1.0 = perfect checkpointing, 0.0 =
            every retry starts from scratch).
        revocation_quarantine: cumulative revocations of one VM before
            the circuit breaker quarantines it for churn (price-aware
            mode); ``None`` disables churn quarantine.
    """

    market: SpotMarket
    fallback_after: int = 2
    resume_credit: float = 1.0
    revocation_quarantine: int | None = 6

    def __post_init__(self) -> None:
        if self.fallback_after < 1:
            raise ValueError(
                f"fallback_after must be >= 1, got {self.fallback_after}"
            )
        if not 0.0 <= self.resume_credit <= 1.0:
            raise ValueError(
                f"resume_credit must be in [0, 1], got {self.resume_credit}"
            )
        if self.revocation_quarantine is not None and self.revocation_quarantine < 1:
            raise ValueError(
                "revocation_quarantine must be >= 1 or None, got "
                f"{self.revocation_quarantine}"
            )

    def expected_attempt_cost(self, vm_name: str) -> float:
        """Expected charge (in on-demand attempt units) to *complete*
        one measurement of ``vm_name`` on spot with resume credit.

        With per-attempt hazard ``h``, price ratio ``p = 1 - discount``
        and resume credit ``r``, a revocation at uniform fraction ``g``
        of the remaining work bills ``p*g`` and resumes from ``r*g``, so
        the expected completion cost solves

            W = (1 - h) * p + h * E_g[p*g + (1 - r*g) * W]

        giving the closed form ``W = p * (1 - h/2) / (1 - h*(1 - r/2))``.
        The optimiser charges this — not the nominal spot price — when
        reserving budget for a pick, so acquisition reflects revocation
        risk, not just the discount.
        """
        h = self.market.hazard(vm_name)
        p = 1.0 - self.market.discount(vm_name)
        return p * (1.0 - h / 2.0) / (1.0 - h * (1.0 - self.resume_credit / 2.0))
