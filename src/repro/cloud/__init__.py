"""Cloud substrate: the instance spaces the optimisers search over.

This package models the *published* side of the cloud — VM types, their
on-demand prices, and the numeric encoding of the instance space
described in Section V-A of the paper.  The default catalog is the
paper's 18 EC2 types (families c3, c4, m3, m4, r3, r4 in sizes large,
xlarge, 2xlarge); :mod:`repro.cloud.catalog` adds a named registry of
pluggable catalogs (generated large AWS-style and multi-provider sets)
that thread through the encoder, simulator, traces and CLI.
"""

from repro.cloud.vmtypes import (
    SIZE_LADDER,
    VM_FAMILIES,
    VM_SIZES,
    VMType,
    default_catalog,
    get_vm_type,
)
from repro.cloud.pricing import PriceList, default_price_list, deployment_cost
from repro.cloud.encoding import InstanceEncoder
from repro.cloud.catalog import (
    DEFAULT_CATALOG_NAME,
    Catalog,
    catalog_names,
    get_catalog,
    register_catalog,
)
from repro.cloud.spot import (
    PRICING_MODES,
    PriceQuote,
    SpotMarket,
    SpotPolicy,
    spot_twin,
)

__all__ = [
    "SIZE_LADDER",
    "VM_FAMILIES",
    "VM_SIZES",
    "VMType",
    "default_catalog",
    "get_vm_type",
    "PriceList",
    "default_price_list",
    "deployment_cost",
    "InstanceEncoder",
    "DEFAULT_CATALOG_NAME",
    "Catalog",
    "catalog_names",
    "get_catalog",
    "register_catalog",
    "PRICING_MODES",
    "PriceQuote",
    "SpotMarket",
    "SpotPolicy",
    "spot_twin",
]
