"""Cloud substrate: the AWS instance-space the paper searches over.

This package models the *published* side of the cloud — the 18 EC2 VM types
used in the paper (families c3, c4, m3, m4, r3, r4 in sizes large, xlarge,
2xlarge), their on-demand prices, and the numeric encoding of the instance
space described in Section V-A of the paper.
"""

from repro.cloud.vmtypes import (
    VM_FAMILIES,
    VM_SIZES,
    VMType,
    default_catalog,
    get_vm_type,
)
from repro.cloud.pricing import PriceList, default_price_list, deployment_cost
from repro.cloud.encoding import InstanceEncoder

__all__ = [
    "VM_FAMILIES",
    "VM_SIZES",
    "VMType",
    "default_catalog",
    "get_vm_type",
    "PriceList",
    "default_price_list",
    "deployment_cost",
    "InstanceEncoder",
]
