"""On-demand pricing and deployment cost.

Prices are 2017-era us-east-1 on-demand rates (USD per hour), matching the
period of the paper's data collection.  The paper's observations depend on
their *structure*, which these rates preserve:

* within a family, price doubles with each size step,
* ``c4.large`` is the cheapest type and the ``2xlarge`` sizes the most
  expensive of each family (Figure 4 relies on both facts),
* memory-optimised capacity costs more per hour than compute-optimised.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.cloud.vmtypes import VMType, default_catalog

#: USD per hour for the "large" size of each family; doubles with size.
_LARGE_PRICE_USD = {
    "c3": 0.105,
    "c4": 0.100,
    "m3": 0.133,
    "m4": 0.108,
    "r3": 0.166,
    "r4": 0.133,
}


def _default_prices() -> dict[str, float]:
    prices = {}
    for vm in default_catalog():
        size_index = ("large", "xlarge", "2xlarge").index(vm.size)
        prices[vm.name] = round(_LARGE_PRICE_USD[vm.family] * (2**size_index), 4)
    return prices


@dataclass(frozen=True)
class PriceList:
    """Immutable mapping from VM type name to on-demand USD/hour."""

    prices: Mapping[str, float] = field(default_factory=_default_prices)

    def price_per_hour(self, vm: VMType | str) -> float:
        """Return the hourly price of ``vm`` (a :class:`VMType` or name)."""
        name = vm.name if isinstance(vm, VMType) else vm
        try:
            return self.prices[name]
        except KeyError:
            raise KeyError(f"no price for VM type {name!r}") from None

    def price_per_second(self, vm: VMType | str) -> float:
        """Return the per-second price of ``vm``."""
        return self.price_per_hour(vm) / 3600.0

    def cheapest(self) -> str:
        """Return the name of the cheapest VM type."""
        return min(self.prices, key=self.prices.__getitem__)

    def most_expensive(self) -> str:
        """Return the name of the most expensive VM type."""
        return max(self.prices, key=self.prices.__getitem__)


_DEFAULT_PRICE_LIST = PriceList()


def default_price_list() -> PriceList:
    """Return the canonical 2017-era price list used by the paper."""
    return _DEFAULT_PRICE_LIST


def deployment_cost(
    execution_time_s: float, vm: VMType | str, prices: PriceList | None = None
) -> float:
    """Cost in USD of running a workload for ``execution_time_s`` on ``vm``.

    The paper bills per-second (cost = time x unit price); we follow that
    convention rather than AWS's historical per-hour rounding, since the
    paper's cost figures are continuous.
    """
    if execution_time_s < 0:
        raise ValueError(f"execution time must be non-negative, got {execution_time_s}")
    price_list = prices if prices is not None else _DEFAULT_PRICE_LIST
    return execution_time_s * price_list.price_per_second(vm)
