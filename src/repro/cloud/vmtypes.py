"""The 18 EC2 VM types evaluated in the paper.

The paper (Section V-A) measures six VM families available on AWS in 2017
— c3, c4 (compute optimised), m3, m4 (general purpose), r3, r4 (memory
optimised) — in three sizes: ``large`` (2 vCPUs), ``xlarge`` (4 vCPUs) and
``2xlarge`` (8 vCPUs).  This module provides a static catalog of those 18
types with the hardware attributes the simulator needs:

* vCPU count and per-core clock factor (relative to a reference core),
* real RAM in GiB (not the coarse per-core class used for *encoding*),
* EBS bandwidth in MB/s and whether the family ships local instance-store
  SSDs (third-generation families do; fourth-generation families are
  EBS-only — a real AWS distinction that matters for I/O-heavy workloads).

The *encoded* instance space the optimisers see is produced separately by
:class:`repro.cloud.encoding.InstanceEncoder`, mirroring the paper's split
between published characteristics and actual behaviour.
"""

from __future__ import annotations

import difflib
import math
from dataclasses import dataclass

#: Family order used throughout the paper's encoding (CPU types 1..6).
VM_FAMILIES: tuple[str, ...] = ("c3", "c4", "m3", "m4", "r3", "r4")

#: Size order; vCPU count doubles at each step.
VM_SIZES: tuple[str, ...] = ("large", "xlarge", "2xlarge")

#: Canonical size ladder for generated catalogs; the paper's three sizes
#: are its prefix, so size-derived encodings stay bit-identical for them.
SIZE_LADDER: tuple[str, ...] = (
    "large",
    "xlarge",
    "2xlarge",
    "4xlarge",
    "8xlarge",
    "16xlarge",
)

_VCPUS_BY_SIZE = {"large": 2, "xlarge": 4, "2xlarge": 8}

# Real RAM (GiB) per family for the "large" size; doubles with each size.
_RAM_LARGE_GB = {
    "c3": 3.75,
    "c4": 3.75,
    "m3": 7.5,
    "m4": 8.0,
    "r3": 15.25,
    "r4": 15.25,
}

# Per-core clock factor relative to a reference core.  Fourth-generation
# compute family (c4, Haswell 2.9 GHz) is fastest; third-generation general
# purpose and memory families are slowest.
_CLOCK_FACTOR = {
    "c3": 1.00,
    "c4": 1.18,
    "m3": 0.82,
    "m4": 0.95,
    "r3": 0.85,
    "r4": 1.02,
}

# EBS bandwidth (MB/s) by size for third-generation families; the
# fourth generation is EBS-optimised and substantially faster.
_EBS_MBPS_BY_SIZE = {"large": 70.0, "xlarge": 110.0, "2xlarge": 170.0}
_GEN4_EBS_BOOST = 1.6

# Third-generation families carry local instance-store SSDs.
_LOCAL_SSD_GENERATIONS = frozenset({3})

# Local SSD bandwidth (MB/s) by size, where present.
_LOCAL_SSD_MBPS_BY_SIZE = {"large": 130.0, "xlarge": 230.0, "2xlarge": 380.0}


@dataclass(frozen=True, slots=True)
class VMType:
    """A single cloud VM type and the hardware attributes that drive it.

    Instances are immutable and hashable so they can key dictionaries and
    appear in sets; identity is the full attribute tuple, but in practice
    ``name`` uniquely identifies a type within a catalog.
    """

    name: str
    family: str
    generation: int
    size: str
    vcpus: int
    ram_gb: float
    clock_factor: float
    ebs_mbps: float
    local_ssd: bool
    local_ssd_mbps: float
    provider: str = "aws"

    @property
    def ram_per_core_gb(self) -> float:
        """Actual RAM per vCPU in GiB."""
        return self.ram_gb / self.vcpus

    @property
    def ram_per_core_class(self) -> int:
        """Coarse RAM-per-core class used by the paper's encoding.

        The paper's AWS families map by archetype letter: compute-optimised
        encode as 2 GiB/core, general purpose as 4 GiB/core and
        memory-optimised as 8 GiB/core.  Families outside that naming
        scheme (generated and non-AWS catalogs) fall back to the nearest
        power of two of the *actual* RAM per core, which reproduces the
        paper's 2/4/8 classes exactly for all six original families.
        """
        by_letter = {"c": 2, "m": 4, "r": 8}
        klass = by_letter.get(self.family[0])
        if klass is not None:
            return klass
        return max(1, 2 ** round(math.log2(max(self.ram_per_core_gb, 1.0))))

    @property
    def ebs_class(self) -> int:
        """I/O bandwidth class used by the paper's encoding.

        Derived from the size ladder (``large`` -> 1, ``xlarge`` -> 2, …),
        which is 1..3 for the paper's three sizes; sizes outside the
        ladder fall back to ``log2(vcpus)``, the same 1..3 values for the
        original 2/4/8-vCPU types.
        """
        if self.size in SIZE_LADDER:
            return SIZE_LADDER.index(self.size) + 1
        return max(1, round(math.log2(max(self.vcpus, 2))))

    @property
    def disk_mbps(self) -> float:
        """Best available disk bandwidth: local SSD when present, else EBS."""
        return max(self.ebs_mbps, self.local_ssd_mbps) if self.local_ssd else self.ebs_mbps

    def __str__(self) -> str:
        return self.name


def _build_vm_type(family: str, size: str) -> VMType:
    generation = int(family[1])
    size_index = VM_SIZES.index(size)
    ebs = _EBS_MBPS_BY_SIZE[size] * (_GEN4_EBS_BOOST if generation == 4 else 1.0)
    has_ssd = generation in _LOCAL_SSD_GENERATIONS
    return VMType(
        name=f"{family}.{size}",
        family=family,
        generation=generation,
        size=size,
        vcpus=_VCPUS_BY_SIZE[size],
        ram_gb=_RAM_LARGE_GB[family] * (2**size_index),
        clock_factor=_CLOCK_FACTOR[family],
        ebs_mbps=ebs,
        local_ssd=has_ssd,
        local_ssd_mbps=_LOCAL_SSD_MBPS_BY_SIZE[size] if has_ssd else 0.0,
    )


_CATALOG: tuple[VMType, ...] = tuple(
    _build_vm_type(family, size) for family in VM_FAMILIES for size in VM_SIZES
)
_CATALOG_BY_NAME = {vm.name: vm for vm in _CATALOG}


def default_catalog() -> tuple[VMType, ...]:
    """Return the paper's 18 VM types in canonical (family, size) order."""
    return _CATALOG


def unknown_vm_message(name: str, catalog_name: str, known: tuple[str, ...] | list[str]) -> str:
    """Error message for an unknown VM type: names the catalog, suggests
    the closest known types, and (for small catalogs) lists everything."""
    close = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
    message = f"unknown VM type {name!r} in catalog {catalog_name!r}"
    if close:
        message += f"; closest matches: {', '.join(close)}"
    if len(known) <= 24:
        message += f"; known types: {', '.join(sorted(known))}"
    else:
        message += f" ({len(known)} types; see `arrow catalog show {catalog_name}`)"
    return message


def get_vm_type(name: str) -> VMType:
    """Look up a VM type in the default catalog by its AWS name.

    Raises:
        KeyError: if ``name`` is not one of the 18 ``aws-2017`` types; the
            message names the catalog and the closest known names.
    """
    try:
        return _CATALOG_BY_NAME[name]
    except KeyError:
        raise KeyError(
            unknown_vm_message(name, "aws-2017", tuple(_CATALOG_BY_NAME))
        ) from None
