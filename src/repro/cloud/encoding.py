"""Numeric encoding of the instance space (paper Section V-A).

The optimisers never see hardware ground truth; they see four published
characteristics encoded as numbers, exactly as the paper prescribes:

1. **CPU type** — the family, encoded ``1..n_families`` in catalog
   first-appearance order (``c3, c4, m3, m4, r3, r4`` -> 1..6 for the
   default ``aws-2017`` catalog, exactly the paper's order),
2. **core count** — the actual vCPU count (``{2, 4, 8}`` in the paper),
3. **RAM per core** — the coarse power-of-two class (``{2, 4, 8}``
   GiB/core in the paper),
4. **EBS bandwidth class** — the size-ladder class (``{1, 2, 3}`` in the
   paper).

This encoding is deliberately imperfect — e.g. adjacent CPU-type codes can
have wildly different memory capacity — which is precisely the source of the
fragility the paper studies.  The encoder works for any catalog
(:mod:`repro.cloud.catalog`), including >6 families and multiple
providers; the family code space simply grows with the catalog.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.cloud.vmtypes import VMType, default_catalog

#: Names of the four encoded features, in column order.
FEATURE_NAMES: tuple[str, ...] = (
    "cpu_type",
    "core_count",
    "ram_per_core",
    "ebs_class",
)


class InstanceEncoder:
    """Encodes :class:`VMType` objects into the paper's 4-feature space.

    The encoder is stateless apart from the catalog it serves; it exists as
    a class so optimisers can hold one object that maps both directions
    (VM -> vector for the surrogate, row index -> VM for acquisition argmax).
    """

    def __init__(self, catalog: Iterable[VMType] | None = None) -> None:
        self._catalog: tuple[VMType, ...] = (
            tuple(catalog) if catalog is not None else default_catalog()
        )
        self._index_by_name = {vm.name: i for i, vm in enumerate(self._catalog)}
        # Family codes 1..n in catalog first-appearance order; for the
        # default catalog this is exactly the paper's c3..r4 -> 1..6.
        self._families = tuple(dict.fromkeys(vm.family for vm in self._catalog))
        self._family_code = {family: i + 1 for i, family in enumerate(self._families)}
        self._matrix = np.array([self.encode(vm) for vm in self._catalog], dtype=float)

    @property
    def catalog(self) -> tuple[VMType, ...]:
        """The VM types this encoder serves, in canonical order."""
        return self._catalog

    @property
    def families(self) -> tuple[str, ...]:
        """Families in encoding order (code ``i+1`` is ``families[i]``)."""
        return self._families

    @property
    def n_features(self) -> int:
        """Number of encoded features (always 4)."""
        return len(FEATURE_NAMES)

    def encode(self, vm: VMType) -> np.ndarray:
        """Encode a single VM type as a length-4 float vector.

        Raises:
            ValueError: if ``vm``'s family is not in this encoder's catalog.
        """
        code = self._family_code.get(vm.family)
        if code is None:
            raise ValueError(
                f"family {vm.family!r} is not in this encoder's catalog "
                f"(families: {', '.join(self._families)})"
            )
        return np.array(
            [
                float(code),
                float(vm.vcpus),
                float(vm.ram_per_core_class),
                float(vm.ebs_class),
            ]
        )

    def encode_all(self) -> np.ndarray:
        """Return the full ``(n_vms, 4)`` design matrix for the catalog."""
        return self._matrix.copy()

    def index_of(self, vm: VMType | str) -> int:
        """Row index of ``vm`` in :meth:`encode_all`'s matrix."""
        name = vm.name if isinstance(vm, VMType) else vm
        try:
            return self._index_by_name[name]
        except KeyError:
            raise KeyError(f"VM type {name!r} is not in this encoder's catalog") from None

    def vm_at(self, index: int) -> VMType:
        """The VM type at row ``index`` of the design matrix."""
        return self._catalog[index]
