"""Named VM catalogs: the paper's 18 types and generated large catalogs.

The paper searches a fixed 18-type 2017 AWS catalog, but the optimisers
and hot paths are written for *any* finite instance space.  This module
makes the instance space pluggable:

* :class:`Catalog` bundles an ordered tuple of :class:`~repro.cloud.vmtypes.VMType`
  with its :class:`~repro.cloud.pricing.PriceList` under a stable name,
* a process-wide registry maps names to lazily built catalogs
  (:func:`get_catalog` / :func:`catalog_names` / :func:`register_catalog`),
* three catalogs ship built in:

  - ``aws-2017`` — the paper's 18 types, bit-identical to
    :func:`~repro.cloud.vmtypes.default_catalog` and
    :func:`~repro.cloud.pricing.default_price_list`;
  - ``aws-large`` — ~200 deterministic generated AWS-style types (five
    archetypes × seven generations × six sizes) for stress-testing the
    candidate axis;
  - ``multicloud`` — ~400 types across three providers (the aws-large
    set plus two Selectel/Timeweb-style providers) with per-provider
    pricing structure.

Generated catalogs are pure arithmetic over the spec tables below — no
randomness — so every process, machine and CI run builds byte-identical
catalogs, which keeps grid keys and cached results stable.
"""

from __future__ import annotations

import difflib
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.cloud.pricing import PriceList, default_price_list
from repro.cloud.vmtypes import (
    SIZE_LADDER,
    VMType,
    default_catalog,
    unknown_vm_message,
)

#: Name of the catalog every default path uses (the paper's).
DEFAULT_CATALOG_NAME = "aws-2017"


@dataclass(frozen=True)
class Catalog:
    """An ordered, priced, named set of VM types.

    The tuple order is canonical: encoders, traces and grid keys all
    index VMs by their position here, so a catalog name pins the whole
    candidate space byte-for-byte.
    """

    name: str
    vms: tuple[VMType, ...]
    prices: PriceList
    description: str = ""
    _by_name: dict[str, VMType] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.vms:
            raise ValueError(f"catalog {self.name!r} has no VM types")
        by_name = {vm.name: vm for vm in self.vms}
        if len(by_name) != len(self.vms):
            raise ValueError(f"catalog {self.name!r} has duplicate VM names")
        object.__setattr__(self, "_by_name", by_name)

    def __len__(self) -> int:
        return len(self.vms)

    def __iter__(self) -> Iterator[VMType]:
        return iter(self.vms)

    def __getitem__(self, index: int) -> VMType:
        return self.vms[index]

    @property
    def families(self) -> tuple[str, ...]:
        """Distinct families in first-appearance order (the encoding order)."""
        return tuple(dict.fromkeys(vm.family for vm in self.vms))

    @property
    def providers(self) -> tuple[str, ...]:
        """Distinct providers in first-appearance order."""
        return tuple(dict.fromkeys(vm.provider for vm in self.vms))

    def get(self, name: str) -> VMType:
        """Look up a VM type by name.

        Raises:
            KeyError: on unknown names; the message names this catalog
                and suggests the closest known types.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                unknown_vm_message(name, self.name, tuple(self._by_name))
            ) from None

    def price_range(self, provider: str | None = None) -> tuple[float, float]:
        """(min, max) hourly price, optionally restricted to one provider."""
        vms = [vm for vm in self.vms if provider is None or vm.provider == provider]
        if not vms:
            raise ValueError(f"catalog {self.name!r} has no provider {provider!r}")
        hourly = [self.prices.price_per_hour(vm) for vm in vms]
        return min(hourly), max(hourly)


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, Callable[[], Catalog]] = {}
_CACHE: dict[str, Catalog] = {}


def register_catalog(name: str, factory: Callable[[], Catalog]) -> None:
    """Register a lazily built catalog under ``name``.

    Raises:
        ValueError: if ``name`` is already registered.
    """
    if name in _REGISTRY:
        raise ValueError(f"catalog {name!r} is already registered")
    _REGISTRY[name] = factory


def catalog_names() -> tuple[str, ...]:
    """Registered catalog names, in registration order."""
    return tuple(_REGISTRY)


def get_catalog(name: str = DEFAULT_CATALOG_NAME) -> Catalog:
    """Return the catalog registered under ``name`` (built once per process).

    Raises:
        ValueError: on unknown names, suggesting the closest registered one.
    """
    if name not in _REGISTRY:
        close = difflib.get_close_matches(name, _REGISTRY, n=3, cutoff=0.4)
        hint = f"; did you mean {', '.join(close)}?" if close else ""
        raise ValueError(
            f"unknown catalog {name!r}; registered: {', '.join(_REGISTRY)}{hint}"
        )
    if name not in _CACHE:
        catalog = _REGISTRY[name]()
        if catalog.name != name:
            raise ValueError(
                f"catalog factory for {name!r} built a catalog named {catalog.name!r}"
            )
        _CACHE[name] = catalog
    return _CACHE[name]


# -- built-in catalogs ------------------------------------------------------

def _build_aws_2017() -> Catalog:
    return Catalog(
        name=DEFAULT_CATALOG_NAME,
        vms=default_catalog(),
        prices=default_price_list(),
        description="The paper's 18 EC2 types (6 families x 3 sizes, 2017 era).",
    )


#: Archetype spec for generated AWS-style families: letter ->
#: (RAM GiB for the 2-vCPU size, clock factor, USD/hour for that size,
#: always ships local SSD).  Values extend the paper's c/m/r structure
#: with storage- (i) and memory-heavy (x) archetypes.
_AWS_LARGE_ARCHETYPES: dict[str, tuple[float, float, float, bool]] = {
    "c": (3.75, 1.00, 0.100, False),
    "m": (8.0, 0.90, 0.110, False),
    "r": (15.25, 0.88, 0.135, False),
    "i": (15.25, 0.92, 0.155, True),
    "x": (30.5, 0.85, 0.240, False),
}
_AWS_LARGE_GENERATIONS = tuple(range(3, 10))

#: Provider spec for the multicloud catalog: provider ->
#: (family prefix, archetype table, generations, price multiplier per
#: size step).  Families are prefixed so encodings never collide with
#: the AWS family namespace; the per-size price multiplier differs per
#: provider (prices stay strictly monotone in size).
_MULTICLOUD_PROVIDERS: dict[str, tuple[str, dict[str, tuple[float, float, float, bool]], tuple[int, ...], float]] = {
    "selectel": (
        "sel-",
        {
            "c": (4.0, 0.95, 0.082, False),
            "m": (8.0, 0.88, 0.094, False),
            "r": (16.0, 0.85, 0.118, True),
        },
        tuple(range(1, 7)),
        1.9,
    ),
    "timeweb": (
        "tw-",
        {
            "c": (4.0, 0.93, 0.071, False),
            "m": (8.0, 0.86, 0.083, False),
            "r": (16.0, 0.83, 0.104, True),
        },
        tuple(range(1, 7)),
        1.85,
    ),
}


def _generate_family(
    family: str,
    generation: int,
    gen_anchor: int,
    sizes: tuple[str, ...],
    ram_large_gb: float,
    clock_base: float,
    price_large: float,
    always_ssd: bool,
    provider: str,
    size_price_factor: float,
) -> tuple[list[VMType], dict[str, float]]:
    """One generated family: VMs across ``sizes`` plus their prices.

    Attributes are pure arithmetic in the generation offset and size
    index: newer generations clock faster, push more EBS bandwidth and
    cost slightly less per hour; each size step doubles vCPUs and RAM.
    """
    age = generation - gen_anchor
    clock = round(clock_base * (1.0 + 0.05 * age), 4)
    has_ssd = always_ssd or generation == gen_anchor
    vms, prices = [], {}
    for size_index, size in enumerate(sizes):
        vcpus = 2 << size_index
        ebs = round(70.0 * (1.55**size_index) * (1.0 + 0.2 * age), 1)
        ssd = round(130.0 * (1.7**size_index), 1) if has_ssd else 0.0
        vm = VMType(
            name=f"{family}.{size}",
            family=family,
            generation=generation,
            size=size,
            vcpus=vcpus,
            ram_gb=ram_large_gb * (2**size_index),
            clock_factor=clock,
            ebs_mbps=ebs,
            local_ssd=has_ssd,
            local_ssd_mbps=ssd,
            provider=provider,
        )
        vms.append(vm)
        prices[vm.name] = round(
            price_large * (size_price_factor**size_index) * (1.0 - 0.04 * age), 4
        )
    return vms, prices


def _generate_aws_like() -> tuple[list[VMType], dict[str, float]]:
    vms: list[VMType] = []
    prices: dict[str, float] = {}
    for letter, (ram, clock, price, ssd) in _AWS_LARGE_ARCHETYPES.items():
        for generation in _AWS_LARGE_GENERATIONS:
            family_vms, family_prices = _generate_family(
                family=f"{letter}{generation}",
                generation=generation,
                gen_anchor=_AWS_LARGE_GENERATIONS[0],
                sizes=SIZE_LADDER,
                ram_large_gb=ram,
                clock_base=clock,
                price_large=price,
                always_ssd=ssd,
                provider="aws",
                size_price_factor=2.0,
            )
            vms.extend(family_vms)
            prices.update(family_prices)
    return vms, prices


def _build_aws_large() -> Catalog:
    vms, prices = _generate_aws_like()
    return Catalog(
        name="aws-large",
        vms=tuple(vms),
        prices=PriceList(prices=prices),
        description=(
            "Generated AWS-style catalog: 5 archetypes x 7 generations x "
            "6 sizes (210 types), deterministic arithmetic attributes."
        ),
    )


def _build_multicloud() -> Catalog:
    vms, prices = _generate_aws_like()
    for provider, (prefix, archetypes, generations, size_factor) in _MULTICLOUD_PROVIDERS.items():
        for letter, (ram, clock, price, ssd) in archetypes.items():
            for generation in generations:
                family_vms, family_prices = _generate_family(
                    family=f"{prefix}{letter}{generation}",
                    generation=generation,
                    gen_anchor=generations[0],
                    sizes=SIZE_LADDER[:5],
                    ram_large_gb=ram,
                    clock_base=clock,
                    price_large=price,
                    always_ssd=ssd,
                    provider=provider,
                    size_price_factor=size_factor,
                )
                vms.extend(family_vms)
                prices.update(family_prices)
    return Catalog(
        name="multicloud",
        vms=tuple(vms),
        prices=PriceList(prices=prices),
        description=(
            "Three-provider catalog (~400 types): the aws-large set plus "
            "Selectel- and Timeweb-style providers with their own family "
            "namespaces and per-provider pricing."
        ),
    )


register_catalog(DEFAULT_CATALOG_NAME, _build_aws_2017)
register_catalog("aws-large", _build_aws_large)
register_catalog("multicloud", _build_multicloud)
