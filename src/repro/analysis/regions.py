"""Region classification (paper Figure 1).

The paper partitions workloads by how much of the instance space Naive
BO must measure before finding the optimal VM:

* **Region I** — within 33% of the search space (≤ 6 of 18 VMs): BO is
  effective,
* **Region II** — within 66% (7-12 measurements): the fragility zone,
* **Region III** — more than 66% (> 12 measurements): BO is barely
  better than brute force.

A workload's region is determined by the *median* search cost over
repeated runs with different initial points; a run that never finds the
optimum counts as a full sweep.
"""

from __future__ import annotations

import enum
from collections import Counter
from collections.abc import Iterable, Mapping

import numpy as np

#: Catalog size the paper's thresholds are derived from (the default
#: ``aws-2017`` catalog; pass ``catalog_size`` to rescale for larger
#: catalogs).
CATALOG_SIZE = 18

#: Region I upper bound: 33% of the search space.
REGION_I_MAX = 6

#: Region II upper bound: 66% of the search space.
REGION_II_MAX = 12


def region_bounds(catalog_size: int = CATALOG_SIZE) -> tuple[int, int]:
    """(Region I, Region II) upper bounds for a catalog of ``catalog_size``.

    The paper's 6/12 cut-offs are 33% and 66% of its 18-type space; the
    same fractions applied to any catalog, with the defaults preserved
    exactly (``region_bounds(18) == (6, 12)``).

    Raises:
        ValueError: if ``catalog_size`` is not positive.
    """
    if catalog_size < 1:
        raise ValueError(f"catalog_size must be positive, got {catalog_size}")
    return round(catalog_size / 3), round(2 * catalog_size / 3)


class Region(enum.Enum):
    """The paper's three effectiveness regions."""

    I = "Region I"
    II = "Region II"
    III = "Region III"

    def __str__(self) -> str:
        return self.value


def classify_region(
    search_costs: Iterable[int | None], catalog_size: int = CATALOG_SIZE
) -> Region:
    """Region of one workload from its per-repeat search costs.

    Args:
        search_costs: measurements-to-optimum per repeat; ``None`` means
            the optimum was never found and counts as a full sweep.
        catalog_size: size of the searched instance space; the paper's
            18 by default, and the 33%/66% region cut-offs scale with it.

    Raises:
        ValueError: if ``search_costs`` is empty.
    """
    region_i_max, region_ii_max = region_bounds(catalog_size)
    costs = [catalog_size if cost is None else cost for cost in search_costs]
    if not costs:
        raise ValueError("search_costs must not be empty")
    median = float(np.median(costs))
    if median <= region_i_max:
        return Region.I
    if median <= region_ii_max:
        return Region.II
    return Region.III


def region_counts(
    costs_by_workload: Mapping[str, Iterable[int | None]],
    catalog_size: int = CATALOG_SIZE,
) -> dict[Region, int]:
    """Number of workloads in each region.

    Args:
        costs_by_workload: per-workload search costs (as for
            :func:`classify_region`).
        catalog_size: size of the searched instance space.
    """
    counts = Counter(
        classify_region(costs, catalog_size)
        for costs in costs_by_workload.values()
    )
    return {region: counts.get(region, 0) for region in Region}
