"""Canonical reproduction experiments — one function per paper figure.

Every table and figure of the paper's evaluation maps to one function
here; the benchmark suite (``benchmarks/``) and the EXPERIMENTS.md
generator both call these, so the numbers reported anywhere always come
from the same code path.  All functions return JSON-serialisable dicts.

Repeat counts default to smaller values than the paper's 100 because the
whole study runs on one core here; they are parameters everywhere, and
the cached runner makes re-running with more repeats incremental.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import (
    compare_methods,
    outcome_counts,
    solved_fraction_curve,
)
from repro.analysis.regions import Region, classify_region, region_counts
from repro.analysis.runner import ExperimentRunner, OptimizerFactory, RunGrid
from repro.analysis.stats import median_iqr_curve
from repro.core.augmented_bo import AugmentedBO
from repro.core.hybrid_bo import HybridBO
from repro.core.naive_bo import NaiveBO
from repro.core.objectives import Objective
from repro.core.stopping import EIThreshold, PredictionDeltaThreshold
from repro.ml.kernels import kernel_by_name
from repro.workloads.registry import default_registry
from repro.workloads.spec import InputSize

#: Default repeats for 107-workload grids (paper: 100).
FULL_REPEATS = 5

#: Default repeats for single-workload figures (paper: 100).
SINGLE_REPEATS = 30

#: Default repeats for the stopping-criteria sweeps.
SWEEP_REPEATS = 4

#: Example workloads used by the paper's per-workload figures.  The paper
#: picked its showcases (als, pagerank, lr) because they were fragile in
#: *its* dataset; we use the same applications at the input scales that
#: exhibit the fragility in *our* dataset (DESIGN.md: shape over identity).
ALS_WORKLOAD = "als/Spark 1.5/small"
BAYES_WORKLOAD = "bayes/Spark 2.1/medium"

#: The Region-II/III showcase for Figure 2 (the paper used ALS, which is
#: Region III in its data; lr at this scale is the equivalent here).
FRAGILE_WORKLOAD = "aggregation/Hadoop 2.7/large"
PAGERANK_WORKLOAD = "pagerank/Hadoop 2.7/small"
LR_WORKLOAD = "lr/Spark 1.5/medium"
REGRESSION_WORKLOAD = "regression/Spark 1.5/medium"

#: Default-catalog size (``aws-2017``, the paper's 18 types): the
#: figures replay searches that exhaust after this many measurements.
#: Large-catalog runs (``--catalog aws-large``/``multicloud``) are
#: bench/CLI territory, not paper figures, so this stays fixed.
MAX_STEPS = 18


# -- optimiser factories ----------------------------------------------------


def naive_factory(kernel_name: str = "matern52", **opts) -> OptimizerFactory:
    """Naive BO (CherryPick) with the given kernel."""

    def build(environment, objective, seed):
        return NaiveBO(
            environment,
            objective=objective,
            seed=seed,
            kernel=kernel_by_name(kernel_name),
            **opts,
        )

    return build


def augmented_factory(**opts) -> OptimizerFactory:
    """Augmented BO (the paper's method)."""

    def build(environment, objective, seed):
        return AugmentedBO(environment, objective=objective, seed=seed, **opts)

    return build


def hybrid_factory(**opts) -> OptimizerFactory:
    """Hybrid BO (Naive early, Augmented late)."""

    def build(environment, objective, seed):
        return HybridBO(environment, objective=objective, seed=seed, **opts)

    return build


def naive_stopping_factory(ei_fraction: float = 0.1) -> OptimizerFactory:
    """Naive BO with CherryPick's EI stopping rule."""

    def build(environment, objective, seed):
        return NaiveBO(
            environment,
            objective=objective,
            seed=seed,
            stopping=EIThreshold(fraction=ei_fraction),
        )

    return build


def augmented_stopping_factory(threshold: float = 1.1) -> OptimizerFactory:
    """Augmented BO with the Prediction-Delta stopping rule."""

    def build(environment, objective, seed):
        return AugmentedBO(
            environment,
            objective=objective,
            seed=seed,
            stopping=PredictionDeltaThreshold(threshold=threshold),
        )

    return build


def all_workload_ids() -> tuple[str, ...]:
    """Every workload id of the canonical registry."""
    return tuple(w.workload_id for w in default_registry())


# -- shared grids -------------------------------------------------------------


def _full_grid(
    runner: ExperimentRunner,
    key: str,
    factory: OptimizerFactory,
    objective: Objective,
    repeats: int,
    workload_ids: tuple[str, ...] | None = None,
    workers: int | None = None,
) -> dict:
    return runner.run(
        RunGrid(
            key=key,
            factory=factory,
            objective=objective,
            workload_ids=workload_ids if workload_ids is not None else all_workload_ids(),
            repeats=repeats,
        ),
        workers=workers,
    )


def naive_costs_to_optimum(
    runner: ExperimentRunner,
    objective: Objective,
    repeats: int = FULL_REPEATS,
    workload_ids: tuple[str, ...] | None = None,
    workers: int | None = None,
) -> dict[str, list[int | None]]:
    """Per-workload Naive-BO search costs to the optimum (shared by figures)."""
    results = _full_grid(
        runner, "naive-bo", naive_factory(), objective, repeats, workload_ids, workers
    )
    return runner.costs_to_optimum(results, objective)


# -- Table I ------------------------------------------------------------------


def table1_registry() -> dict:
    """Table I: application inventory and workload counts."""
    registry = default_registry()
    by_category: dict[str, list[str]] = {}
    for app_name in registry.applications():
        workload = next(w for w in registry if w.application == app_name)
        by_category.setdefault(workload.category.value, []).append(app_name)
    frameworks = sorted({w.framework.value for w in registry})
    return {
        "n_workloads": len(registry),
        "n_applications": len(registry.applications()),
        "frameworks": frameworks,
        "applications_by_category": by_category,
    }


# -- Figure 1 -----------------------------------------------------------------


def fig1_naive_cdf(
    runner: ExperimentRunner,
    repeats: int = FULL_REPEATS,
    workload_ids: tuple[str, ...] | None = None,
    workers: int | None = None,
) -> dict:
    """Figure 1: CDF of Naive BO's search cost over the 107 workloads."""
    costs = naive_costs_to_optimum(runner, Objective.TIME, repeats, workload_ids, workers)
    curve = solved_fraction_curve(costs, MAX_STEPS)
    regions = region_counts(costs)
    return {
        "curve": curve.tolist(),
        "solved_at_6": float(curve[5]),
        "solved_at_12": float(curve[11]),
        "regions": {region.value: count for region, count in regions.items()},
    }


# -- Figure 2 -----------------------------------------------------------------


def fig2_als_trace(runner: ExperimentRunner, repeats: int = SINGLE_REPEATS) -> dict:
    """Figure 2: Naive BO's sluggish progress on a fragile workload.

    The paper's example is ALS on Spark (Region III in its dataset); the
    equivalent fragile workload in our dataset is ``FRAGILE_WORKLOAD``.
    """
    results = runner.run(
        RunGrid(
            key="naive-bo",
            factory=naive_factory(),
            objective=Objective.TIME,
            workload_ids=(FRAGILE_WORKLOAD,),
            repeats=repeats,
        )
    )[FRAGILE_WORKLOAD]
    optimum = runner.optimal_value(FRAGILE_WORKLOAD, Objective.TIME)
    median, q1, q3 = median_iqr_curve(results, MAX_STEPS, normalise_to=optimum)
    return {
        "workload": FRAGILE_WORKLOAD,
        "median_curve": median.tolist(),
        "q1_curve": q1.tolist(),
        "q3_curve": q3.tolist(),
        "median_at_5": float(median[4]),
        "steps_to_optimum_median": float(
            np.median([r.first_step_reaching(optimum) or MAX_STEPS for r in results])
        ),
    }


# -- Figures 3-6 and 8 (dataset-only figures) ---------------------------------


def fig3_worst_best_spread(runner: ExperimentRunner) -> dict:
    """Figure 3: worst/best VM ratios in time and cost across workloads."""
    trace = runner.trace
    time_spreads = {w.workload_id: trace.spread(w, "time") for w in trace.registry}
    cost_spreads = {w.workload_id: trace.spread(w, "cost") for w in trace.registry}
    return {
        "max_time_spread": max(time_spreads.values()),
        "max_time_workload": max(time_spreads, key=time_spreads.__getitem__),
        "median_time_spread": float(np.median(list(time_spreads.values()))),
        "max_cost_spread": max(cost_spreads.values()),
        "max_cost_workload": max(cost_spreads, key=cost_spreads.__getitem__),
        "median_cost_spread": float(np.median(list(cost_spreads.values()))),
    }


def fig4_extreme_vms(runner: ExperimentRunner) -> dict:
    """Figure 4: how often the priciest/cheapest VMs are actually optimal."""
    trace = runner.trace
    expensive = ("c4.2xlarge", "m4.2xlarge", "r4.2xlarge")
    cheap = ("c4.large", "m4.large", "r4.large")
    result: dict = {"expensive_optimal_time_fraction": {}, "cheap_optimal_cost_fraction": {}}
    n = len(trace.registry)
    for vm in expensive:
        wins = sum(1 for w in trace.registry if trace.best_vm(w, "time").name == vm)
        result["expensive_optimal_time_fraction"][vm] = wins / n
    for vm in cheap:
        wins = sum(1 for w in trace.registry if trace.best_vm(w, "cost").name == vm)
        result["cheap_optimal_cost_fraction"][vm] = wins / n
    result["any_expensive_time_fraction"] = sum(
        result["expensive_optimal_time_fraction"].values()
    )
    result["any_cheap_cost_fraction"] = sum(result["cheap_optimal_cost_fraction"].values())
    return result


def fig5_input_size(runner: ExperimentRunner) -> dict:
    """Figure 5: the optimal VM moves when the input size changes."""
    trace = runner.trace
    registry = trace.registry
    changed_time, changed_cost, examples = 0, 0, []
    pairs = sorted({(w.application, w.framework) for w in registry}, key=str)
    n_pairs = 0
    for application, framework in pairs:
        sizes = registry.filter(application=application, framework=framework)
        if len(sizes) < 2:
            continue
        n_pairs += 1
        best_time = {w.input_size.value: trace.best_vm(w, "time").name for w in sizes}
        best_cost = {w.input_size.value: trace.best_vm(w, "cost").name for w in sizes}
        if len(set(best_time.values())) > 1:
            changed_time += 1
        if len(set(best_cost.values())) > 1:
            changed_cost += 1
            if len(examples) < 5:
                examples.append(
                    {
                        "application": application,
                        "framework": framework.value,
                        "best_cost_by_size": best_cost,
                    }
                )
    return {
        "n_app_framework_pairs": n_pairs,
        "changed_best_time": changed_time,
        "changed_best_cost": changed_cost,
        "examples": examples,
    }


def fig6_cost_levelling(runner: ExperimentRunner) -> dict:
    """Figure 6: cost compresses the spread for the regression workload."""
    trace = runner.trace
    time_norm = trace.normalised(REGRESSION_WORKLOAD, "time")
    cost_norm = trace.normalised(REGRESSION_WORKLOAD, "cost")
    vms = [vm.name for vm in trace.catalog]
    return {
        "workload": REGRESSION_WORKLOAD,
        "rows": [
            {"vm": vm, "time": float(t), "cost": float(c)}
            for vm, t, c in sorted(zip(vms, time_norm, cost_norm), key=lambda r: r[2])
        ],
        "time_spread": float(time_norm.max()),
        "cost_spread": float(cost_norm.max()),
        # How many VMs are within 25% of optimal under each objective —
        # the "level playing field" measure.
        "time_competitive": int((time_norm <= 1.25).sum()),
        "cost_competitive": int((cost_norm <= 1.25).sum()),
    }


def fig8_memory_bottleneck(runner: ExperimentRunner) -> dict:
    """Figure 8: low-level metrics expose the memory bottleneck of lr."""
    trace = runner.trace
    norm_time = trace.normalised(LR_WORKLOAD, "time")
    rows = []
    for index, vm in enumerate(trace.catalog):
        metrics = trace.metrics_for(LR_WORKLOAD, vm)
        rows.append(
            {
                "vm": vm.name,
                "normalised_time": float(norm_time[index]),
                "mem_commit_pct": metrics.mem_commit_pct,
                "cpu_iowait_pct": metrics.cpu_iowait_pct,
                "cpu_user_pct": metrics.cpu_user_pct,
            }
        )
    rows.sort(key=lambda r: -r["normalised_time"])
    return {"workload": LR_WORKLOAD, "rows": rows}


# -- Figure 7 -----------------------------------------------------------------


def fig7_kernel_fragility(
    runner: ExperimentRunner, repeats: int = SINGLE_REPEATS
) -> dict:
    """Figure 7: kernel choice flips which workloads Naive BO handles well."""
    kernels = ("rbf", "matern12", "matern32", "matern52")
    cases = (
        {"workload": ALS_WORKLOAD, "objective": Objective.TIME},
        {"workload": BAYES_WORKLOAD, "objective": Objective.COST},
    )
    out: dict = {"cases": []}
    for case in cases:
        workload, objective = case["workload"], case["objective"]
        optimum = runner.optimal_value(workload, objective)
        medians = {}
        for kernel_name in kernels:
            results = runner.run(
                RunGrid(
                    key=f"naive-bo[{kernel_name}]",
                    factory=naive_factory(kernel_name),
                    objective=objective,
                    workload_ids=(workload,),
                    repeats=repeats,
                )
            )[workload]
            costs = [r.first_step_reaching(optimum) or MAX_STEPS for r in results]
            medians[kernel_name] = float(np.median(costs))
        out["cases"].append(
            {
                "workload": workload,
                "objective": objective.value,
                "median_cost_by_kernel": medians,
                "best_kernel": min(medians, key=medians.__getitem__),
                "worst_kernel": max(medians, key=medians.__getitem__),
            }
        )
    return out


# -- Section III-C ------------------------------------------------------------


def sec3c_initial_points(
    runner: ExperimentRunner,
    repeats: int = 5,
    workload_ids: tuple[str, ...] | None = None,
) -> dict:
    """Section III-C: Naive BO's sensitivity to the initial design.

    Compares two fixed initial triples — a deliberately clustered one and
    a maximally distinct one — by the fraction of workloads whose optimum
    is not found within 6 measurements.
    """
    trace = runner.trace
    catalog_names = [vm.name for vm in trace.catalog]

    def run_with_initial(initial_names: tuple[str, ...], label: str) -> float:
        initial = [catalog_names.index(name) for name in initial_names]

        def factory(environment, objective, seed):
            return NaiveBO(
                environment, objective=objective, seed=seed, initial_design=initial
            )

        results = _full_grid(
            runner, f"naive-bo[init={label}]", factory, Objective.TIME, repeats, workload_ids
        )
        costs = runner.costs_to_optimum(results, Objective.TIME)
        unsolved = 0
        for per_workload in costs.values():
            filled = [MAX_STEPS if c is None else c for c in per_workload]
            if float(np.median(filled)) > 6:
                unsolved += 1
        return unsolved / len(costs)

    # A clustered triple (all mid-size, same generation) vs a spread one.
    bad = ("m3.large", "m3.xlarge", "r3.large")
    good = ("c4.large", "m4.xlarge", "r3.2xlarge")
    return {
        "bad_initial": list(bad),
        "bad_unsolved_at_6": run_with_initial(bad, "clustered"),
        "good_initial": list(good),
        "good_unsolved_at_6": run_with_initial(good, "distinct"),
    }


# -- Figure 9 -----------------------------------------------------------------


def fig9_cdf(
    runner: ExperimentRunner,
    objective: Objective,
    repeats: int = FULL_REPEATS,
    include_hybrid: bool = True,
    workload_ids: tuple[str, ...] | None = None,
    workers: int | None = None,
) -> dict:
    """Figure 9: search-cost CDFs of Naive vs Augmented (vs Hybrid) BO."""
    grids = {
        "naive": ("naive-bo", naive_factory()),
        "augmented": ("augmented-bo", augmented_factory()),
    }
    if include_hybrid:
        grids["hybrid"] = ("hybrid-bo", hybrid_factory())

    out: dict = {"objective": objective.value, "curves": {}, "solved_at": {}}
    for label, (key, factory) in grids.items():
        results = _full_grid(
            runner, key, factory, objective, repeats, workload_ids, workers
        )
        costs = runner.costs_to_optimum(results, objective)
        curve = solved_fraction_curve(costs, MAX_STEPS)
        out["curves"][label] = curve.tolist()
        out["solved_at"][label] = {
            "6": float(curve[5]),
            "10": float(curve[9]),
            "12": float(curve[11]),
        }
    return out


# -- Figure 10 ----------------------------------------------------------------


def fig10_example_traces(
    runner: ExperimentRunner, repeats: int = SINGLE_REPEATS
) -> dict:
    """Figure 10: per-workload search traces with median and IQR."""
    cases = (
        {"workload": PAGERANK_WORKLOAD, "objective": Objective.TIME},
        {"workload": ALS_WORKLOAD, "objective": Objective.TIME},
        {"workload": LR_WORKLOAD, "objective": Objective.COST},
    )
    out: dict = {"cases": []}
    for case in cases:
        workload, objective = case["workload"], case["objective"]
        optimum = runner.optimal_value(workload, objective)
        entry: dict = {"workload": workload, "objective": objective.value, "methods": {}}
        for label, key, factory in (
            ("naive", "naive-bo", naive_factory()),
            ("augmented", "augmented-bo", augmented_factory()),
        ):
            results = runner.run(
                RunGrid(
                    key=key,
                    factory=factory,
                    objective=objective,
                    workload_ids=(workload,),
                    repeats=repeats,
                )
            )[workload]
            median, q1, q3 = median_iqr_curve(results, MAX_STEPS, normalise_to=optimum)
            costs = [r.first_step_reaching(optimum) or MAX_STEPS for r in results]
            entry["methods"][label] = {
                "median_curve": median.tolist(),
                "q1_curve": q1.tolist(),
                "q3_curve": q3.tolist(),
                "median_cost_to_optimum": float(np.median(costs)),
                "iqr_cost_to_optimum": float(np.subtract(*np.percentile(costs, [75, 25]))),
            }
        out["cases"].append(entry)
    return out


# -- Figure 11 ----------------------------------------------------------------

#: EI stopping fractions swept for Naive BO (paper legend 0.05-0.2).
EI_FRACTIONS = (0.05, 0.1, 0.15, 0.2)

#: Prediction-Delta thresholds swept for Augmented BO (paper 0.9-1.3).
DELTA_THRESHOLDS = (0.9, 1.1, 1.3)


def fig11_stopping_tradeoff(
    runner: ExperimentRunner,
    repeats: int = SWEEP_REPEATS,
    workload_ids: tuple[str, ...] | None = None,
    region_repeats: int = FULL_REPEATS,
) -> dict:
    """Figure 11: search-cost vs deployment-cost trade-off by region."""
    objective = Objective.COST
    region_of = workload_regions(
        runner, repeats=region_repeats, workload_ids=workload_ids
    )

    def sweep(label: str, key_template: str, factory_of, values) -> dict:
        points: dict = {}
        for value in values:
            results = _full_grid(
                runner,
                key_template.format(value),
                factory_of(value),
                objective,
                repeats,
                workload_ids,
            )
            per_region: dict[Region, list[tuple[float, float]]] = {r: [] for r in Region}
            for workload_id, runs in results.items():
                optimum = runner.optimal_value(workload_id, objective)
                mean_cost = float(np.mean([r.search_cost for r in runs]))
                mean_value = float(np.mean([r.best_value / optimum for r in runs]))
                per_region[region_of[workload_id]].append((mean_cost, mean_value))
            points[str(value)] = {
                region.value: {
                    "mean_search_cost": float(np.mean([p[0] for p in pts])),
                    "mean_normalised_cost": float(np.mean([p[1] for p in pts])),
                }
                for region, pts in per_region.items()
                if pts
            }
        return points

    return {
        "naive_ei": sweep("naive", "naive-bo[stop-ei={}]", naive_stopping_factory, EI_FRACTIONS),
        "augmented_delta": sweep(
            "augmented",
            "augmented-bo[stop-delta={}]",
            augmented_stopping_factory,
            DELTA_THRESHOLDS,
        ),
    }


def workload_regions(
    runner: ExperimentRunner,
    repeats: int = FULL_REPEATS,
    workload_ids: tuple[str, ...] | None = None,
    workers: int | None = None,
) -> dict[str, Region]:
    """Region of each workload under the cost objective (for Figs 11-12)."""
    costs = naive_costs_to_optimum(
        runner, Objective.COST, repeats=repeats, workload_ids=workload_ids, workers=workers
    )
    return {workload_id: classify_region(c) for workload_id, c in costs.items()}


# -- Figure 12 ----------------------------------------------------------------


def fig12_win_loss(
    runner: ExperimentRunner,
    repeats: int = FULL_REPEATS,
    objective: Objective = Objective.COST,
    delta_threshold: float = 1.1,
    workload_ids: tuple[str, ...] | None = None,
    workers: int | None = None,
) -> dict:
    """Figure 12: per-workload win/draw/loss of Augmented vs Naive (cost)."""
    baseline = _full_grid(
        runner,
        "naive-bo[stop-ei=0.1]",
        naive_stopping_factory(0.1),
        objective,
        repeats,
        workload_ids,
        workers,
    )
    challenger = _full_grid(
        runner,
        f"augmented-bo[stop-delta={delta_threshold}]",
        augmented_stopping_factory(delta_threshold),
        objective,
        repeats,
        workload_ids,
        workers,
    )
    comparisons = compare_methods(baseline, challenger)
    counts = outcome_counts(comparisons)
    return {
        "objective": objective.value,
        "counts": {outcome.value: count for outcome, count in counts.items()},
        "mean_search_reduction": float(np.mean([c.search_reduction for c in comparisons])),
        "mean_value_improvement": float(np.mean([c.value_improvement for c in comparisons])),
        "comparisons": [
            {
                "workload": c.workload_id,
                "search_reduction": c.search_reduction,
                "value_improvement": c.value_improvement,
                "outcome": c.outcome.value,
            }
            for c in comparisons
        ],
    }


# -- Figure 13 ----------------------------------------------------------------


def fig13_timecost_product(
    runner: ExperimentRunner,
    repeats: int = FULL_REPEATS,
    workload_ids: tuple[str, ...] | None = None,
) -> dict:
    """Figure 13: the time-cost-product objective with threshold 1.05."""
    objective = Objective.TIME_COST_PRODUCT
    result = fig12_win_loss(
        runner,
        repeats=repeats,
        objective=objective,
        delta_threshold=1.05,
        workload_ids=workload_ids,
    )
    baseline = _full_grid(
        runner,
        "naive-bo[stop-ei=0.1]",
        naive_stopping_factory(0.1),
        objective,
        repeats,
        workload_ids,
    )
    challenger = _full_grid(
        runner,
        "augmented-bo[stop-delta=1.05]",
        augmented_stopping_factory(1.05),
        objective,
        repeats,
        workload_ids,
    )
    naive_costs = [
        float(np.median([r.search_cost for r in runs])) for runs in baseline.values()
    ]
    augmented_costs = [
        float(np.median([r.search_cost for r in runs])) for runs in challenger.values()
    ]
    result.update(
        {
            "naive_long_search_fraction": float(np.mean(np.array(naive_costs) > 6)),
            "naive_very_long_search_fraction": float(np.mean(np.array(naive_costs) >= 10)),
            "augmented_max_search_cost": float(np.max(augmented_costs)),
        }
    )
    return result
