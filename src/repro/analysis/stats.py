"""Median/IQR summaries for search-trace plots.

Figure 10 of the paper plots, per optimiser, the median best-so-far
value against search cost over 100 repeats, with the interquartile range
shaded.  :func:`median_iqr_curve` computes exactly those three series
from a list of :class:`SearchResult`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.result import SearchResult


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    median: float
    q1: float
    q3: float
    mean: float
    count: int

    @property
    def iqr(self) -> float:
        """Interquartile range (q3 - q1)."""
        return self.q3 - self.q1


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of ``values``.

    Raises:
        ValueError: if ``values`` is empty.
    """
    if len(values) == 0:
        raise ValueError("cannot summarise an empty sample")
    arr = np.asarray(values, dtype=float)
    q1, median, q3 = np.percentile(arr, [25, 50, 75])
    return Summary(
        median=float(median), q1=float(q1), q3=float(q3),
        mean=float(arr.mean()), count=int(arr.size),
    )


def median_iqr_curve(
    results: Sequence[SearchResult],
    max_steps: int,
    normalise_to: float | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Best-so-far curves across repeats: (median, q1, q3) per step.

    Each returned array has length ``max_steps``; runs shorter than
    ``max_steps`` are extended with their final best value (a stopped
    search keeps its result).  With ``normalise_to`` set, values are
    divided by it (1.0 = the optimal VM, as plotted in the paper).

    Raises:
        ValueError: if ``results`` is empty or ``max_steps`` < 1.
    """
    if not results:
        raise ValueError("results must not be empty")
    if max_steps < 1:
        raise ValueError(f"max_steps must be >= 1, got {max_steps}")
    matrix = np.array(
        [[run.best_value_at(step) for step in range(1, max_steps + 1)] for run in results]
    )
    if normalise_to is not None:
        if normalise_to <= 0:
            raise ValueError("normalise_to must be positive")
        matrix = matrix / normalise_to
    q1, median, q3 = np.percentile(matrix, [25, 50, 75], axis=0)
    return median, q1, q3
