"""Evaluation metrics: search cost, CDFs, and win/draw/loss accounting.

These implement the paper's measurements:

* **search cost to optimum** — how many measurements until the optimal
  VM (per the ground-truth trace) has been measured (Figures 1, 9),
* **solved-fraction curves** — the cumulative share of workloads whose
  optimum was found within k measurements (the CDF axes of Figures 1
  and 9),
* **win/draw/loss comparison** — the quadrant accounting of Figures 12
  and 13: per workload, the relative reduction in search cost and the
  relative improvement in the best value found, classified into
  win / same / draw / loss.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.result import SearchResult

#: Relative tolerance under which two outcomes count as "the same".
SAME_TOLERANCE = 0.01


def cost_to_optimum(result: SearchResult, optimal_value: float) -> int | None:
    """Measurements until the search first reached the optimal value.

    ``None`` when the search stopped without ever measuring the optimum.
    """
    return result.first_step_reaching(optimal_value)


def solved_fraction_curve(
    costs_by_workload: Mapping[str, Iterable[int | None]],
    max_steps: int,
) -> np.ndarray:
    """Fraction of workloads solved within k measurements, k = 1..max_steps.

    A workload counts as solved at step k if the *median* of its
    per-repeat costs-to-optimum is <= k (unfound runs count as
    ``max_steps + 1``).  Returns an array of length ``max_steps``.

    Raises:
        ValueError: if there are no workloads or ``max_steps`` < 1.
    """
    if max_steps < 1:
        raise ValueError(f"max_steps must be >= 1, got {max_steps}")
    if not costs_by_workload:
        raise ValueError("costs_by_workload must not be empty")
    medians = []
    for costs in costs_by_workload.values():
        filled = [max_steps + 1 if cost is None else cost for cost in costs]
        medians.append(float(np.median(filled)))
    medians_arr = np.array(medians)
    steps = np.arange(1, max_steps + 1)
    return np.array([(medians_arr <= k).mean() for k in steps])


class Outcome(enum.Enum):
    """Quadrants of the Figure 12/13 comparison."""

    WIN = "win"    # lower search cost and better final value
    SAME = "same"  # indistinguishable on both axes
    DRAW = "draw"  # lower search cost but worse final value (a trade-off)
    LOSS = "loss"  # higher search cost


@dataclass(frozen=True, slots=True)
class Comparison:
    """One workload's challenger-vs-baseline outcome.

    Positive ``search_reduction`` / ``value_improvement`` favour the
    challenger (both are relative fractions, e.g. 0.24 = 24% better).
    """

    workload_id: str
    search_reduction: float
    value_improvement: float
    outcome: Outcome


def _classify(search_reduction: float, value_improvement: float) -> Outcome:
    if search_reduction < -SAME_TOLERANCE:
        return Outcome.LOSS
    if value_improvement > SAME_TOLERANCE and search_reduction > SAME_TOLERANCE:
        return Outcome.WIN
    if value_improvement < -SAME_TOLERANCE and search_reduction > SAME_TOLERANCE:
        return Outcome.DRAW
    return Outcome.SAME


def compare_methods(
    baseline: Mapping[str, Sequence[SearchResult]],
    challenger: Mapping[str, Sequence[SearchResult]],
) -> list[Comparison]:
    """Per-workload comparison of two methods run with stopping criteria.

    For each workload, the median search cost and median best value of
    each method (across repeats) are compared; see Figure 12 of the
    paper, where the challenger is Augmented BO with the Prediction-Delta
    threshold and the baseline is Naive BO with the 10% EI rule.

    Raises:
        ValueError: if the two mappings cover different workloads.
    """
    if set(baseline) != set(challenger):
        raise ValueError("baseline and challenger must cover the same workloads")
    comparisons = []
    for workload_id in baseline:
        base_runs, chal_runs = baseline[workload_id], challenger[workload_id]
        base_cost = float(np.median([r.search_cost for r in base_runs]))
        chal_cost = float(np.median([r.search_cost for r in chal_runs]))
        base_value = float(np.median([r.best_value for r in base_runs]))
        chal_value = float(np.median([r.best_value for r in chal_runs]))
        search_reduction = (base_cost - chal_cost) / base_cost
        value_improvement = (base_value - chal_value) / base_value
        comparisons.append(
            Comparison(
                workload_id=workload_id,
                search_reduction=search_reduction,
                value_improvement=value_improvement,
                outcome=_classify(search_reduction, value_improvement),
            )
        )
    return comparisons


def outcome_counts(comparisons: Iterable[Comparison]) -> dict[Outcome, int]:
    """Number of workloads per outcome quadrant."""
    counts = {outcome: 0 for outcome in Outcome}
    for comparison in comparisons:
        counts[comparison.outcome] += 1
    return counts
