"""Experiment runner with an on-disk result cache.

The paper's evaluation repeats every (optimiser, objective, workload)
search with many different initial designs.  Each repeat is deterministic
given its seed, so results are cached as JSON keyed by
``(grid key, objective)`` and never recomputed — every figure's bench can
share one underlying grid of runs.

Seeds are derived per (workload, repeat) so repeats are decorrelated
across workloads while remaining reproducible across processes.
"""

from __future__ import annotations

import json
import zlib
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.core.objectives import Objective
from repro.core.result import SearchResult, SearchStep
from repro.core.smbo import SequentialOptimizer
from repro.simulator.cluster import MeasurementEnvironment
from repro.trace.dataset import BenchmarkTrace
from repro.trace.generate import default_trace

#: Builds a fresh optimiser for one run: (environment, objective, seed).
OptimizerFactory = Callable[[MeasurementEnvironment, Objective, int], SequentialOptimizer]


def run_seed(workload_id: str, repeat: int) -> int:
    """Deterministic seed for one (workload, repeat) pair."""
    return (zlib.crc32(workload_id.encode()) ^ (repeat * 0x9E3779B1)) & 0x7FFFFFFF


@dataclass(frozen=True)
class RunGrid:
    """One experiment grid: an optimiser over workloads x repeats.

    Attributes:
        key: unique cache key; must change whenever ``factory`` changes
            behaviour (e.g. ``"naive-bo"``, ``"augmented-bo[stop=1.1]"``).
        factory: builds the optimiser for each run.
        objective: what to minimise.
        workload_ids: the workloads to run on.
        repeats: number of repeats (seeds 0..repeats-1 per workload).
    """

    key: str
    factory: OptimizerFactory
    objective: Objective
    workload_ids: tuple[str, ...]
    repeats: int

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        if not self.workload_ids:
            raise ValueError("workload_ids must not be empty")
        if "/" in self.key:
            raise ValueError("grid key must not contain '/' (it names a file)")


def _result_to_json(result: SearchResult) -> dict:
    return {
        "optimizer": result.optimizer,
        "stopped_by": result.stopped_by,
        "steps": [[s.vm_name, s.objective_value] for s in result.steps],
    }


def _result_from_json(
    payload: Mapping, objective: Objective, workload_id: str
) -> SearchResult:
    steps = []
    best = float("inf")
    for index, (vm_name, value) in enumerate(payload["steps"], start=1):
        best = min(best, float(value))
        steps.append(
            SearchStep(step=index, vm_name=vm_name, objective_value=float(value), best_value=best)
        )
    return SearchResult(
        optimizer=payload["optimizer"],
        objective=objective,
        workload_id=workload_id,
        steps=tuple(steps),
        stopped_by=payload["stopped_by"],
    )


class ExperimentRunner:
    """Runs :class:`RunGrid` experiments against one trace, with caching.

    Args:
        trace: the ground-truth trace to replay against (defaults to the
            canonical one).
        cache_dir: directory for JSON result caches; ``None`` disables
            caching.
    """

    def __init__(
        self,
        trace: BenchmarkTrace | None = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        self.trace = trace if trace is not None else default_trace()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    def _cache_path(self, grid: RunGrid) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{grid.key}__{grid.objective.value}.json"

    def run(self, grid: RunGrid) -> dict[str, list[SearchResult]]:
        """All results of ``grid``, computed or loaded from cache.

        Returns:
            Mapping from workload id to one result per repeat (repeat
            order preserved).
        """
        cache_path = self._cache_path(grid)
        cache: dict[str, dict[str, dict]] = {}
        if cache_path is not None and cache_path.exists():
            cache = json.loads(cache_path.read_text())

        results: dict[str, list[SearchResult]] = {}
        dirty = 0

        def flush() -> None:
            if cache_path is not None:
                tmp_path = cache_path.with_suffix(".tmp")
                tmp_path.write_text(json.dumps(cache))
                tmp_path.replace(cache_path)

        for workload_id in grid.workload_ids:
            per_workload = cache.setdefault(workload_id, {})
            runs = []
            for repeat in range(grid.repeats):
                seed_key = str(repeat)
                if seed_key in per_workload:
                    runs.append(
                        _result_from_json(per_workload[seed_key], grid.objective, workload_id)
                    )
                    continue
                environment = self.trace.environment(workload_id)
                optimizer = grid.factory(
                    environment, grid.objective, run_seed(workload_id, repeat)
                )
                result = optimizer.run()
                per_workload[seed_key] = _result_to_json(result)
                runs.append(result)
                dirty += 1
            results[workload_id] = runs
            # Checkpoint periodically so a long grid survives interruption.
            if dirty >= 100:
                flush()
                dirty = 0

        if dirty:
            flush()
        return results

    def optimal_value(self, workload_id: str, objective: Objective) -> float:
        """Ground-truth optimal objective value for one workload."""
        return float(self.trace.objective_values(workload_id, objective.trace_key).min())

    def costs_to_optimum(
        self, results: Mapping[str, Sequence[SearchResult]], objective: Objective
    ) -> dict[str, list[int | None]]:
        """Per-workload, per-repeat search cost to the trace optimum."""
        costs: dict[str, list[int | None]] = {}
        for workload_id, runs in results.items():
            optimum = self.optimal_value(workload_id, objective)
            costs[workload_id] = [run.first_step_reaching(optimum) for run in runs]
        return costs
