"""Experiment runner with an on-disk result cache.

The paper's evaluation repeats every (optimiser, objective, workload)
search with many different initial designs.  Each repeat is deterministic
given its seed, so results are cached as JSON keyed by
``(grid key, objective)`` and never recomputed — every figure's bench can
share one underlying grid of runs.

Seeds are derived per (workload, repeat) so repeats are decorrelated
across workloads while remaining reproducible across processes.

The cache is crash-safe: writes are atomic (tmp + rename), files carry a
schema version, and a truncated or otherwise corrupt cache file — the
footprint of a killed process — is quarantined aside (``*.corrupt``) and
recomputed rather than crashing the runner.  Every run is deterministic
given its seed, so recomputation yields identical results.

Interrupted grids resume instead of recomputing: every completed cell is
additionally journaled (append + fsync) to a ``*.journal`` file next to
the cache (:class:`~repro.parallel.checkpoint.GridCheckpoint`), SIGINT/
SIGTERM flush the consolidated cache before the process dies, and
``run(grid, resume=True)`` folds journaled results back in so at most
the in-flight cells of the interrupted run are recomputed — the final
cache file is byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import logging
import numbers
import zlib
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.core.events import EVENT_KINDS, SearchEvent
from repro.core.objectives import Objective
from repro.core.result import FailureEvent, SearchResult, SearchStep
from repro.core.smbo import SequentialOptimizer
from repro.simulator.cluster import MeasurementEnvironment
from repro.trace.dataset import BenchmarkTrace
from repro.trace.generate import default_trace

logger = logging.getLogger(__name__)

#: Bump whenever the cached payload shape changes; mismatching files are
#: quarantined and recomputed (cheap, because runs are deterministic).
#: v3 adds optional per-step / per-failure fractional charges (spot
#: pricing); every v2 payload is shape-valid v3, so v2 files migrate in
#: place instead of being quarantined.
CACHE_SCHEMA_VERSION = 3

#: Builds a fresh optimiser for one run: (environment, objective, seed).
OptimizerFactory = Callable[[MeasurementEnvironment, Objective, int], SequentialOptimizer]


def run_seed(workload_id: str, repeat: int) -> int:
    """Deterministic seed for one (workload, repeat) pair."""
    return (zlib.crc32(workload_id.encode()) ^ (repeat * 0x9E3779B1)) & 0x7FFFFFFF


@dataclass(frozen=True)
class RunGrid:
    """One experiment grid: an optimiser over workloads x repeats.

    Attributes:
        key: unique cache key; must change whenever ``factory`` changes
            behaviour (e.g. ``"naive-bo"``, ``"augmented-bo[stop=1.1]"``).
        factory: builds the optimiser for each run.
        objective: what to minimise.
        workload_ids: the workloads to run on.
        repeats: number of repeats (seeds 0..repeats-1 per workload).
    """

    key: str
    factory: OptimizerFactory
    objective: Objective
    workload_ids: tuple[str, ...]
    repeats: int

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        if not self.workload_ids:
            raise ValueError("workload_ids must not be empty")
        if "/" in self.key:
            raise ValueError("grid key must not contain '/' (it names a file)")


def _result_to_json(result: SearchResult) -> dict:
    # Charges are appended only when fractional (spot pricing), so
    # on-demand payloads are byte-identical to the v2 encoding.  Python's
    # repr-based JSON float round-trips exactly, so a decoded charge is
    # the float that was billed — no drift across cache or queue hops.
    payload = {
        "optimizer": result.optimizer,
        "stopped_by": result.stopped_by,
        "steps": [
            [s.vm_name, s.objective_value, s.attempts]
            if s.charge == 1.0
            else [s.vm_name, s.objective_value, s.attempts, s.charge]
            for s in result.steps
        ],
    }
    # Fault observability is recorded only when present, keeping the
    # common fault-free cache compact.
    if result.quarantined_vms:
        payload["quarantined"] = list(result.quarantined_vms)
    if result.failure_events:
        payload["failures"] = [
            [e.step, e.vm_name, e.attempt, e.error]
            if e.charge == 1.0
            else [e.step, e.vm_name, e.attempt, e.error, e.charge]
            for e in result.failure_events
        ]
    if result.retry_wait_s:
        payload["retry_wait_s"] = result.retry_wait_s
    if result.events:
        payload["events"] = [
            [e.kind, e.step, e.vm_name, e.detail] for e in result.events
        ]
    return payload


def _valid_charge(charge: object) -> bool:
    """Whether an optional trailing charge element is a usable bill."""
    return (
        isinstance(charge, numbers.Real)
        and not isinstance(charge, bool)
        and float(charge) >= 0.0
    )


def _valid_payload(payload: object) -> bool:
    """Whether one cached run entry has the trusted v3 shape.

    Step and failure rows optionally carry a trailing fractional charge
    (spot pricing); rows without one are the v2 shape and stay valid.
    """
    if not isinstance(payload, Mapping):
        return False
    if not isinstance(payload.get("optimizer"), str):
        return False
    if not isinstance(payload.get("stopped_by"), str):
        return False
    steps = payload.get("steps")
    if not isinstance(steps, list) or not steps:
        return False
    for step in steps:
        if not (isinstance(step, list) and len(step) in (3, 4)):
            return False
        vm_name, value, attempts = step[:3]
        if not isinstance(vm_name, str):
            return False
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            return False
        if not isinstance(attempts, int) or attempts < 1:
            return False
        if len(step) == 4 and not _valid_charge(step[3]):
            return False
    quarantined = payload.get("quarantined", [])
    if not (isinstance(quarantined, list) and all(isinstance(q, str) for q in quarantined)):
        return False
    failures = payload.get("failures", [])
    if not isinstance(failures, list):
        return False
    for failure in failures:
        if not (isinstance(failure, list) and len(failure) in (4, 5)):
            return False
        step, vm_name, attempt, error = failure[:4]
        if not (isinstance(step, int) and isinstance(attempt, int)):
            return False
        if not (isinstance(vm_name, str) and isinstance(error, str)):
            return False
        if len(failure) == 5 and not _valid_charge(failure[4]):
            return False
    retry_wait = payload.get("retry_wait_s", 0.0)
    if not (isinstance(retry_wait, numbers.Real) and not isinstance(retry_wait, bool)):
        return False
    events = payload.get("events", [])
    if not isinstance(events, list):
        return False
    for event in events:
        if not (isinstance(event, list) and len(event) == 4):
            return False
        kind, step, vm_name, detail = event
        if kind not in EVENT_KINDS:
            return False
        if not (isinstance(step, int) and step >= 1):
            return False
        if not (vm_name is None or isinstance(vm_name, str)):
            return False
        if not isinstance(detail, str):
            return False
    return True


def _migrate_legacy(payload: dict) -> dict[str, dict[str, dict]] | None:
    """Upgrade a pre-schema (v1) cache body, or None if it isn't one.

    v1 stored the result map at top level with ``[vm, value]`` step
    pairs; v2 wraps it in ``{"schema", "results"}`` and adds the
    per-step attempt count (1 for every legacy run: v1 predates retry
    accounting).  Entries that still fail validation afterwards are
    dropped and recomputed individually.
    """
    migrated: dict[str, dict[str, dict]] = {}
    for workload_id, per_workload in payload.items():
        if not isinstance(per_workload, dict):
            return None
        out: dict[str, dict] = {}
        for seed_key, entry in per_workload.items():
            if isinstance(entry, Mapping) and isinstance(entry.get("steps"), list):
                entry = dict(entry)
                entry["steps"] = [
                    [*step, 1] if isinstance(step, list) and len(step) == 2 else step
                    for step in entry["steps"]
                ]
            out[seed_key] = entry
        migrated[workload_id] = out
    return migrated


def _result_from_json(
    payload: Mapping, objective: Objective, workload_id: str
) -> SearchResult:
    steps = []
    best = float("inf")
    for index, row in enumerate(payload["steps"], start=1):
        vm_name, value, attempts = row[:3]
        best = min(best, float(value))
        steps.append(
            SearchStep(
                step=index,
                vm_name=vm_name,
                objective_value=float(value),
                best_value=best,
                attempts=attempts,
                # Stored charges are read back verbatim, never recomputed:
                # resume must bill exactly what the original run billed.
                charge=float(row[3]) if len(row) == 4 else 1.0,
            )
        )
    return SearchResult(
        optimizer=payload["optimizer"],
        objective=objective,
        workload_id=workload_id,
        steps=tuple(steps),
        stopped_by=payload["stopped_by"],
        quarantined_vms=tuple(payload.get("quarantined", [])),
        failure_events=tuple(
            FailureEvent(
                step=row[0],
                vm_name=row[1],
                attempt=row[2],
                error=row[3],
                charge=float(row[4]) if len(row) == 5 else 1.0,
            )
            for row in payload.get("failures", [])
        ),
        retry_wait_s=float(payload.get("retry_wait_s", 0.0)),
        events=tuple(
            SearchEvent(kind=kind, step=step, vm_name=vm_name, detail=detail)
            for kind, step, vm_name, detail in payload.get("events", [])
        ),
    )


# Public payload codec.  Queue workers serialize results with the same
# canonical encoder the cache uses, and the coordinator decodes with the
# same decoder the cache-read path uses, so a result that crossed the
# durable queue re-encodes byte-identically: queue runs produce the same
# cache files as serial runs.  (The underscore names remain for existing
# importers.)
result_to_payload = _result_to_json
result_from_payload = _result_from_json
valid_payload = _valid_payload


class ExperimentRunner:
    """Runs :class:`RunGrid` experiments against one trace, with caching.

    Args:
        trace: the ground-truth trace to replay against (defaults to the
            canonical one).
        cache_dir: directory for JSON result caches; ``None`` disables
            caching.
        workers: default worker-pool size for :meth:`run` (1 = serial).
            Per-cell seeding makes results — cache files included —
            byte-identical regardless of the worker count.
    """

    def __init__(
        self,
        trace: BenchmarkTrace | None = None,
        cache_dir: str | Path | None = None,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.trace = trace if trace is not None else default_trace()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.workers = workers
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    def _cache_path(self, grid: RunGrid) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{grid.key}__{grid.objective.value}.json"

    @staticmethod
    def _quarantine(cache_path: Path, reason: str) -> None:
        """Move a broken cache file aside instead of crashing on it."""
        target = cache_path.with_suffix(".corrupt")
        suffix = 0
        while target.exists():
            suffix += 1
            target = cache_path.with_suffix(f".corrupt-{suffix}")
        cache_path.replace(target)
        logger.warning(
            "quarantined cache file %s -> %s (%s); recomputing",
            cache_path, target.name, reason,
        )

    def _load_cache(self, cache_path: Path | None) -> dict[str, dict[str, dict]]:
        """The cached result map, or empty after quarantining a bad file.

        A truncated file (killed process), non-JSON bytes, or a schema
        mismatch all lead to quarantine-and-recompute: runs are
        deterministic, so recomputation restores identical semantics.
        """
        if cache_path is None or not cache_path.exists():
            return {}
        try:
            payload = json.loads(cache_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
            self._quarantine(cache_path, f"unreadable: {error}")
            return {}
        if isinstance(payload, dict) and "schema" not in payload:
            migrated = _migrate_legacy(payload)
            if migrated is not None:
                logger.info("migrating legacy (v1) cache file %s", cache_path)
                return migrated
        if (
            isinstance(payload, dict)
            and payload.get("schema") == 2
            and isinstance(payload.get("results"), dict)
        ):
            # v2 rows (no charge column) are shape-valid v3 rows with an
            # implicit unit charge: adopt them as-is and rewrite at v3 on
            # the next flush instead of recomputing.
            logger.info("migrating v2 cache file %s to v3 in place", cache_path)
            return payload["results"]
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA_VERSION
            or not isinstance(payload.get("results"), dict)
        ):
            found = payload.get("schema") if isinstance(payload, dict) else None
            self._quarantine(
                cache_path,
                f"schema {found!r} != {CACHE_SCHEMA_VERSION}",
            )
            return {}
        return payload["results"]

    @staticmethod
    def _reconcile_queue(
        queue_path: Path,
        cache_key: str,
        results: Mapping[str, Sequence[SearchResult | None]],
    ) -> None:
        """Make a resumed queue agree with the cache before any lease.

        The cache (journal folded in) is the source of truth: every
        cell it holds is marked ``done`` in the queue so it can never
        be re-leased, whatever state its row was left in by the
        interrupted run.  A queue file that belongs to a different grid
        or schema is removed — it must not serve this run.
        """
        from repro.parallel.queue import WorkQueue

        if not queue_path.exists():
            return
        try:
            queue = WorkQueue.attach(queue_path)
        except ValueError as error:
            logger.warning(
                "removing unusable queue file %s (%s)", queue_path, error
            )
            WorkQueue.remove(queue_path)
            return
        try:
            if queue.cache_key != cache_key:
                logger.warning(
                    "removing queue file %s: belongs to grid %r, not %r",
                    queue_path, queue.cache_key, cache_key,
                )
                queue.close()
                WorkQueue.remove(queue_path)
                return
            done = [
                (workload_id, repeat)
                for workload_id, slots in results.items()
                for repeat, slot in enumerate(slots)
                if slot is not None
            ]
            changed = queue.reconcile(done)
            if changed:
                logger.info(
                    "queue %s: reconciled %d cell(s) already held by the cache",
                    queue_path, changed,
                )
        finally:
            queue.close()

    def run(
        self,
        grid: RunGrid,
        workers: int | None = None,
        on_event: Callable[..., None] | None = None,
        resume: bool = False,
        cell_timeout: float | None = None,
        cell_retries: int = 0,
        pool_restarts: int | None = None,
        seed_fn: Callable[[str, int], int] | None = None,
        executor: str = "auto",
        queue_workers: int | None = None,
        queue_lease_s: float = 30.0,
        queue_max_attempts: int = 3,
        queue_stall_timeout_s: float | None = 60.0,
        queue_pricing: str = "on-demand",
    ) -> dict[str, list[SearchResult]]:
        """All results of ``grid``, computed or loaded from cache.

        Cells missing from the cache are executed by the supervised
        parallel engine (:func:`repro.parallel.run_cells`) — serially
        in-process when ``workers`` is 1 — and merged back in grid
        order, so the cache file that lands on disk is byte-identical
        for any worker count (and for any interruption/resume history).

        While computing, every completed cell is journaled crash-safely
        next to the cache file and SIGINT/SIGTERM flush the
        consolidated cache before the process dies, so an interrupted
        grid loses at most its in-flight cells.

        Args:
            grid: the experiment grid to run.
            workers: worker-pool size for this call; defaults to the
                runner's ``workers``.
            on_event: optional sink for
                :class:`~repro.parallel.events.CellEvent` progress
                events (cache hits emit ``cell_cached``; cells
                recovered from a journal emit ``cell_resumed``).
            resume: fold results journaled by an interrupted run back
                into the cache and skip those cells.  When False
                (default) a leftover journal is discarded — a fresh run
                was asked for.  Only meaningful with a ``cache_dir``.
            cell_timeout: wall-clock deadline per cell on a pool;
                stragglers are cancelled and completed serially.
            cell_retries: extra pool attempts for a cell whose worker
                raised, before the parent's serial fallback.
            pool_restarts: worker deaths survived before serial
                degradation (default: the engine's budget).
            seed_fn: maps ``(workload_id, repeat)`` to the optimiser
                seed (default :func:`run_seed`).  The grid ``key`` must
                change whenever this changes — seeds determine results.
            executor: backend selection (``auto`` / ``serial`` /
                ``pool`` / ``queue`` / ``vector``).  ``"vector"`` runs
                every missing cell in-process through the lock-step
                :class:`~repro.parallel.vector.VectorizedGridDriver`,
                batching per-round surrogate algebra across searches
                with results (and the cache file) byte-identical to the
                serial path.  ``"queue"`` dispatches cells
                through a durable :class:`~repro.parallel.queue.
                WorkQueue` at ``<cache>.queue`` next to the cache file
                (crash-surviving, at-least-once; external workers can
                join via ``arrow queue-worker``) and therefore requires
                a ``cache_dir``.  On ``resume=True`` a reconciliation
                pass first marks every cell the cache/journal already
                holds as ``done`` in the queue — the cache is the
                source of truth; durable results are never re-leased.
                On ``resume=False`` a leftover queue file is removed,
                mirroring the journal semantics.  The queue file
                survives a clean completion: its events table is the
                run's persisted robustness record.
            queue_workers: local pull-workers the queue coordinator
                forks (``None`` = the planned worker count; ``0`` =
                rely on an external worker fleet).
            queue_lease_s: heartbeat-free lease lifetime before a queue
                worker is presumed dead and its cell requeued.
            queue_max_attempts: attempts per cell before the queue
                parks it (``poisoned``/``failed``) for the coordinator.
            queue_stall_timeout_s: coordinator watchdog — with work
                outstanding but no live workers or queue activity for
                this long, remaining cells are completed serially
                (``None`` waits for a fleet forever).
            queue_pricing: pricing mode recorded in the queue's meta
                table (``"on-demand"`` or ``"spot"``) so workers and
                ``arrow queue-status`` agree on how charges are read.

        Returns:
            Mapping from workload id to one result per repeat (repeat
            order preserved).

        Raises:
            ValueError: if ``executor="queue"`` without a ``cache_dir``.
        """
        # Imported lazily: the engine imports this module at top level.
        from repro.parallel.checkpoint import GridCheckpoint, flush_on_signal
        from repro.parallel.engine import DEFAULT_POOL_RESTARTS, run_cells
        from repro.parallel.events import CellEvent

        n_workers = self.workers if workers is None else workers
        cache_path = self._cache_path(grid)
        if executor == "queue" and cache_path is None:
            raise ValueError(
                'executor="queue" requires a cache_dir: the durable queue '
                "lives next to the cache file"
            )
        cache = self._load_cache(cache_path)

        journal: GridCheckpoint | None = None
        journaled: dict[tuple[str, int], dict] = {}
        if cache_path is not None:
            journal = GridCheckpoint.for_cache(cache_path)
            if resume:
                journaled = journal.load()
            else:
                # A fresh run was asked for: a stale journal must not
                # inject results behind the caller's back.
                journal.clear()

        results: dict[str, list[SearchResult | None]] = {}
        missing: list[tuple[str, int]] = []
        for workload_id in grid.workload_ids:
            per_workload = cache.setdefault(workload_id, {})
            slots: list[SearchResult | None] = []
            for repeat in range(grid.repeats):
                seed_key = str(repeat)
                recovered = False
                if seed_key not in per_workload and (workload_id, repeat) in journaled:
                    # An interrupted run completed this cell; its
                    # payload is durable in the journal.  Fold it in as
                    # if it had been cached all along.
                    payload = journaled[(workload_id, repeat)]
                    if _valid_payload(payload):
                        per_workload[seed_key] = payload
                        recovered = True
                    else:
                        logger.warning(
                            "dropping malformed journal entry %s/%s",
                            workload_id, seed_key,
                        )
                if seed_key in per_workload:
                    if _valid_payload(per_workload[seed_key]):
                        slots.append(
                            _result_from_json(
                                per_workload[seed_key], grid.objective, workload_id
                            )
                        )
                        if on_event is not None:
                            on_event(
                                CellEvent.for_cell(
                                    "cell_resumed" if recovered else "cell_cached",
                                    (workload_id, repeat),
                                )
                            )
                        continue
                    # A malformed entry is dropped and recomputed below.
                    logger.warning(
                        "dropping malformed cache entry %s/%s in %s",
                        workload_id, seed_key, cache_path,
                    )
                    del per_workload[seed_key]
                slots.append(None)
                missing.append((workload_id, repeat))
            results[workload_id] = slots

        queue_config = None
        if executor == "queue":
            from repro.parallel.queue import QueueConfig, WorkQueue

            queue_path = cache_path.with_suffix(".queue")
            if resume:
                self._reconcile_queue(queue_path, cache_path.stem, results)
            else:
                # A fresh run was asked for: a stale queue must not
                # serve old leases or results (journal semantics).
                WorkQueue.remove(queue_path)
            queue_config = QueueConfig(
                path=queue_path,
                cache_key=cache_path.stem,
                workers=queue_workers,
                lease_duration_s=queue_lease_s,
                max_attempts=queue_max_attempts,
                stall_timeout_s=queue_stall_timeout_s,
                pricing=queue_pricing,
            )

        dirty = 0

        def flush() -> None:
            if cache_path is not None:
                tmp_path = cache_path.with_suffix(".tmp")
                tmp_path.write_text(
                    json.dumps({"schema": CACHE_SCHEMA_VERSION, "results": cache})
                )
                tmp_path.replace(cache_path)

        if missing:
            try:
                with flush_on_signal(flush):
                    for cell, result in run_cells(
                        trace=self.trace,
                        factory=grid.factory,
                        objective=grid.objective,
                        cells=missing,
                        workers=n_workers,
                        on_event=on_event,
                        seed_fn=seed_fn if seed_fn is not None else run_seed,
                        cell_timeout=cell_timeout,
                        cell_retries=cell_retries,
                        pool_restarts=(
                            DEFAULT_POOL_RESTARTS
                            if pool_restarts is None
                            else pool_restarts
                        ),
                        executor=executor,
                        queue=queue_config,
                    ):
                        workload_id, repeat = cell
                        payload = _result_to_json(result)
                        cache[workload_id][str(repeat)] = payload
                        results[workload_id][repeat] = result
                        if journal is not None:
                            # Durable the instant the cell completes: a
                            # kill -9 from here on loses only in-flight
                            # cells.
                            journal.record(cell, payload)
                        dirty += 1
                        # Consolidate periodically so the common restart
                        # path reads one JSON file, not a long journal.
                        if dirty >= 100:
                            flush()
                            dirty = 0
                if dirty:
                    flush()
            finally:
                if journal is not None:
                    journal.close()
            # A clean completion owns its journal: everything in it is
            # now in the consolidated cache.
            if journal is not None:
                journal.clear()
        elif resume and journaled and journal is not None and cache_path is not None:
            # Every journaled cell was folded into the cache; persist
            # the consolidation and retire the journal.
            flush()
            journal.clear()
        return results

    def optimal_value(self, workload_id: str, objective: Objective) -> float:
        """Ground-truth optimal objective value for one workload."""
        return float(self.trace.objective_values(workload_id, objective.trace_key).min())

    def costs_to_optimum(
        self, results: Mapping[str, Sequence[SearchResult]], objective: Objective
    ) -> dict[str, list[int | None]]:
        """Per-workload, per-repeat search cost to the trace optimum."""
        costs: dict[str, list[int | None]] = {}
        for workload_id, runs in results.items():
            optimum = self.optimal_value(workload_id, objective)
            costs[workload_id] = [run.first_step_reaching(optimum) for run in runs]
        return costs
