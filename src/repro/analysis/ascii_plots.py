"""Terminal rendering of the paper's figures.

No plotting library is available offline, so the CLI renders figures as
ASCII charts: multi-series line charts for the CDFs and search traces
(Figures 1, 2, 9, 10) and horizontal bar charts for per-VM comparisons
(Figures 4, 6, 8).  Output is deterministic, monospace-aligned text.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "*o+x#@%&"


def _scale(value: float, low: float, high: float, size: int) -> int:
    """Map ``value`` in [low, high] to a cell index in [0, size - 1]."""
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, int(round(position * (size - 1)))))


def line_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render one or more equal-length series as an ASCII line chart.

    Args:
        series: label -> values; x is the 1-based index.
        width, height: plot area size in characters.
        x_label, y_label: axis captions.
        y_min, y_max: fix the y range (defaults to the data range).

    Raises:
        ValueError: if there are no series, they are empty, or lengths
            differ.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    (n_points,) = lengths
    if n_points == 0:
        raise ValueError("series must not be empty")

    all_values = [v for values in series.values() for v in values]
    low = min(all_values) if y_min is None else y_min
    high = max(all_values) if y_max is None else y_max
    if high == low:
        high = low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (label, values) in zip(SERIES_GLYPHS, series.items()):
        for index, value in enumerate(values):
            col = _scale(index, 0, max(n_points - 1, 1), width)
            row = height - 1 - _scale(value, low, high, height)
            grid[row][col] = glyph

    lines = []
    legend = "   ".join(
        f"{glyph} {label}" for glyph, label in zip(SERIES_GLYPHS, series)
    )
    if y_label:
        lines.append(f"{y_label}")
    for row_index, row in enumerate(grid):
        tick = high - (high - low) * row_index / max(height - 1, 1)
        lines.append(f"{tick:>8.2f} |{''.join(row)}|")
    lines.append(" " * 9 + "+" + "-" * width + "+")
    x_axis = f"1{'':>{width - len(str(n_points)) - 1}}{n_points}"
    lines.append(" " * 10 + x_axis)
    if x_label:
        lines.append(" " * 10 + x_label.center(width))
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def bar_chart(
    bars: Mapping[str, float],
    width: int = 48,
    unit: str = "",
    max_value: float | None = None,
) -> str:
    """Render a label -> value mapping as a horizontal ASCII bar chart.

    Raises:
        ValueError: if ``bars`` is empty or any value is negative.
    """
    if not bars:
        raise ValueError("need at least one bar")
    if any(value < 0 for value in bars.values()):
        raise ValueError("bar values must be non-negative")
    top = max(bars.values()) if max_value is None else max_value
    top = top or 1.0
    label_width = max(len(label) for label in bars)
    lines = []
    for label, value in bars.items():
        filled = _scale(value, 0.0, top, width + 1)
        lines.append(
            f"{label:<{label_width}} |{'#' * filled}{' ' * (width - filled)}|"
            f" {value:.2f}{unit}"
        )
    return "\n".join(lines)
