"""Experiment harness and the paper's evaluation metrics.

* :mod:`repro.analysis.runner` — run optimisers over (workload, seed)
  grids with an on-disk cache, so every figure's data is computed once,
* :mod:`repro.analysis.regions` — the Region I/II/III classification of
  Figure 1,
* :mod:`repro.analysis.metrics` — search cost to optimum, CDF curves,
  win/draw/loss accounting (Figures 9, 12, 13),
* :mod:`repro.analysis.stats` — median/IQR summaries for the
  search-trace plots (Figure 10).
"""

from repro.analysis.runner import ExperimentRunner, RunGrid
from repro.analysis.regions import Region, classify_region, region_counts
from repro.analysis.metrics import (
    Comparison,
    Outcome,
    compare_methods,
    cost_to_optimum,
    solved_fraction_curve,
)
from repro.analysis.stats import median_iqr_curve, summarize
from repro.analysis.ascii_plots import bar_chart, line_chart
from repro.analysis.svg_plots import bar_chart_svg, line_chart_svg

__all__ = [
    "ExperimentRunner",
    "RunGrid",
    "Region",
    "classify_region",
    "region_counts",
    "cost_to_optimum",
    "solved_fraction_curve",
    "Comparison",
    "Outcome",
    "compare_methods",
    "median_iqr_curve",
    "summarize",
    "line_chart",
    "bar_chart",
    "line_chart_svg",
    "bar_chart_svg",
]
