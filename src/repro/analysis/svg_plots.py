"""Standalone SVG rendering of the paper's figures.

No plotting library is installed offline, so this module emits
self-contained SVG documents (no external CSS/JS) for the two chart
shapes the reproduction needs: multi-series step/line charts for the
CDFs and search traces, and horizontal bar charts for per-VM
comparisons.  ``scripts/render_figures.py`` turns every cached figure
JSON into an ``.svg`` next to it.

The generator is deliberately small: fixed margins, a categorical
six-colour palette, text in a generic sans-serif stack.  Everything is
deterministic, so SVG outputs are diffable across runs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

#: Categorical palette (colour-blind-safe Okabe-Ito subset).
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9")

_MARGIN_LEFT = 64
_MARGIN_RIGHT = 16
_MARGIN_TOP = 28
_MARGIN_BOTTOM = 56


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _ticks(low: float, high: float, count: int = 5) -> list[float]:
    if high <= low:
        high = low + 1.0
    step = (high - low) / (count - 1)
    return [low + i * step for i in range(count)]


def line_chart_svg(
    series: Mapping[str, Sequence[float]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 560,
    height: int = 360,
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render equal-length series as an SVG line chart (x = 1-based index).

    Raises:
        ValueError: if there are no series, they are empty, or lengths
            differ.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    (n_points,) = lengths
    if n_points == 0:
        raise ValueError("series must not be empty")

    all_values = [v for values in series.values() for v in values]
    low = min(all_values) if y_min is None else y_min
    high = max(all_values) if y_max is None else y_max
    if high == low:
        high = low + 1.0

    plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM

    def x_pos(index: int) -> float:
        return _MARGIN_LEFT + plot_w * (index / max(n_points - 1, 1))

    def y_pos(value: float) -> float:
        return _MARGIN_TOP + plot_h * (1.0 - (value - low) / (high - low))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="16" text-anchor="middle" font-size="13" '
            f'font-weight="bold">{_escape(title)}</text>'
        )

    # Axes, gridlines and tick labels.
    for tick in _ticks(low, high):
        y = y_pos(tick)
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{y:.1f}" x2="{width - _MARGIN_RIGHT}" '
            f'y2="{y:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT - 6}" y="{y + 4:.1f}" text-anchor="end">'
            f"{tick:.2f}</text>"
        )
    x_tick_step = max(1, (n_points - 1) // 8 or 1)
    for index in range(0, n_points, x_tick_step):
        x = x_pos(index)
        parts.append(
            f'<text x="{x:.1f}" y="{height - _MARGIN_BOTTOM + 16}" '
            f'text-anchor="middle">{index + 1}</text>'
        )
    parts.append(
        f'<rect x="{_MARGIN_LEFT}" y="{_MARGIN_TOP}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333"/>'
    )
    if x_label:
        parts.append(
            f'<text x="{_MARGIN_LEFT + plot_w / 2}" y="{height - 20}" '
            f'text-anchor="middle">{_escape(x_label)}</text>'
        )
    if y_label:
        y_mid = _MARGIN_TOP + plot_h / 2
        parts.append(
            f'<text x="14" y="{y_mid}" text-anchor="middle" '
            f'transform="rotate(-90 14 {y_mid})">{_escape(y_label)}</text>'
        )

    # Series polylines and legend.
    for colour, (label, values) in zip(PALETTE, series.items()):
        points = " ".join(
            f"{x_pos(i):.1f},{y_pos(v):.1f}" for i, v in enumerate(values)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{colour}" '
            f'stroke-width="2"/>'
        )
    legend_x = _MARGIN_LEFT + 8
    for row, (colour, label) in enumerate(zip(PALETTE, series)):
        y = height - 18 - 0  # single line legend below x label? keep inside plot
        y = _MARGIN_TOP + 14 + row * 14
        parts.append(
            f'<line x1="{legend_x}" y1="{y - 4}" x2="{legend_x + 18}" y2="{y - 4}" '
            f'stroke="{colour}" stroke-width="2"/>'
        )
        parts.append(f'<text x="{legend_x + 24}" y="{y}">{_escape(label)}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def bar_chart_svg(
    bars: Mapping[str, float],
    title: str = "",
    unit: str = "",
    width: int = 560,
    bar_height: int = 18,
) -> str:
    """Render a label -> value mapping as a horizontal SVG bar chart.

    Raises:
        ValueError: if ``bars`` is empty or any value is negative.
    """
    if not bars:
        raise ValueError("need at least one bar")
    if any(value < 0 for value in bars.values()):
        raise ValueError("bar values must be non-negative")

    top = max(bars.values()) or 1.0
    label_w = 110
    value_w = 64
    plot_w = width - label_w - value_w - 16
    height = _MARGIN_TOP + len(bars) * (bar_height + 6) + 12

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="16" text-anchor="middle" font-size="13" '
            f'font-weight="bold">{_escape(title)}</text>'
        )
    for row, (label, value) in enumerate(bars.items()):
        y = _MARGIN_TOP + row * (bar_height + 6)
        bar_w = plot_w * value / top
        parts.append(
            f'<text x="{label_w - 6}" y="{y + bar_height - 5}" text-anchor="end">'
            f"{_escape(label)}</text>"
        )
        parts.append(
            f'<rect x="{label_w}" y="{y}" width="{bar_w:.1f}" height="{bar_height}" '
            f'fill="{PALETTE[0]}"/>'
        )
        parts.append(
            f'<text x="{label_w + bar_w + 6:.1f}" y="{y + bar_height - 5}">'
            f"{value:.2f}{_escape(unit)}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)
