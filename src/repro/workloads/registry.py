"""The registry of exactly 107 workloads used throughout the reproduction.

Composition (mirrors Section II-B and Table I of the paper):

* Hadoop 2.7 runs the 4 micro benchmarks and the 3 OLAP queries (7 apps),
* Spark 2.1 runs all 9 statistics functions and all 14 ML applications
  (23 apps),
* Spark 1.5 runs an 8-application ML/statistics subset, reflecting the
  narrower spark-perf coverage for the older release.

That yields 38 (application, framework) pairs x 3 input sizes = 114 runs.
The paper excludes workloads whose tests failed because "smaller VM
instances run out of memory"; we exclude the 7 most memory-hungry large
configurations, leaving **exactly 107 workloads**.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.workloads.profiles import APPLICATIONS, build_profile
from repro.workloads.spec import Category, Framework, InputSize, Workload

#: (application, framework) pairs, per Table I.
_HADOOP_APPS = ("sort", "terasort", "pagerank", "wordcount", "aggregation", "join", "scan")
_SPARK21_APPS = tuple(
    name
    for name, app in APPLICATIONS.items()
    if app.category in (Category.STATISTICS, Category.MACHINE_LEARNING)
)
_SPARK15_APPS = ("classification", "regression", "als", "bayes", "lr", "kmeans", "gmm", "svd")

#: Workloads excluded because they OOM on the smaller VMs (paper §II-B).
EXCLUDED: frozenset[tuple[str, Framework, InputSize]] = frozenset(
    {
        ("lr", Framework.SPARK_15, InputSize.LARGE),
        ("als", Framework.SPARK_21, InputSize.LARGE),
        ("svd", Framework.SPARK_21, InputSize.LARGE),
        ("fp-growth", Framework.SPARK_21, InputSize.LARGE),
        ("gmm", Framework.SPARK_15, InputSize.LARGE),
        ("word2vec", Framework.SPARK_21, InputSize.LARGE),
        ("lda", Framework.SPARK_21, InputSize.LARGE),
    }
)

#: Number of workloads in the paper's (and our) study.
EXPECTED_WORKLOAD_COUNT = 107


def _iter_pairs() -> Iterator[tuple[str, Framework]]:
    for app in _HADOOP_APPS:
        yield app, Framework.HADOOP_27
    for app in _SPARK21_APPS:
        yield app, Framework.SPARK_21
    for app in _SPARK15_APPS:
        yield app, Framework.SPARK_15


class WorkloadRegistry:
    """Immutable collection of the study's workloads, indexable by id."""

    def __init__(self, workloads: tuple[Workload, ...]) -> None:
        self._workloads = workloads
        self._by_id = {w.workload_id: w for w in workloads}
        if len(self._by_id) != len(workloads):
            raise ValueError("duplicate workload ids in registry")

    def __len__(self) -> int:
        return len(self._workloads)

    def __iter__(self) -> Iterator[Workload]:
        return iter(self._workloads)

    def __contains__(self, workload_id: str) -> bool:
        return workload_id in self._by_id

    @property
    def workloads(self) -> tuple[Workload, ...]:
        """All workloads in canonical order."""
        return self._workloads

    def get(self, workload_id: str) -> Workload:
        """Look up a workload by id, e.g. ``"als/Spark 2.1/medium"``.

        Raises:
            KeyError: if no workload with that id exists.
        """
        try:
            return self._by_id[workload_id]
        except KeyError:
            raise KeyError(f"unknown workload id {workload_id!r}") from None

    def filter(
        self,
        application: str | None = None,
        framework: Framework | None = None,
        input_size: InputSize | None = None,
        category: Category | None = None,
    ) -> tuple[Workload, ...]:
        """All workloads matching every provided criterion."""
        return tuple(
            w
            for w in self._workloads
            if (application is None or w.application == application)
            and (framework is None or w.framework == framework)
            and (input_size is None or w.input_size == input_size)
            and (category is None or w.category == category)
        )

    def applications(self) -> tuple[str, ...]:
        """Distinct application names, in Table-I order."""
        seen: dict[str, None] = {}
        for w in self._workloads:
            seen.setdefault(w.application, None)
        return tuple(seen)


def _build_default() -> WorkloadRegistry:
    workloads = []
    for app, framework in _iter_pairs():
        for size in InputSize:
            if (app, framework, size) in EXCLUDED:
                continue
            workloads.append(
                Workload(
                    application=app,
                    framework=framework,
                    input_size=size,
                    category=APPLICATIONS[app].category,
                    profile=build_profile(app, framework, size),
                )
            )
    registry = WorkloadRegistry(tuple(workloads))
    if len(registry) != EXPECTED_WORKLOAD_COUNT:
        raise AssertionError(
            f"registry has {len(registry)} workloads, expected {EXPECTED_WORKLOAD_COUNT}"
        )
    return registry


_DEFAULT_REGISTRY = _build_default()


def default_registry() -> WorkloadRegistry:
    """The canonical 107-workload registry used by all experiments."""
    return _DEFAULT_REGISTRY
