"""Workload specifications and latent resource profiles.

A :class:`Workload` is what the paper calls ``w`` — one (application,
framework, input size) triple.  Its :class:`ResourceProfile` captures the
latent demands that determine how it behaves on any VM.  The profile is the
simulator's private ground truth; the optimisers interact only with measured
execution times, deployment costs and low-level metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Framework(enum.Enum):
    """Software systems the paper evaluates (Table I)."""

    HADOOP_27 = "Hadoop 2.7"
    SPARK_15 = "Spark 1.5"
    SPARK_21 = "Spark 2.1"

    def __str__(self) -> str:
        return self.value


class InputSize(enum.Enum):
    """The three input scales every application is run with."""

    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"

    def __str__(self) -> str:
        return self.value


class Category(enum.Enum):
    """Application categories from Table I."""

    MICRO = "Micro Benchmark"
    OLAP = "OLAP"
    STATISTICS = "Statistics Function"
    MACHINE_LEARNING = "Machine Learning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class ResourceProfile:
    """Latent resource demands of one workload.

    Attributes:
        cpu_seconds: total compute on a single reference core (reference
            clock factor 1.0), in seconds.
        parallel_fraction: Amdahl fraction of the compute that scales with
            core count, in [0, 1].
        working_set_gb: peak memory working set in GiB.  Exceeding a VM's
            RAM triggers the simulator's superlinear paging penalty — the
            performance cliff at the heart of the paper's fragility story.
        io_gb: bulk input/output volume read and written through storage.
        shuffle_gb: intermediate (shuffle/spill) volume, which favours VMs
            with local SSDs.
        cpu_gen_sensitivity: exponent in [0, 1] describing how much the
            workload benefits from a faster core (1 = fully clock-bound).
    """

    cpu_seconds: float
    parallel_fraction: float
    working_set_gb: float
    io_gb: float
    shuffle_gb: float
    cpu_gen_sensitivity: float

    def __post_init__(self) -> None:
        if self.cpu_seconds <= 0:
            raise ValueError(f"cpu_seconds must be positive, got {self.cpu_seconds}")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError(
                f"parallel_fraction must be in [0, 1], got {self.parallel_fraction}"
            )
        if self.working_set_gb < 0:
            raise ValueError(f"working_set_gb must be >= 0, got {self.working_set_gb}")
        if self.io_gb < 0:
            raise ValueError(f"io_gb must be >= 0, got {self.io_gb}")
        if self.shuffle_gb < 0:
            raise ValueError(f"shuffle_gb must be >= 0, got {self.shuffle_gb}")
        if not 0.0 <= self.cpu_gen_sensitivity <= 1.0:
            raise ValueError(
                f"cpu_gen_sensitivity must be in [0, 1], got {self.cpu_gen_sensitivity}"
            )

    def scaled(
        self,
        cpu: float = 1.0,
        working_set: float = 1.0,
        io: float = 1.0,
        shuffle: float = 1.0,
    ) -> ResourceProfile:
        """Return a copy with the named demands multiplied by the factors."""
        return ResourceProfile(
            cpu_seconds=self.cpu_seconds * cpu,
            parallel_fraction=self.parallel_fraction,
            working_set_gb=self.working_set_gb * working_set,
            io_gb=self.io_gb * io,
            shuffle_gb=self.shuffle_gb * shuffle,
            cpu_gen_sensitivity=self.cpu_gen_sensitivity,
        )


@dataclass(frozen=True, slots=True)
class Workload:
    """One workload ``w``: an application at a given scale on a framework."""

    application: str
    framework: Framework
    input_size: InputSize
    category: Category
    profile: ResourceProfile

    @property
    def workload_id(self) -> str:
        """Stable identifier, e.g. ``"als/Spark 2.1/medium"``."""
        return f"{self.application}/{self.framework.value}/{self.input_size.value}"

    def __str__(self) -> str:
        return self.workload_id
