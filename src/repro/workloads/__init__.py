"""Workload substrate: the 107 workloads of the paper's empirical study.

The paper runs 30 applications (HiBench and spark-perf suites) on Hadoop 2.7,
Spark 1.5 and Spark 2.1 with three input sizes each; after excluding runs
that fail with out-of-memory errors on small VMs, 107 workloads remain.

This package reproduces that population: each application family carries a
latent :class:`~repro.workloads.spec.ResourceProfile` (CPU work, parallel
fraction, working-set size, I/O and shuffle volume) from which the simulator
derives execution time and low-level metrics.  The profiles are *latent* —
optimisers never see them; they only see measurements.
"""

from repro.workloads.spec import (
    Category,
    Framework,
    InputSize,
    ResourceProfile,
    Workload,
)
from repro.workloads.registry import (
    WorkloadRegistry,
    default_registry,
)
from repro.workloads.profiles import APPLICATIONS, ApplicationProfile, base_profile

__all__ = [
    "Category",
    "Framework",
    "InputSize",
    "ResourceProfile",
    "Workload",
    "WorkloadRegistry",
    "default_registry",
    "APPLICATIONS",
    "ApplicationProfile",
    "base_profile",
]
