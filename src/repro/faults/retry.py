"""Retry policies and the per-VM circuit breaker.

:class:`RetryPolicy` decides how many times one operation may be
attempted and how long to back off between attempts (exponential with
seeded jitter, so retry schedules are as reproducible as everything else
in this package).  It is the *single* retry implementation in the
codebase: the measurement layer retries failed observations with it,
and the execution plane's :class:`~repro.parallel.supervisor.Supervisor`
retries whole grid cells with it (``RetryPolicy.from_retries(
cell_retries)``).  Charge accounting stays with the caller — every
attempt, failed or not, is billed by the cloud — the policy only shapes
the attempt schedule.

:class:`CircuitBreaker` tracks consecutive failures per VM and
quarantines a VM once they reach a threshold, so a search degrades to
the remaining catalog instead of burning its budget on a dead instance
type.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class RetryPolicy:
    """How one failed measurement is retried.

    The delay before retry ``k`` (1-based) is
    ``min(backoff_max_s, backoff_base_s * backoff_factor ** (k - 1))``,
    scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1]`` using the caller's seeded generator — two runs
    with the same seed back off identically.

    Attributes:
        max_attempts: total attempts per observation (1 = no retries).
        backoff_base_s: delay before the first retry; 0 disables backoff.
        backoff_factor: multiplier applied per further retry.
        backoff_max_s: ceiling on any single delay.
        jitter: fraction of each delay randomised away (0 = none, 1 = up
            to the full delay).
        sleep: optional callable invoked with each delay — pass
            ``time.sleep`` against a live cloud; simulations leave it
            ``None`` and only account the wait.
    """

    max_attempts: int = 1
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 60.0
    jitter: float = 0.5
    sleep: Callable[[float], None] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ValueError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_factor < 1:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_max_s < 0:
            raise ValueError(f"backoff_max_s must be >= 0, got {self.backoff_max_s}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @classmethod
    def from_retries(cls, retries: int, **kwargs) -> RetryPolicy:
        """The legacy ``measure_retries`` counter as a policy."""
        if retries < 0:
            raise ValueError(f"measure_retries must be >= 0, got {retries}")
        return cls(max_attempts=retries + 1, **kwargs)

    def delay_for(self, retry: int, rng: np.random.Generator) -> float:
        """Backoff before 1-based retry number ``retry``.

        Always draws from ``rng`` (even when the base delay is zero) so
        the jitter stream stays aligned across configurations.
        """
        if retry < 1:
            raise ValueError(f"retry must be >= 1, got {retry}")
        scale = 1.0 - self.jitter * float(rng.random())
        if self.backoff_base_s == 0.0:
            # Exponent-first evaluation would overflow for large retry
            # indices even though the true delay is zero.
            return 0.0
        try:
            grown = self.backoff_base_s * self.backoff_factor ** (retry - 1)
        except OverflowError:
            # A float-pow overflow (factor ** ~1000s) means the ungrown
            # delay already dwarfs any cap: saturate instead of raising.
            # Queue cells carry unbounded attempt counters, so large
            # retry indices are reachable, not hypothetical.
            grown = float("inf")
        nominal = min(self.backoff_max_s, grown)
        return nominal * scale

    def wait(self, retry: int, rng: np.random.Generator) -> float:
        """Compute the delay for ``retry``, sleeping if configured."""
        delay = self.delay_for(retry, rng)
        if self.sleep is not None and delay > 0:
            self.sleep(delay)
        return delay


class CircuitBreaker:
    """Quarantine VMs after repeated consecutive measurement failures.

    Args:
        failure_threshold: consecutive failures (across retry rounds)
            after which a VM is quarantined.  A success resets the VM's
            count; quarantine is permanent for the life of the breaker.
        revocation_threshold: price-aware mode — *cumulative* spot
            revocations of one VM after which it is quarantined for
            churn, successes notwithstanding (a VM that keeps getting
            reclaimed is a bad spot buy even when its runs eventually
            finish).  ``None`` (the default) disables churn tracking;
            spot-priced searches enable it.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        revocation_threshold: int | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if revocation_threshold is not None and revocation_threshold < 1:
            raise ValueError(
                f"revocation_threshold must be >= 1 or None, got {revocation_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.revocation_threshold = revocation_threshold
        self._consecutive: dict[str, int] = {}
        self._revocations: dict[str, int] = {}
        self._quarantined: set[str] = set()

    @property
    def quarantined(self) -> frozenset[str]:
        """Names of quarantined VMs."""
        return frozenset(self._quarantined)

    def is_quarantined(self, vm_name: str) -> bool:
        """Whether ``vm_name`` is quarantined."""
        return vm_name in self._quarantined

    def record_failure(self, vm_name: str) -> bool:
        """Count one failure; returns True if the VM is now quarantined."""
        count = self._consecutive.get(vm_name, 0) + 1
        self._consecutive[vm_name] = count
        if count >= self.failure_threshold:
            self._quarantined.add(vm_name)
        return vm_name in self._quarantined

    def record_revocation(self, vm_name: str) -> bool:
        """Count one spot revocation; returns True if the VM is now
        quarantined for churn.

        Revocations accumulate for the life of the breaker — a later
        success does *not* reset them (unlike consecutive failures):
        churn is a market property of the VM, not a transient health
        blip.  Without a ``revocation_threshold`` this only counts.
        """
        count = self._revocations.get(vm_name, 0) + 1
        self._revocations[vm_name] = count
        if self.revocation_threshold is not None and count >= self.revocation_threshold:
            self._quarantined.add(vm_name)
        return vm_name in self._quarantined

    def revocation_count(self, vm_name: str) -> int:
        """Cumulative revocations recorded for ``vm_name``."""
        return self._revocations.get(vm_name, 0)

    def record_success(self, vm_name: str) -> None:
        """A successful measurement clears the VM's consecutive count."""
        self._consecutive[vm_name] = 0

    def reset(self) -> None:
        """Forget all failure counts, revocations and quarantines."""
        self._consecutive.clear()
        self._revocations.clear()
        self._quarantined.clear()
