"""Fault tolerance for the measurement path.

Real-cloud measurements fail; this package makes Arrow's search loop
degrade gracefully instead of aborting:

* :mod:`repro.faults.models` — seeded, composable failure models
  (:class:`FaultInjector`, :class:`FaultPlan`, rule classes) that turn
  any measurement environment into a reproducible fault scenario,
* :mod:`repro.faults.retry` — :class:`RetryPolicy` (exponential backoff
  with seeded jitter) and the per-VM :class:`CircuitBreaker` the SMBO
  loop uses to quarantine persistently failing VMs.
"""

from repro.faults.models import (
    CorruptedMeasurementError,
    CorruptedMeasurements,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultRule,
    PartialMeasurement,
    PermanentOutage,
    SpotInterruptionError,
    SpotInterruptions,
    Stragglers,
    TransientTimeoutError,
    TransientTimeouts,
    VMUnavailableError,
    format_fault_plan,
    parse_fault_plan,
)
from repro.faults.retry import CircuitBreaker, RetryPolicy

__all__ = [
    "FaultError",
    "TransientTimeoutError",
    "SpotInterruptionError",
    "VMUnavailableError",
    "CorruptedMeasurementError",
    "FaultRule",
    "TransientTimeouts",
    "SpotInterruptions",
    "PermanentOutage",
    "CorruptedMeasurements",
    "Stragglers",
    "FaultPlan",
    "FaultInjector",
    "PartialMeasurement",
    "parse_fault_plan",
    "format_fault_plan",
    "RetryPolicy",
    "CircuitBreaker",
]
