"""Failure models: seeded, composable fault injection for environments.

Real-cloud measurements fail — spot instances get reclaimed, provisioning
times out, a noisy neighbour turns a run into a straggler, a collector
writes garbage.  :class:`FaultInjector` wraps any
:class:`~repro.simulator.cluster.MeasurementEnvironment` and applies a
:class:`FaultPlan` — an ordered list of :class:`FaultRule`\\ s with one
seed — so every fault scenario is reproducible: the same plan against the
same environment produces the identical sequence of failures, and
:meth:`FaultInjector.reset` rewinds the plan along with the environment.

Rules either *raise* before the inner measurement runs (timeouts, spot
interruptions, dead VMs) or *transform* the returned measurement
(corruption, stragglers).  Every ``measure()`` call is charged whether or
not it raises — a reclaimed spot instance still billed its partial hour —
which is what makes honest search-cost accounting under faults possible.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace

import numpy as np

from repro.cloud.spot import SpotMarket
from repro.cloud.vmtypes import VMType
from repro.simulator.cluster import Measurement, MeasurementEnvironment


class FaultError(RuntimeError):
    """Base class for injected measurement failures."""


class TransientTimeoutError(FaultError):
    """The run timed out; a retry may well succeed."""


class SpotInterruptionError(FaultError):
    """The spot instance was reclaimed mid-run.

    Market-driven revocations (a :class:`SpotInterruptions` rule with a
    :class:`~repro.cloud.spot.SpotMarket`) carry the revocation terms:
    ``fraction`` — how much of the *attempted remaining* work completed
    before the reclaim — plus the VM's ``discount`` and ``hazard``.
    A flat-rate interruption leaves all three ``None`` (no partial
    progress is knowable without a market).
    """

    def __init__(
        self,
        message: str,
        fraction: float | None = None,
        discount: float | None = None,
        hazard: float | None = None,
    ) -> None:
        super().__init__(message)
        self.fraction = fraction
        self.discount = discount
        self.hazard = hazard


@dataclass(frozen=True, slots=True)
class PartialMeasurement:
    """A revoked run's surviving checkpoint.

    Attributes:
        vm_name: the VM whose run was revoked.
        fraction: cumulative fraction of the full run completed *and
            credited* (resume credit already applied); a retry redoes
            only the remaining ``1 - fraction``.
        charge: cumulative partial charge already billed for the
            checkpointed work, in on-demand attempt units at the spot
            price.
    """

    vm_name: str
    fraction: float
    charge: float


class VMUnavailableError(FaultError):
    """The VM type cannot be provisioned at all (permanent failure)."""


class CorruptedMeasurementError(FaultError):
    """A measurement came back with an unusable objective value.

    Raised by the optimiser's validation (not by the environment): a
    NaN or non-positive time/cost means the collector broke, and the
    observation must be rejected rather than fitted.
    """


class FaultRule(abc.ABC):
    """One composable failure mode inside a :class:`FaultPlan`.

    Rules are stateful (call counters, their own RNG stream) and are
    (re)armed via :meth:`reset` with a generator derived from the plan
    seed, so each rule's randomness is independent of the others and of
    rule order.
    """

    def reset(self, rng: np.random.Generator) -> None:
        """Rewind the rule to its initial state with a fresh stream."""
        self._rng = rng
        self._calls = 0

    def before_measure(self, vm: VMType) -> None:
        """Called before the inner measurement; may raise a fault."""

    def after_measure(self, vm: VMType, measurement: Measurement) -> Measurement:
        """Called on the inner result; may return a transformed one."""
        return measurement

    def _fires(self, rate: float, every: int | None) -> bool:
        """Shared trigger logic: every N-th call, or seeded Bernoulli."""
        self._calls += 1
        if every is not None:
            return self._calls % every == 0
        return bool(self._rng.random() < rate)

    def params(self) -> dict[str, int | float | str]:
        """The rule's mini-language parameters, defaults omitted.

        The canonical identity of the rule: :func:`format_fault_plan`
        renders it and ``__eq__`` compares it, so
        ``parse_fault_plan(format_fault_plan(plan))`` reconstructs an
        equal plan.  Runtime state (RNG, call counters) never appears.
        """
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.params() == other.params()

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.params().items()))))


def _validate_trigger(rate: float, every: int | None, name: str) -> None:
    if every is not None:
        if every < 1:
            raise ValueError(f"{name}: every must be >= 1, got {every}")
        if rate:
            raise ValueError(f"{name}: pass either rate or every, not both")
    elif not 0.0 <= rate <= 1.0:
        raise ValueError(f"{name}: rate must be in [0, 1], got {rate}")


def _trigger_params(rate: float, every: int | None) -> dict[str, int | float | str]:
    if every is not None:
        return {"every": every}
    return {"rate": rate} if rate else {}


class TransientTimeouts(FaultRule):
    """Transient timeouts: each call fails with probability ``rate``,
    or deterministically on every ``every``-th call."""

    def __init__(self, rate: float = 0.0, every: int | None = None) -> None:
        _validate_trigger(rate, every, "TransientTimeouts")
        self.rate, self.every = rate, every

    def before_measure(self, vm: VMType) -> None:
        if self._fires(self.rate, self.every):
            raise TransientTimeoutError(f"measurement of {vm.name} timed out")

    def params(self) -> dict[str, int | float | str]:
        return _trigger_params(self.rate, self.every)


#: Mini-language keys configuring a market-driven spot rule and the
#: :class:`~repro.cloud.spot.SpotMarket` field each maps to.
_SPOT_MARKET_KEYS = {
    "market": "seed",
    "mindisc": "min_discount",
    "maxdisc": "max_discount",
    "base": "base_hazard",
    "slope": "hazard_slope",
    "vol": "volatility",
}


class SpotInterruptions(FaultRule):
    """Spot reclamation, flat-rate or market-driven.

    Flat mode (``rate``/``every``, the PR-1 behaviour, bit-identical):
    each call is interrupted with probability ``rate`` and the run is a
    dead loss.  Market mode (``market=``): the per-attempt hazard is
    sampled from the VM's :class:`~repro.cloud.spot.SpotMarket` quote —
    deep-discount VMs are revoked more — and a revocation reports the
    fraction of the run that completed, so the optimiser can bank a
    :class:`PartialMeasurement` checkpoint and bill only the partial
    spot charge.

    A VM switched to on-demand capacity via :meth:`set_pricing` (the
    optimiser's fallback ladder) is exempt from market revocations —
    on-demand runs are guaranteed — until switched back or the rule is
    re-armed.
    """

    def __init__(
        self,
        rate: float = 0.0,
        every: int | None = None,
        market: SpotMarket | None = None,
    ) -> None:
        if market is not None and (rate or every is not None):
            raise ValueError(
                "SpotInterruptions: pass either a market or rate/every, not both"
            )
        if market is None:
            _validate_trigger(rate, every, "SpotInterruptions")
        self.rate, self.every, self.market = rate, every, market
        self._on_demand: set[str] = set()

    def reset(self, rng: np.random.Generator) -> None:
        super().reset(rng)
        self._on_demand = set()

    def set_pricing(self, vm_name: str, mode: str) -> None:
        """Exempt ``vm_name`` from market revocations (``"on-demand"``)
        or re-expose it (``"spot"``).  Flat-rate rules ignore this —
        their interruptions model provider flakiness, not a market."""
        if mode == "on-demand":
            self._on_demand.add(vm_name)
        else:
            self._on_demand.discard(vm_name)

    def before_measure(self, vm: VMType) -> None:
        if self.market is None:
            if self._fires(self.rate, self.every):
                raise SpotInterruptionError(
                    f"spot instance {vm.name} reclaimed mid-run"
                )
            return
        if vm.name in self._on_demand:
            return
        hazard = self.market.hazard(vm.name)
        self._calls += 1
        if float(self._rng.random()) < hazard:
            fraction = float(self._rng.random())
            discount = self.market.discount(vm.name)
            raise SpotInterruptionError(
                f"spot instance {vm.name} revoked at {fraction:.0%} of the "
                f"remaining run (discount {discount:.0%}, hazard {hazard:.0%})",
                fraction=fraction,
                discount=discount,
                hazard=hazard,
            )

    def params(self) -> dict[str, int | float | str]:
        if self.market is None:
            return _trigger_params(self.rate, self.every)
        defaults = SpotMarket()
        out: dict[str, int | float | str] = {"market": self.market.seed}
        for key, field_name in _SPOT_MARKET_KEYS.items():
            if key == "market":
                continue
            value = getattr(self.market, field_name)
            if value != getattr(defaults, field_name):
                out[key] = value
        return out


class PermanentOutage(FaultRule):
    """Named VM types can never be provisioned: every call raises."""

    def __init__(self, *vm_names: str) -> None:
        if not vm_names:
            raise ValueError("PermanentOutage needs at least one VM name")
        self.vm_names = frozenset(vm_names)

    def before_measure(self, vm: VMType) -> None:
        if vm.name in self.vm_names:
            raise VMUnavailableError(f"{vm.name} permanently unavailable")

    def params(self) -> dict[str, int | float | str]:
        return {"vm": "|".join(sorted(self.vm_names))}


class CorruptedMeasurements(FaultRule):
    """The collector breaks: time and cost come back NaN or negative.

    The environment does *not* raise — the corruption is only visible to
    a consumer that validates the values, which the SMBO loop does.
    """

    def __init__(self, rate: float = 0.0, every: int | None = None, mode: str = "nan") -> None:
        _validate_trigger(rate, every, "CorruptedMeasurements")
        if mode not in ("nan", "negative"):
            raise ValueError(f"mode must be 'nan' or 'negative', got {mode!r}")
        self.rate, self.every, self.mode = rate, every, mode

    def after_measure(self, vm: VMType, measurement: Measurement) -> Measurement:
        if not self._fires(self.rate, self.every):
            return measurement
        bad = float("nan") if self.mode == "nan" else -abs(measurement.execution_time_s)
        bad_cost = float("nan") if self.mode == "nan" else -abs(measurement.cost_usd)
        return replace(measurement, execution_time_s=bad, cost_usd=bad_cost)

    def params(self) -> dict[str, int | float | str]:
        out = _trigger_params(self.rate, self.every)
        if self.mode != "nan":
            out["mode"] = self.mode
        return out


class Stragglers(FaultRule):
    """Straggler runs: the measurement succeeds but takes ``slowdown`` x
    longer (and bills accordingly) with probability ``rate``."""

    def __init__(self, rate: float = 0.0, slowdown: float = 4.0, every: int | None = None) -> None:
        _validate_trigger(rate, every, "Stragglers")
        if slowdown <= 1.0:
            raise ValueError(f"slowdown must be > 1, got {slowdown}")
        self.rate, self.every, self.slowdown = rate, every, slowdown

    def after_measure(self, vm: VMType, measurement: Measurement) -> Measurement:
        if not self._fires(self.rate, self.every):
            return measurement
        return replace(
            measurement,
            execution_time_s=measurement.execution_time_s * self.slowdown,
            cost_usd=measurement.cost_usd * self.slowdown,
        )

    def params(self) -> dict[str, int | float | str]:
        out = _trigger_params(self.rate, self.every)
        if self.slowdown != 4.0:
            out["slowdown"] = self.slowdown
        return out


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded set of fault rules — one reproducible scenario.

    Attributes:
        rules: applied in order on every measure call; a raising rule
            hides the call from the rules after it.
        seed: root seed; each rule gets an independent stream derived
            from ``(seed, rule index)``, so adding a rule never shifts
            the randomness of the others.
    """

    rules: tuple[FaultRule, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.rules:
            raise ValueError("a fault plan needs at least one rule")

    def injector(self, environment: MeasurementEnvironment) -> FaultInjector:
        """Wrap ``environment`` with this plan."""
        return FaultInjector(environment, self)


class FaultInjector:
    """A :class:`~repro.simulator.cluster.MeasurementEnvironment` wrapper
    that applies a :class:`FaultPlan` to every measure call.

    The injector's ``measurement_count`` counts every *attempt*, failed
    ones included: the cloud bills a run that a spot reclamation killed.
    ``reset()`` rewinds both the inner environment and the fault plan, so
    a reset search replays the identical fault sequence.
    """

    def __init__(self, inner: MeasurementEnvironment, plan: FaultPlan) -> None:
        self._inner = inner
        self.plan = plan
        self._count = 0
        self._arm()

    def _arm(self) -> None:
        for index, rule in enumerate(self.plan.rules):
            rule.reset(np.random.default_rng([self.plan.seed, index]))

    def arm_for(self, spawn_key: tuple[int, ...]) -> None:
        """Re-seed every rule for one batched measurement task.

        Each rule's stream becomes a pure function of ``(plan seed, rule
        index, *spawn_key)``, so the fault sequence a task sees is
        independent of which worker runs it and in what order.  The hook
        is forwarded to the inner environment when it has one.
        """
        for index, rule in enumerate(self.plan.rules):
            rule.reset(np.random.default_rng([self.plan.seed, index, *spawn_key]))
        inner_arm = getattr(self._inner, "arm_for", None)
        if inner_arm is not None:
            inner_arm(spawn_key)

    @property
    def catalog(self):
        return self._inner.catalog

    @property
    def workload(self):
        """The inner environment's workload, when it has one."""
        return getattr(self._inner, "workload", None)

    @property
    def measurement_count(self) -> int:
        return self._count

    def measure(self, vm: VMType) -> Measurement:
        self._count += 1  # charged whether or not a rule raises below
        for rule in self.plan.rules:
            rule.before_measure(vm)
        measurement = self._inner.measure(vm)
        for rule in self.plan.rules:
            measurement = rule.after_measure(vm, measurement)
        return measurement

    def set_pricing(self, vm_name: str, mode: str) -> None:
        """Tell market-aware rules which capacity the next attempts of
        ``vm_name`` run on (``"spot"``/``"on-demand"``) — the optimiser's
        fallback ladder calls this when it pays full price for a
        guaranteed run.  Forwarded to the inner environment when it has
        the hook; rules without it are unaffected.  Re-arming (reset /
        ``arm_for``) clears every override."""
        for rule in self.plan.rules:
            setter = getattr(rule, "set_pricing", None)
            if setter is not None:
                setter(vm_name, mode)
        inner_setter = getattr(self._inner, "set_pricing", None)
        if inner_setter is not None:
            inner_setter(vm_name, mode)

    def reset(self) -> None:
        self._count = 0
        self._inner.reset()
        self._arm()


#: ``parse_fault_plan`` rule names -> (constructor, parameter parsers).
_SPEC_RULES = {
    "transient": TransientTimeouts,
    "spot": SpotInterruptions,
    "outage": PermanentOutage,
    "corrupt": CorruptedMeasurements,
    "straggler": Stragglers,
}


def parse_fault_plan(spec: str, seed: int = 0) -> FaultPlan:
    """Parse a CLI fault-plan spec into a :class:`FaultPlan`.

    Grammar: rules joined by ``+``; each rule is ``name`` or
    ``name:key=value,key=value``.  Examples::

        transient:rate=0.3
        transient:every=3+outage:vm=c3.large
        spot:rate=0.1+straggler:rate=0.05,slowdown=3+corrupt:rate=0.02,mode=nan
        spot:market=7,slope=0.3

    ``outage`` takes ``vm=<name>`` (repeat names with ``|``:
    ``vm=c3.large|m3.large``); the numeric rules take ``rate=`` or
    ``every=``; ``corrupt`` also takes ``mode=nan|negative`` and
    ``straggler`` takes ``slowdown=``.  ``spot`` alternatively takes the
    market-driven form: ``market=<seed>`` plus optional
    :class:`~repro.cloud.spot.SpotMarket` overrides ``mindisc``/
    ``maxdisc`` (discount range), ``base``/``slope`` (hazard model) and
    ``vol`` (price volatility); market keys exclude ``rate``/``every``.

    Raises:
        ValueError: on an unknown rule name or malformed parameters.
    """
    rules: list[FaultRule] = []
    for part in spec.split("+"):
        part = part.strip()
        if not part:
            raise ValueError(f"empty rule in fault plan {spec!r}")
        name, _, params_text = part.partition(":")
        if name not in _SPEC_RULES:
            known = ", ".join(sorted(_SPEC_RULES))
            raise ValueError(f"unknown fault rule {name!r}; known: {known}")
        params: dict[str, str] = {}
        if params_text:
            for item in params_text.split(","):
                key, sep, value = item.partition("=")
                if not sep or not key or not value:
                    raise ValueError(f"malformed parameter {item!r} in rule {part!r}")
                params[key.strip()] = value.strip()
        try:
            rules.append(_build_rule(name, params))
        except (TypeError, ValueError) as error:
            raise ValueError(f"invalid fault rule {part!r}: {error}") from None
    return FaultPlan(rules=tuple(rules), seed=seed)


def _build_rule(name: str, params: dict[str, str]) -> FaultRule:
    if name == "outage":
        vms = params.pop("vm", "")
        if params:
            raise ValueError(f"unknown parameters {sorted(params)}")
        names = [v for v in vms.split("|") if v]
        return PermanentOutage(*names)
    if name == "spot" and any(key in _SPOT_MARKET_KEYS for key in params):
        market_kwargs: dict[str, int | float] = {}
        for key, value in params.items():
            if key not in _SPOT_MARKET_KEYS:
                raise ValueError(
                    f"parameter {key!r} cannot combine with market keys"
                )
            field_name = _SPOT_MARKET_KEYS[key]
            market_kwargs[field_name] = (
                int(value) if field_name == "seed" else float(value)
            )
        return SpotInterruptions(market=SpotMarket(**market_kwargs))
    kwargs: dict[str, float | int | str] = {}
    for key, value in params.items():
        if key == "every":
            kwargs[key] = int(value)
        elif key in ("rate", "slowdown"):
            kwargs[key] = float(value)
        elif key == "mode" and name == "corrupt":
            kwargs[key] = value
        else:
            raise ValueError(f"unknown parameter {key!r}")
    return _SPEC_RULES[name](**kwargs)


#: Rule class -> mini-language name (the inverse of ``_SPEC_RULES``).
_RULE_NAMES = {cls: name for name, cls in _SPEC_RULES.items()}


def format_fault_plan(plan: FaultPlan) -> str:
    """Render a plan back into the mini-language :func:`parse_fault_plan`
    reads, such that ``parse_fault_plan(format_fault_plan(plan),
    plan.seed) == plan``.

    Raises:
        ValueError: for rule types outside the mini-language vocabulary.
    """
    parts = []
    for rule in plan.rules:
        name = _RULE_NAMES.get(type(rule))
        if name is None:
            raise ValueError(
                f"rule type {type(rule).__name__} has no mini-language name"
            )
        params = rule.params()
        if params:
            rendered = ",".join(f"{key}={value!r}" if isinstance(value, float)
                                else f"{key}={value}"
                                for key, value in params.items())
            parts.append(f"{name}:{rendered}")
        else:
            parts.append(name)
    return "+".join(parts)
