"""Acquisition functions (all for minimisation).

Every function returns *scores to maximise*: the optimiser measures the
candidate with the highest score next.

* :func:`expected_improvement` — CherryPick's (and Naive BO's) choice.
* :func:`probability_of_improvement` — the classic PI alternative.
* :func:`lower_confidence_bound` — GP-LCB (the minimisation form of
  GP-UCB) for completeness.
* :func:`prediction_delta` — Augmented BO's choice: simply pick the VM
  with the best *predicted* objective.  The paper prefers it because EI
  is meaningless when the surrogate's uncertainty estimate is (kernel-)
  misspecified; prediction delta needs only a point prediction and
  doubles as a stopping signal.

Batch (q-point) helpers: :func:`top_q_indices` turns one score vector
into the q distinct best candidates (top-q prediction delta when the
scores are ``prediction_delta`` — one batched ensemble predict, q
argmins), and :func:`liar_value` maps a constant-liar strategy name to
the fantasy observation value used by the GP path's q-EI.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

_EPS = 1e-12


def _validate(mean: np.ndarray, std: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray | None]:
    mean = np.asarray(mean, dtype=float).ravel()
    if std is None:
        return mean, None
    std = np.asarray(std, dtype=float).ravel()
    if std.shape != mean.shape:
        raise ValueError(f"mean shape {mean.shape} != std shape {std.shape}")
    if np.any(std < 0):
        raise ValueError("std must be non-negative")
    return mean, std


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best_observed: float
) -> np.ndarray:
    """EI of each candidate over the incumbent ``best_observed`` (minimising).

    Candidates with zero posterior std get their deterministic
    improvement, ``max(best - mean, 0)``.
    """
    mean, std = _validate(mean, std)
    assert std is not None
    improvement = best_observed - mean
    ei = np.maximum(improvement, 0.0)
    positive = std > _EPS
    z = improvement[positive] / std[positive]
    ei[positive] = improvement[positive] * stats.norm.cdf(z) + std[positive] * stats.norm.pdf(z)
    return np.maximum(ei, 0.0)


def expected_improvement_stacked(
    mean: np.ndarray, std: np.ndarray, best_observed: np.ndarray
) -> np.ndarray:
    """Row-wise :func:`expected_improvement` for ``S`` searches at once.

    Args:
        mean: ``(S, u)`` posterior means, one row per search.
        std: ``(S, u)`` posterior standard deviations.
        best_observed: ``S`` incumbents, one per search.

    Row ``s`` of the result is bit-identical to
    ``expected_improvement(mean[s], std[s], best_observed[s])``: the
    boolean ``std > _EPS`` mask flattens both layouts into the same
    per-element operands, and the normal cdf/pdf are evaluated in one
    dispatch instead of ``S``.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    best = np.asarray(best_observed, dtype=float).ravel()
    if mean.ndim != 2 or std.shape != mean.shape:
        raise ValueError(
            f"mean shape {mean.shape} and std shape {std.shape} must match 2-D"
        )
    if best.shape[0] != mean.shape[0]:
        raise ValueError(
            f"got {best.shape[0]} incumbents for {mean.shape[0]} rows"
        )
    if np.any(std < 0):
        raise ValueError("std must be non-negative")
    improvement = best[:, None] - mean
    ei = np.maximum(improvement, 0.0)
    positive = std > _EPS
    z = improvement[positive] / std[positive]
    ei[positive] = improvement[positive] * stats.norm.cdf(z) + std[positive] * stats.norm.pdf(z)
    return np.maximum(ei, 0.0)


def probability_of_improvement(
    mean: np.ndarray, std: np.ndarray, best_observed: float
) -> np.ndarray:
    """Probability that each candidate improves on ``best_observed``."""
    mean, std = _validate(mean, std)
    assert std is not None
    improvement = best_observed - mean
    pi = (improvement > 0).astype(float)
    positive = std > _EPS
    pi[positive] = stats.norm.cdf(improvement[positive] / std[positive])
    return pi


def lower_confidence_bound(
    mean: np.ndarray, std: np.ndarray, kappa: float = 2.0
) -> np.ndarray:
    """Negated GP-LCB: score = -(mean - kappa * std).

    Maximising this score measures the candidate whose optimistic
    (lower-confidence) estimate is best.

    Raises:
        ValueError: if ``kappa`` is negative.
    """
    if kappa < 0:
        raise ValueError(f"kappa must be non-negative, got {kappa}")
    mean, std = _validate(mean, std)
    assert std is not None
    return -(mean - kappa * std)


def prediction_delta(mean: np.ndarray) -> np.ndarray:
    """Negated point prediction: the candidate with the best estimate wins."""
    mean, _ = _validate(mean)
    return -mean


#: Constant-liar strategies for batched q-EI (Ginsbourger et al.):
#: the fantasy value assumed for a picked-but-unmeasured point is the
#: min (optimistic, spreads the batch), mean, or max (pessimistic,
#: clusters the batch) of the values observed so far.
LIAR_STRATEGIES = ("min", "mean", "max")


def liar_value(values: np.ndarray, strategy: str) -> float:
    """The constant-liar fantasy observation for ``strategy``.

    Raises:
        ValueError: on an unknown strategy or no observed values.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ValueError("liar_value needs at least one observed value")
    if strategy == "min":
        return float(values.min())
    if strategy == "mean":
        return float(values.mean())
    if strategy == "max":
        return float(values.max())
    raise ValueError(
        f"unknown liar strategy {strategy!r}; known: {LIAR_STRATEGIES}"
    )


def top_q_indices(scores: np.ndarray, q: int) -> list[int]:
    """Positions of the ``q`` highest scores, best first.

    Ties resolve to the lowest position (stable sort), so the first
    element always equals ``argmax(scores)`` — a q=1 batch picks exactly
    what the sequential loop would.  Returns fewer than ``q`` positions
    when there are fewer candidates.

    Raises:
        ValueError: if ``q`` is not positive.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    scores = np.asarray(scores, dtype=float).ravel()
    n = scores.size
    k = min(q, n)
    # Small inputs, full selections and NaN scores take the exact
    # legacy path: a full stable argsort (NaNs sort last either way,
    # but argpartition gives no stable guarantee around them).
    if k == n or n <= 64 or np.isnan(scores).any():
        order = np.argsort(-scores, kind="stable")
        return [int(i) for i in order[:k]]
    # O(n + k log k) selection for large catalogs: partition out the k
    # best, widen the pool to every candidate tying the k-th value
    # (argpartition splits ties arbitrarily), then order the pool by
    # (score desc, position asc) — byte-for-byte the stable-argsort
    # prefix, so a q=1 batch still picks exactly argmax(scores).
    part = np.argpartition(-scores, k - 1)
    threshold = scores[part[k - 1]]
    pool = np.flatnonzero(scores >= threshold)
    order = pool[np.lexsort((pool, -scores[pool]))]
    return [int(i) for i in order[:k]]


def _sample_min_values(
    mean: np.ndarray, std: np.ndarray, rng: np.random.Generator, n_samples: int
) -> np.ndarray:
    """Sample plausible global-minimum values via a Gumbel approximation.

    Approximates ``P(min f > y) = prod_i (1 - Phi((y - mu_i) / sigma_i))``
    over the candidate set, locates its 25/50/75% quantiles by bisection,
    fits a (negated) Gumbel to them, and draws ``n_samples`` minima.
    """
    lower = float(np.min(mean - 6.0 * std))
    upper = float(np.min(mean))  # the min cannot exceed the best mean

    def prob_min_above(y: float) -> float:
        z = (y - mean) / np.maximum(std, _EPS)
        return float(np.exp(np.sum(stats.norm.logsf(z))))

    def quantile(p: float) -> float:
        lo, hi = lower, upper
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            # P(min < mid) = 1 - P(min > mid)
            if 1.0 - prob_min_above(mid) < p:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    q25, q50, q75 = quantile(0.25), quantile(0.50), quantile(0.75)
    # Fit a Gumbel (for minima) via the quartile method.
    beta = max((q75 - q25) / (np.log(np.log(4.0)) - np.log(np.log(4.0 / 3.0))), _EPS)
    loc = q50 + beta * np.log(np.log(2.0))
    uniform = np.clip(rng.uniform(size=n_samples), 1e-12, 1.0 - 1e-12)
    return loc - beta * np.log(-np.log(uniform))


def max_value_entropy_search(
    mean: np.ndarray,
    std: np.ndarray,
    rng: np.random.Generator | int | None = None,
    n_samples: int = 16,
) -> np.ndarray:
    """Max-value entropy search (MES, Wang & Jegelka 2017), minimisation form.

    Scores each candidate by the expected reduction in entropy of the
    optimum's *value*: with ``gamma = (mu - y*) / sigma`` for each sampled
    optimum value ``y*`` (the minimisation transform of Wang & Jegelka's
    maximisation form),

    ``alpha = E_{y*}[ gamma phi(gamma) / (2 Phi(gamma)) - log Phi(gamma) ]``.

    The paper's Section III-A points to entropy-search methods as
    promising alternatives to EI; this is the cheap, finite-candidate
    variant.

    Raises:
        ValueError: if ``n_samples`` is not positive.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    mean, std = _validate(mean, std)
    assert std is not None
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    if np.all(std <= _EPS):
        # Degenerate posterior: fall back to pure exploitation.
        return prediction_delta(mean)

    minima = _sample_min_values(mean, std, rng, n_samples)
    safe_std = np.maximum(std, _EPS)
    gamma = (mean[:, None] - minima[None, :]) / safe_std[:, None]
    cdf = np.clip(stats.norm.cdf(gamma), 1e-12, 1.0)
    alpha = gamma * stats.norm.pdf(gamma) / (2.0 * cdf) - np.log(cdf)
    scores = alpha.mean(axis=1)
    # Deterministic candidates can gain no information.
    scores[std <= _EPS] = 0.0
    return scores
