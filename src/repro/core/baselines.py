"""Non-Bayesian baselines.

* :class:`RandomSearch` — measure VMs in uniformly random order; the
  standard floor any model-based search must beat.
* :class:`ExhaustiveSearch` — brute force in catalog order; always finds
  the optimum at full cost (what the paper argues is no longer viable as
  VM portfolios grow).
* :class:`SingleVMRule` — the "rule of thumb" strategy the paper's
  Section II-C debunks: always pick one fixed VM type (e.g. the most
  expensive, or the official recommendation) and measure nothing else.
"""

from __future__ import annotations

import numpy as np

from repro.core.smbo import AcquisitionScores, SequentialOptimizer
from repro.core.stopping import MaxMeasurements


class RandomSearch(SequentialOptimizer):
    """Measure unmeasured VMs in uniformly random order."""

    name = "random-search"

    def _initial_indices(self) -> list[int]:
        n = min(self.n_initial, len(self._env.catalog))
        return list(map(int, self._rng.choice(len(self._env.catalog), size=n, replace=False)))

    def _score_candidates(self, unmeasured: list[int]) -> AcquisitionScores:
        return AcquisitionScores(scores=self._rng.uniform(size=len(unmeasured)))


class ExhaustiveSearch(SequentialOptimizer):
    """Measure every VM in catalog order (brute force)."""

    name = "exhaustive-search"

    def _initial_indices(self) -> list[int]:
        return [0]

    def _score_candidates(self, unmeasured: list[int]) -> AcquisitionScores:
        scores = -np.array(unmeasured, dtype=float)
        return AcquisitionScores(scores=scores)


class SingleVMRule(SequentialOptimizer):
    """Measure exactly one fixed VM type and stop.

    Args:
        vm_name: the catalog VM the rule prescribes (e.g. ``"c4.2xlarge"``
            for "just take the most expensive compute VM").
        **kwargs: forwarded to :class:`SequentialOptimizer`.

    Raises:
        KeyError: if ``vm_name`` is not in the environment's catalog.
    """

    name = "single-vm-rule"

    def __init__(self, environment, vm_name: str, **kwargs) -> None:
        kwargs.setdefault("n_initial", 1)
        kwargs["stopping"] = MaxMeasurements(1)
        super().__init__(environment, **kwargs)
        self._vm_index = self._encoder.index_of(vm_name)
        self.vm_name = vm_name

    def _initial_indices(self) -> list[int]:
        return [self._vm_index]

    def _score_candidates(self, unmeasured: list[int]) -> AcquisitionScores:
        # Never reached in practice (MaxMeasurements(1) fires first), but
        # keep a deterministic fallback: prefer lower catalog indices.
        return AcquisitionScores(scores=-np.array(unmeasured, dtype=float))
