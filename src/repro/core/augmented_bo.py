"""Augmented BO — the paper's contribution (Algorithm 2, "Arrow").

Three design changes relative to Naive BO (Section IV-B):

* **Augmented instance space** — the surrogate's inputs are the encoded
  characteristics of the *destination* VM (the one whose performance we
  want) concatenated with the characteristics *and low-level metrics* of
  a *source* VM on which the workload has actually run.
* **Surrogate model** — an Extra-Trees ensemble instead of a GP, so no
  kernel has to be chosen (side-stepping one fragility source).
* **Acquisition** — Prediction Delta: measure the VM with the best point
  prediction; the same quantity drives the stopping rule.

Training uses every ordered pair of measured VMs ``(source j -> dest i)``
plus the identity pairs ``(j -> j)``; prediction for an unmeasured VM
averages the model over all measured sources.  This is how low-level
information about VMs we *have* measured informs estimates for VMs we
*have not* — the paper's central trick.

**A reproduction note on the target variable.**  Algorithm 2 leaves open
what exactly the pairwise model regresses.  The literal reading — the
destination's absolute performance — makes the low-level metrics
provably uninformative for a single workload: within one search, the
target varies only with the destination while the metrics vary only with
the source, so no split on a metric can ever reduce training error.  We
therefore regress the *log performance ratio* ``log y_dest - log y_src``
(``relational=True``, the default), which matches the paper's narrative
that "experts interpolate or extrapolate the workload performance using
not only characteristics of VM but also the low-level performance
information": a source observed at 140% memory commit predicts a large
speedup on a destination with more RAM, and that interaction is exactly
what the trees learn.  ``relational=False`` keeps the literal absolute
form for comparison (``benchmarks/test_ablation_surrogate.py``
quantifies the difference).

**Hot-path design.**  The scorer runs once per search step, so its inner
loop is the dominant cost of every grid the evaluation runs.  Three
optimisations keep it fast without changing seeded results:

* the pair-feature matrix lives in a preallocated ``(n, n, d)`` buffer
  keyed ``[source, destination]``; each new measurement *extends* it with
  one source row and one destination column instead of re-enumerating all
  ``m^2`` pairs in Python (the reshape to the canonical source-major 2-D
  layout is a single C-level copy, bit-identical to the old enumeration);
* candidate x source query rows live in a second preallocated
  ``(n_vms, n_vms, d)`` buffer keyed ``[destination, source slot]``
  holding *already-scaled* rows: each new observation writes one source
  block (and the scaler transform of the static candidate design is
  cached, refreshed only when the scaler statistics move), so a scoring
  step gathers ``buffer[candidates, :m]`` instead of reassembling and
  re-transforming all ``u * m`` rows with ``repeat``/``tile``
  (``query_mode="rebuild"`` keeps the legacy assembly for comparison;
  both modes produce bit-identical predictions);
* the gathered rows are scored by a single ensemble predict — one
  flat-array traversal over all trees, chunked over rows at large
  ``u * m`` (:func:`repro.ml.tree.predict_packed`);
* ``refit_fraction`` (default 1.0 = full refit, bit-identical) enables
  the ensemble's warm-start mode: only a seeded subset of trees is
  regrown per step, cutting fit time roughly proportionally.

Per-step build/fit/predict wall-clock is recorded in
:attr:`PairwiseTreeScorer.step_timings` so ``benchmarks/test_perf_engine.py``
can track the surrogate's perf trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.acquisition import prediction_delta
from repro.core.smbo import AcquisitionScores, SequentialOptimizer
from repro.ml.extra_trees import ExtraTreesRegressor
from repro.ml.random_forest import RandomForestRegressor
from repro.ml.scaling import StandardScaler
from repro.ml.tree_builder import TREE_BUILDERS
from repro.simulator.cluster import Measurement

#: Default ensemble size for the Extra-Trees surrogate.
DEFAULT_N_ESTIMATORS = 24

#: Tree ensembles the surrogate can use; the paper picks Extra-Trees,
#: the CART random forest is its classic sibling (for the ablation).
ENSEMBLES = ("extra_trees", "random_forest")

#: How candidate query rows are produced per scoring step:
#: ``"incremental"`` (default) gathers from the scaled query buffer,
#: ``"rebuild"`` reassembles and re-transforms all rows (the legacy
#: path, kept as the benchmark baseline).  Both are bit-identical.
QUERY_MODES = ("incremental", "rebuild")


@dataclass(slots=True)
class _PendingTreeScore:
    """A scoring step paused at the ensemble-fit boundary.

    Produced by :meth:`PairwiseTreeScorer.score_begin`; the model is
    built (per-step seed already drawn) but unfitted.  The holder fits
    ``model`` on ``(X_scaled, y_train)`` — alone or stacked with other
    searches' pending steps — then finishes the step with
    :meth:`PairwiseTreeScorer.score_commit`.
    """

    index: np.ndarray
    metrics: np.ndarray
    log_values: np.ndarray
    pair_start: int
    scaler: StandardScaler
    model: object
    X_scaled: np.ndarray
    y_train: np.ndarray
    width: int
    unmeasured: list[int] = field(default_factory=list)
    build_s: float = 0.0
    fit_prep_s: float = 0.0
    scaled_query: np.ndarray | None = None
    query_s: float = 0.0


class PairwiseTreeScorer:
    """Fits the pairwise low-level surrogate and scores Prediction Delta.

    Factored out of :class:`AugmentedBO` so
    :class:`~repro.core.hybrid_bo.HybridBO` can reuse it for its late phase.

    The scorer caches the pair-feature matrix across calls: as long as
    each call's ``(measured, values, metrics)`` extends the previous
    call's history (the invariant of a sequential search), only the new
    source row and destination column are computed.  A call with a
    diverging history simply rebuilds the cache from scratch.

    Args:
        design_matrix: full encoded instance space.
        n_estimators: ensemble size.
        relational: regress log performance *ratios* (source -> dest)
            instead of absolute log performance; see the module docstring.
        ensemble: ``"extra_trees"`` (the paper's choice, default) or
            ``"random_forest"`` (bagged CART, for the ablation).
        seed: seed for the ensemble's randomisation.
        refit_fraction: fraction of trees regrown per step (Extra-Trees
            only).  1.0 — the default — refits the whole ensemble from a
            fresh per-step seed, keeping seeded searches bit-identical to
            the classic implementation; smaller values keep one warm
            ensemble across steps and regrow only a seeded subset.
        tree_builder: how the surrogate's trees are grown —
            ``"vectorized"`` (default, level-synchronous batched growth)
            or ``"classic"`` (per-node recursion); see
            :mod:`repro.ml.tree_builder`.
        query_mode: ``"incremental"`` (default) serves candidate query
            rows from the scaled query buffer, extended one source block
            per observation; ``"rebuild"`` reassembles them from scratch
            every step (the legacy path, kept as the perf baseline).
            Predictions are bit-identical either way.
    """

    def __init__(
        self,
        design_matrix: np.ndarray,
        n_estimators: int = DEFAULT_N_ESTIMATORS,
        relational: bool = True,
        ensemble: str = "extra_trees",
        seed: int | None = None,
        refit_fraction: float = 1.0,
        tree_builder: str = "vectorized",
        query_mode: str = "incremental",
    ) -> None:
        if ensemble not in ENSEMBLES:
            raise ValueError(f"unknown ensemble {ensemble!r}; known: {ENSEMBLES}")
        if query_mode not in QUERY_MODES:
            raise ValueError(
                f"unknown query_mode {query_mode!r}; known: {QUERY_MODES}"
            )
        if not 0.0 < refit_fraction <= 1.0:
            raise ValueError(
                f"refit_fraction must be in (0, 1], got {refit_fraction}"
            )
        if refit_fraction < 1.0 and ensemble != "extra_trees":
            raise ValueError(
                "refit_fraction < 1 (warm-start refit) requires the "
                "extra_trees ensemble"
            )
        if tree_builder not in TREE_BUILDERS:
            raise ValueError(
                f"unknown tree_builder {tree_builder!r}, expected one of {TREE_BUILDERS}"
            )
        self._design = np.asarray(design_matrix, dtype=float)
        self.n_estimators = n_estimators
        self.relational = relational
        self.ensemble = ensemble
        self.refit_fraction = refit_fraction
        self.tree_builder = tree_builder
        self.query_mode = query_mode
        self._rng = np.random.default_rng(seed)
        #: Per-call wall-clock breakdown, appended by :meth:`score`:
        #: dicts with n_measured / n_candidates / build_s / fit_s /
        #: query_s (candidate-row assembly) / predict_s (whole phase).
        self.step_timings: list[dict] = []
        # Pair-matrix cache.  The buffer is indexed [source, destination]
        # so buffer[:m, :m].reshape(m * m, d) is exactly the source-major
        # enumeration of _training_set.  Allocated lazily because the
        # metric dimension is only known once measurements arrive.
        n_vms = self._design.shape[0]
        self._buffer: np.ndarray | None = None
        self._cache_len = 0
        self._cached_indices = np.empty(n_vms, dtype=np.int64)
        self._cached_values = np.empty(n_vms, dtype=float)
        self._cached_metrics: np.ndarray | None = None
        # Scaled query-row buffer, indexed [destination, source slot]:
        # row (dest, t) is the scaler transform of
        # [design[dest], design[index[t]], metrics[t]].  Source blocks
        # are appended per observation and fully re-scaled only when the
        # scaler statistics change (every step under full refit, once
        # under warm refit).  _scaled_design caches the transform of the
        # static candidate design for the current scaler.
        self._qbuf: np.ndarray | None = None
        self._qbuf_len = 0
        self._qbuf_mean: np.ndarray | None = None
        self._qbuf_scale: np.ndarray | None = None
        self._scaled_design: np.ndarray | None = None
        # Warm-start state (refit_fraction < 1 only).
        self._model = None
        self._scaler: StandardScaler | None = None

    def _build_model(self):
        seed = int(self._rng.integers(2**31))
        if self.ensemble == "extra_trees":
            return ExtraTreesRegressor(
                n_estimators=self.n_estimators,
                min_samples_split=6,
                seed=seed,
                refit_fraction=self.refit_fraction,
                tree_builder=self.tree_builder,
            )
        return RandomForestRegressor(
            n_estimators=self.n_estimators,
            max_features=None,
            min_samples_split=6,
            seed=seed,
            tree_builder=self.tree_builder,
        )

    def _pair_row(self, dest: int, source: int, source_metrics: np.ndarray) -> np.ndarray:
        return np.concatenate([self._design[dest], self._design[source], source_metrics])

    def _training_set(
        self, measured: list[int], log_values: np.ndarray, metrics: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """From-scratch enumeration of all ordered pairs (source-major).

        This is the reference the incremental cache must reproduce: row
        ``src * m + dst`` is ``[design[dst], design[src], metrics[src]]``.
        Kept vectorised but cache-free; :meth:`score` uses the cached
        buffer and ``tests/test_augmented_incremental.py`` asserts both
        agree after every step.
        """
        index = np.asarray(measured, dtype=np.int64)
        m = index.size
        d = self._design.shape[1]
        design_rows = self._design[index]
        rows = np.empty((m * m, 2 * d + metrics.shape[1]))
        rows[:, :d] = np.tile(design_rows, (m, 1))  # destination varies fastest
        rows[:, d : 2 * d] = np.repeat(design_rows, m, axis=0)
        rows[:, 2 * d :] = np.repeat(metrics, m, axis=0)
        log_values = np.asarray(log_values, dtype=float)
        if self.relational:
            targets = np.tile(log_values, m) - np.repeat(log_values, m)
        else:
            targets = np.tile(log_values, m)
        return rows, targets

    def _sync_pair_cache(
        self, index: np.ndarray, values: np.ndarray, metrics: np.ndarray
    ) -> int:
        """Extend (or rebuild) the cached pair buffer to cover ``index``.

        Returns the slot the write started from: slots below it were
        verified consistent with the new history (0 means the history
        diverged and everything was rebuilt).
        """
        m = index.size
        d = self._design.shape[1]
        n_vms = self._design.shape[0]
        if self._buffer is None or self._buffer.shape[2] != 2 * d + metrics.shape[1]:
            self._buffer = np.empty((n_vms, n_vms, 2 * d + metrics.shape[1]))
            self._cached_metrics = np.empty((n_vms, metrics.shape[1]))
            self._cache_len = 0
        start = self._cache_len
        # The cache is valid only if the new history extends the old one.
        if not (
            start <= m
            and np.array_equal(index[:start], self._cached_indices[:start])
            and np.array_equal(values[:start], self._cached_values[:start])
            and np.array_equal(metrics[:start], self._cached_metrics[:start])
        ):
            start = 0
        buffer = self._buffer
        for t in range(start, m):
            catalog_index = index[t]
            # New source row: (src=t, dst=0..t).
            buffer[t, : t + 1, :d] = self._design[index[: t + 1]]
            buffer[t, : t + 1, d : 2 * d] = self._design[catalog_index]
            buffer[t, : t + 1, 2 * d :] = metrics[t]
            if t:
                # New destination column: (src=0..t-1, dst=t).
                buffer[:t, t, :d] = self._design[catalog_index]
                buffer[:t, t, d : 2 * d] = self._design[index[:t]]
                buffer[:t, t, 2 * d :] = metrics[:t]
        self._cached_indices[:m] = index
        self._cached_values[:m] = values
        self._cached_metrics[:m] = metrics
        self._cache_len = m
        return start

    def _sync_query_buffer(
        self,
        index: np.ndarray,
        metrics: np.ndarray,
        scaler: StandardScaler,
        valid_len: int,
    ) -> None:
        """Bring the scaled query buffer up to date for ``index``.

        ``valid_len`` is how many leading source slots are known to match
        the current history (the pair cache's verified prefix).  When the
        scaler statistics are unchanged only the new source blocks are
        written — one ``(n_vms, width)`` block per new observation; when
        they moved (full-refit mode refits the scaler every step) the
        cached scaled design is recomputed and every block is re-scaled.
        """
        m = index.size
        d = self._design.shape[1]
        n_vms = self._design.shape[0]
        width = 2 * d + metrics.shape[1]
        mean, scale = scaler.mean_, scaler.scale_
        if self._qbuf is None or self._qbuf.shape[2] != width:
            self._qbuf = np.empty((n_vms, n_vms, width))
            self._qbuf_len = 0
            valid_len = 0
        scaler_moved = (
            self._qbuf_mean is None
            or not np.array_equal(mean, self._qbuf_mean)
            or not np.array_equal(scale, self._qbuf_scale)
        )
        if scaler_moved:
            self._scaled_design = (self._design - mean[:d]) / scale[:d]
            self._qbuf_mean = mean.copy()
            self._qbuf_scale = scale.copy()
            start = 0
        else:
            start = min(valid_len, self._qbuf_len, m)
        buffer = self._qbuf
        src_mean, src_scale = mean[d : 2 * d], scale[d : 2 * d]
        met_mean, met_scale = mean[2 * d :], scale[2 * d :]
        for t in range(start, m):
            buffer[:, t, :d] = self._scaled_design
            buffer[:, t, d : 2 * d] = (self._design[index[t]] - src_mean) / src_scale
            buffer[:, t, 2 * d :] = (metrics[t] - met_mean) / met_scale
        self._qbuf_len = m

    def cached_training_set(self) -> tuple[np.ndarray, np.ndarray]:
        """The (features, targets) pair set currently held by the cache.

        Raises:
            RuntimeError: before the first :meth:`score` call.
        """
        m = self._cache_len
        if m == 0 or self._buffer is None:
            raise RuntimeError("no pair cache yet; call score first")
        rows = self._buffer[:m, :m].reshape(m * m, self._buffer.shape[2])
        log_values = np.log(self._cached_values[:m])
        if self.relational:
            targets = np.tile(log_values, m) - np.repeat(log_values, m)
        else:
            targets = np.tile(log_values, m)
        return rows, targets

    @property
    def stackable(self) -> bool:
        """Whether this scorer's ensemble fit can be stacked cross-search.

        The cross-search batched builder
        (:func:`repro.ml.tree_builder.build_extra_trees_stacked`) only
        reproduces the full-refit vectorized Extra-Trees path bit for
        bit; warm refits, classic growth and the CART random forest fall
        back to the per-search loop.
        """
        return (
            self.ensemble == "extra_trees"
            and self.refit_fraction == 1.0
            and self.tree_builder == "vectorized"
        )

    def score_begin(
        self,
        measured: list[int],
        values: np.ndarray,
        measurements: list[Measurement],
        unmeasured: list[int],
    ) -> _PendingTreeScore:
        """Everything :meth:`score` does *before* the ensemble fit.

        Splitting the step at the fit boundary lets an external driver
        fit many searches' ensembles in one stacked builder pass
        (:func:`repro.ml.extra_trees.fit_ensembles_stacked`) and then
        finish each step with :meth:`score_commit`.  ``score_begin`` +
        ``model.fit`` + ``score_commit`` is bit-identical to
        :meth:`score` — it is the same code, split.
        """
        t_build = perf_counter()
        index = np.asarray(measured, dtype=np.int64)
        values = np.asarray(values, dtype=float)
        # to_vector is memoised per measurement, so this is m cheap reads.
        metrics = np.array([meas.metrics.to_vector() for meas in measurements])
        pair_start = self._sync_pair_cache(index, values, metrics)
        X_train, y_train = self.cached_training_set()
        log_values = np.log(values)
        build_s = perf_counter() - t_build

        t_prep = perf_counter()
        if self.refit_fraction < 1.0:
            # Warm start: one persistent ensemble, scaler frozen on the
            # first fit so kept trees stay consistent with new data.
            if self._model is None:
                self._model = self._build_model()
                self._scaler = StandardScaler().fit(X_train)
            scaler, model = self._scaler, self._model
        else:
            scaler = StandardScaler().fit(X_train)
            model = self._build_model()
        X_scaled = scaler.transform(X_train)
        return _PendingTreeScore(
            index=index,
            metrics=metrics,
            log_values=log_values,
            pair_start=pair_start,
            scaler=scaler,
            model=model,
            X_scaled=X_scaled,
            y_train=y_train,
            width=X_train.shape[1],
            unmeasured=unmeasured,
            build_s=build_s,
            fit_prep_s=perf_counter() - t_prep,
        )

    def query_rows(self, pending: _PendingTreeScore) -> np.ndarray:
        """Assemble (and cache on ``pending``) the scaled query rows.

        The ``u * m`` candidate x source rows :meth:`score_commit`
        scores, in destination-major order.  Exposed so a cross-search
        driver can collect every pending step's rows and traverse all
        ensembles at once (:func:`repro.ml.tree.predict_packed_many`);
        :meth:`score_commit` calls it itself otherwise.  Idempotent per
        pending step — the rows are built once and cached.
        """
        if pending.scaled_query is not None:
            return pending.scaled_query
        index, metrics, scaler = pending.index, pending.metrics, pending.scaler
        m = index.size
        d = self._design.shape[1]
        candidates = np.asarray(pending.unmeasured, dtype=np.int64)
        u = candidates.size
        t_query = perf_counter()
        if self.query_mode == "rebuild":
            # Legacy path: reassemble all u * m rows and re-transform
            # them every step.  Kept as the benchmark baseline.
            measured_rows = self._design[index]
            query_rows = np.empty((u * m, pending.width))
            query_rows[:, :d] = np.repeat(self._design[candidates], m, axis=0)
            query_rows[:, d : 2 * d] = np.tile(measured_rows, (u, 1))
            query_rows[:, 2 * d :] = np.tile(metrics, (u, 1))
            scaled_query = scaler.transform(query_rows)
        else:
            # Incremental path: one gather from the scaled buffer.  The
            # element order (destination-major, source-minor) and every
            # scaled value match the rebuild path bit for bit.
            self._sync_query_buffer(index, metrics, scaler, pending.pair_start)
            scaled_query = self._qbuf[candidates, :m].reshape(
                u * m, self._qbuf.shape[2]
            )
        pending.query_s = perf_counter() - t_query
        pending.scaled_query = scaled_query
        return scaled_query

    def score_commit(
        self,
        pending: _PendingTreeScore,
        fit_s: float,
        tree_predictions: np.ndarray | None = None,
    ) -> AcquisitionScores:
        """Everything :meth:`score` does *after* the ensemble fit.

        ``pending.model`` must already be fitted on
        ``(pending.X_scaled, pending.y_train)``; ``fit_s`` is the
        wall-clock the caller spent doing so (recorded in
        :attr:`step_timings`).  ``tree_predictions`` optionally supplies
        the per-tree predictions for :meth:`query_rows` — an
        ``(n_trees, u * m)`` array from a batched cross-ensemble
        traversal; the source average over it is exactly the model's own
        ``predict``, so the scores are bit-identical either way.
        """
        model = pending.model
        m = pending.index.size
        # One prediction per (candidate, measured source); average sources
        # in log space (a geometric mean over sources), so one
        # catastrophic source cannot drown the rest.
        t_predict = perf_counter()
        scaled_query = self.query_rows(pending)
        u = len(pending.unmeasured)
        if tree_predictions is None:
            predictions = model.predict(scaled_query)
        else:
            predictions = tree_predictions.mean(axis=0)
        per_source = predictions.reshape(u, m)
        if self.relational:
            per_source = per_source + pending.log_values[None, :]
        predicted = np.exp(per_source.mean(axis=1))
        predict_s = perf_counter() - t_predict

        self.step_timings.append(
            {
                "n_measured": int(m),
                "n_candidates": int(u),
                "build_s": pending.build_s,
                "fit_s": fit_s,
                "query_s": pending.query_s,
                "predict_s": predict_s,
            }
        )
        return AcquisitionScores(scores=prediction_delta(predicted), predicted=predicted)

    def score(
        self,
        measured: list[int],
        values: np.ndarray,
        measurements: list[Measurement],
        unmeasured: list[int],
    ) -> AcquisitionScores:
        """Fit the pairwise surrogate and score the unmeasured candidates."""
        pending = self.score_begin(measured, values, measurements, unmeasured)
        t_fit = perf_counter()
        pending.model.fit(pending.X_scaled, pending.y_train)
        fit_s = pending.fit_prep_s + (perf_counter() - t_fit)
        return self.score_commit(pending, fit_s)


class AugmentedBO(SequentialOptimizer):
    """Low-level augmented Bayesian optimisation (the paper's method).

    Args:
        n_estimators: ensemble size.
        relational: surrogate target mode; see :class:`PairwiseTreeScorer`.
        ensemble: surrogate ensemble family; see :class:`PairwiseTreeScorer`.
        refit_fraction: warm-start refit knob; see :class:`PairwiseTreeScorer`.
        tree_builder: tree-growth strategy; see :class:`PairwiseTreeScorer`.
        query_mode: candidate-row assembly mode; see :class:`PairwiseTreeScorer`.
        **kwargs: forwarded to :class:`SequentialOptimizer`.
    """

    name = "augmented-bo"

    def __init__(
        self,
        *args,
        n_estimators: int = DEFAULT_N_ESTIMATORS,
        relational: bool = True,
        ensemble: str = "extra_trees",
        refit_fraction: float = 1.0,
        tree_builder: str = "vectorized",
        query_mode: str = "incremental",
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._scorer = PairwiseTreeScorer(
            self.design_matrix,
            n_estimators=n_estimators,
            relational=relational,
            ensemble=ensemble,
            seed=int(self._rng.integers(2**31)),
            refit_fraction=refit_fraction,
            tree_builder=tree_builder,
            query_mode=query_mode,
        )

    @property
    def scorer(self) -> PairwiseTreeScorer:
        """The pairwise surrogate scorer (exposes per-step timings)."""
        return self._scorer

    def _score_candidates(self, unmeasured: list[int]) -> AcquisitionScores:
        return self._scorer.score(
            self.measured_indices,
            self.measured_values,
            self.measured_measurements,
            unmeasured,
        )

    def _round_scorer(self) -> PairwiseTreeScorer:
        return self._scorer
