"""Augmented BO — the paper's contribution (Algorithm 2, "Arrow").

Three design changes relative to Naive BO (Section IV-B):

* **Augmented instance space** — the surrogate's inputs are the encoded
  characteristics of the *destination* VM (the one whose performance we
  want) concatenated with the characteristics *and low-level metrics* of
  a *source* VM on which the workload has actually run.
* **Surrogate model** — an Extra-Trees ensemble instead of a GP, so no
  kernel has to be chosen (side-stepping one fragility source).
* **Acquisition** — Prediction Delta: measure the VM with the best point
  prediction; the same quantity drives the stopping rule.

Training uses every ordered pair of measured VMs ``(source j -> dest i)``
plus the identity pairs ``(j -> j)``; prediction for an unmeasured VM
averages the model over all measured sources.  This is how low-level
information about VMs we *have* measured informs estimates for VMs we
*have not* — the paper's central trick.

**A reproduction note on the target variable.**  Algorithm 2 leaves open
what exactly the pairwise model regresses.  The literal reading — the
destination's absolute performance — makes the low-level metrics
provably uninformative for a single workload: within one search, the
target varies only with the destination while the metrics vary only with
the source, so no split on a metric can ever reduce training error.  We
therefore regress the *log performance ratio* ``log y_dest - log y_src``
(``relational=True``, the default), which matches the paper's narrative
that "experts interpolate or extrapolate the workload performance using
not only characteristics of VM but also the low-level performance
information": a source observed at 140% memory commit predicts a large
speedup on a destination with more RAM, and that interaction is exactly
what the trees learn.  ``relational=False`` keeps the literal absolute
form for comparison (``benchmarks/test_ablation_surrogate.py``
quantifies the difference).
"""

from __future__ import annotations

import numpy as np

from repro.core.acquisition import prediction_delta
from repro.core.smbo import AcquisitionScores, SequentialOptimizer
from repro.ml.extra_trees import ExtraTreesRegressor
from repro.ml.random_forest import RandomForestRegressor
from repro.ml.scaling import StandardScaler
from repro.simulator.cluster import Measurement

#: Default ensemble size for the Extra-Trees surrogate.
DEFAULT_N_ESTIMATORS = 24

#: Tree ensembles the surrogate can use; the paper picks Extra-Trees,
#: the CART random forest is its classic sibling (for the ablation).
ENSEMBLES = ("extra_trees", "random_forest")


class PairwiseTreeScorer:
    """Fits the pairwise low-level surrogate and scores Prediction Delta.

    Factored out of :class:`AugmentedBO` so
    :class:`~repro.core.hybrid_bo.HybridBO` can reuse it for its late phase.

    Args:
        design_matrix: full encoded instance space.
        n_estimators: ensemble size.
        relational: regress log performance *ratios* (source -> dest)
            instead of absolute log performance; see the module docstring.
        ensemble: ``"extra_trees"`` (the paper's choice, default) or
            ``"random_forest"`` (bagged CART, for the ablation).
        seed: seed for the ensemble's randomisation.
    """

    def __init__(
        self,
        design_matrix: np.ndarray,
        n_estimators: int = DEFAULT_N_ESTIMATORS,
        relational: bool = True,
        ensemble: str = "extra_trees",
        seed: int | None = None,
    ) -> None:
        if ensemble not in ENSEMBLES:
            raise ValueError(f"unknown ensemble {ensemble!r}; known: {ENSEMBLES}")
        self._design = np.asarray(design_matrix, dtype=float)
        self.n_estimators = n_estimators
        self.relational = relational
        self.ensemble = ensemble
        self._rng = np.random.default_rng(seed)

    def _build_model(self):
        seed = int(self._rng.integers(2**31))
        if self.ensemble == "extra_trees":
            return ExtraTreesRegressor(
                n_estimators=self.n_estimators, min_samples_split=6, seed=seed
            )
        return RandomForestRegressor(
            n_estimators=self.n_estimators,
            max_features=None,
            min_samples_split=6,
            seed=seed,
        )

    def _pair_row(self, dest: int, source: int, source_metrics: np.ndarray) -> np.ndarray:
        return np.concatenate([self._design[dest], self._design[source], source_metrics])

    def _training_set(
        self, measured: list[int], log_values: np.ndarray, metrics: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        rows, targets = [], []
        for src_pos, src_index in enumerate(measured):
            for dst_pos, dst_index in enumerate(measured):
                rows.append(self._pair_row(dst_index, src_index, metrics[src_pos]))
                if self.relational:
                    targets.append(log_values[dst_pos] - log_values[src_pos])
                else:
                    targets.append(log_values[dst_pos])
        return np.array(rows), np.array(targets)

    def score(
        self,
        measured: list[int],
        values: np.ndarray,
        measurements: list[Measurement],
        unmeasured: list[int],
    ) -> AcquisitionScores:
        """Fit the pairwise surrogate and score the unmeasured candidates."""
        metrics = np.array([m.metrics.to_vector() for m in measurements])
        log_values = np.log(values)
        X_train, y_train = self._training_set(measured, log_values, metrics)

        scaler = StandardScaler().fit(X_train)
        model = self._build_model()
        model.fit(scaler.transform(X_train), y_train)

        # One prediction per (candidate, measured source); average sources
        # in log space (a geometric mean over sources), so one
        # catastrophic source cannot drown the rest.
        query_rows = np.array(
            [
                self._pair_row(candidate, src_index, metrics[src_pos])
                for candidate in unmeasured
                for src_pos, src_index in enumerate(measured)
            ]
        )
        predictions = model.predict(scaler.transform(query_rows))
        per_source = predictions.reshape(len(unmeasured), len(measured))
        if self.relational:
            per_source = per_source + log_values[None, :]
        predicted = np.exp(per_source.mean(axis=1))
        return AcquisitionScores(scores=prediction_delta(predicted), predicted=predicted)


class AugmentedBO(SequentialOptimizer):
    """Low-level augmented Bayesian optimisation (the paper's method).

    Args:
        n_estimators: ensemble size.
        relational: surrogate target mode; see :class:`PairwiseTreeScorer`.
        ensemble: surrogate ensemble family; see :class:`PairwiseTreeScorer`.
        **kwargs: forwarded to :class:`SequentialOptimizer`.
    """

    name = "augmented-bo"

    def __init__(
        self,
        *args,
        n_estimators: int = DEFAULT_N_ESTIMATORS,
        relational: bool = True,
        ensemble: str = "extra_trees",
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._scorer = PairwiseTreeScorer(
            self.design_matrix,
            n_estimators=n_estimators,
            relational=relational,
            ensemble=ensemble,
            seed=int(self._rng.integers(2**31)),
        )

    def _score_candidates(self, unmeasured: list[int]) -> AcquisitionScores:
        return self._scorer.score(
            self.measured_indices,
            self.measured_values,
            self.measured_measurements,
            unmeasured,
        )
