"""History-augmented BO — the paper's future-work extension.

The paper closes with: *"In our future work, we plan to further augment
Bayesian Optimizer with historical performance data to further reduce
the search cost."*  This module implements that idea on top of the
pairwise low-level surrogate.

The pairwise featurisation (destination VM characteristics, source VM
characteristics, source low-level metrics -> log performance ratio)
is workload-agnostic: "a source at 140% memory commit speeds up a lot on
a destination with 4x the RAM" is a fact about hardware and bottlenecks,
not about one job.  So pairs harvested from *previously measured
workloads* form a valid prior:

* at construction, an Extra-Trees model is fitted **once** on a
  subsample of cross-workload pairs from the history trace (the target
  workload is always excluded — no label leakage),
* during the search, predictions blend the history model with the
  current-workload model, with the history weight decaying as real
  measurements accumulate: ``alpha = h / (h + k)`` for ``k`` measured
  VMs and prior strength ``h``.

With no measurements beyond the initial design the prior dominates and
typically points near the optimum immediately; once enough real data
exists the search behaves like plain Augmented BO.
"""

from __future__ import annotations

import numpy as np

from repro.core.acquisition import prediction_delta
from repro.core.augmented_bo import DEFAULT_N_ESTIMATORS, AugmentedBO, PairwiseTreeScorer
from repro.core.smbo import AcquisitionScores
from repro.ml.extra_trees import ExtraTreesRegressor
from repro.ml.scaling import StandardScaler
from repro.trace.dataset import BenchmarkTrace

#: Default number of (source, destination) pairs sampled per history workload.
DEFAULT_PAIRS_PER_WORKLOAD = 24

#: Default prior strength: the history model counts as this many real
#: measurements when blending.
DEFAULT_PRIOR_STRENGTH = 4.0


def build_history_pairs(
    trace: BenchmarkTrace,
    exclude_workload_id: str,
    objective_key: str = "time",
    pairs_per_workload: int = DEFAULT_PAIRS_PER_WORKLOAD,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Harvest pairwise training rows from every other workload in a trace.

    Returns:
        ``(rows, targets)`` where each row is
        ``[enc(dest), enc(src), lowlevel(src)]`` and each target the log
        performance ratio ``log y_dest - log y_src`` under the given
        objective.

    Raises:
        KeyError: if ``exclude_workload_id`` is not in the trace.
    """
    trace.row_of(exclude_workload_id)  # validate the id early
    rng = np.random.default_rng(seed)
    from repro.cloud.encoding import InstanceEncoder

    encoder = InstanceEncoder(trace.catalog)
    design = encoder.encode_all()
    n_vms = len(trace.catalog)

    rows, targets = [], []
    for workload in trace.registry:
        if workload.workload_id == exclude_workload_id:
            continue
        values = trace.objective_values(workload, objective_key)
        log_values = np.log(values)
        metrics = trace.metrics[trace.row_of(workload)]
        for _ in range(pairs_per_workload):
            src, dst = rng.integers(n_vms), rng.integers(n_vms)
            rows.append(np.concatenate([design[dst], design[src], metrics[src]]))
            targets.append(log_values[dst] - log_values[src])
    return np.array(rows), np.array(targets)


class HistoryModel:
    """The fixed prior: an Extra-Trees model over cross-workload pairs."""

    def __init__(
        self,
        rows: np.ndarray,
        targets: np.ndarray,
        n_estimators: int = 15,
        seed: int | None = None,
    ) -> None:
        if rows.shape[0] == 0:
            raise ValueError("history must contain at least one pair")
        self._scaler = StandardScaler().fit(rows)
        self._model = ExtraTreesRegressor(
            n_estimators=n_estimators, min_samples_split=8, seed=seed
        )
        self._model.fit(self._scaler.transform(rows), targets)

    def predict(self, rows: np.ndarray) -> np.ndarray:
        """Predicted log performance ratios for pairwise ``rows``."""
        return self._model.predict(self._scaler.transform(rows))


class HistoryAugmentedBO(AugmentedBO):
    """Augmented BO with a cross-workload history prior.

    Args:
        environment: the measurement environment for the target workload.
        history: a fitted :class:`HistoryModel` (build it once per history
            trace and share it across searches; pass ``None`` to behave
            exactly like :class:`AugmentedBO`).
        prior_strength: how many real measurements the prior is worth.
        **kwargs: forwarded to :class:`AugmentedBO`.
    """

    name = "history-augmented-bo"

    def __init__(
        self,
        environment,
        *args,
        history: HistoryModel | None = None,
        prior_strength: float = DEFAULT_PRIOR_STRENGTH,
        n_estimators: int = DEFAULT_N_ESTIMATORS,
        **kwargs,
    ) -> None:
        super().__init__(environment, *args, n_estimators=n_estimators, **kwargs)
        if prior_strength < 0:
            raise ValueError(f"prior_strength must be >= 0, got {prior_strength}")
        self.history = history
        self.prior_strength = prior_strength

    def _score_candidates(self, unmeasured: list[int]) -> AcquisitionScores:
        current = self._scorer.score(
            self.measured_indices,
            self.measured_values,
            self.measured_measurements,
            unmeasured,
        )
        if self.history is None or self.prior_strength == 0:
            return current

        measured = self.measured_indices
        metrics = np.array([m.metrics.to_vector() for m in self.measured_measurements])
        log_values = np.log(self.measured_values)
        query_rows = np.array(
            [
                self._scorer._pair_row(candidate, src_index, metrics[src_pos])
                for candidate in unmeasured
                for src_pos, src_index in enumerate(measured)
            ]
        )
        ratios = self.history.predict(query_rows).reshape(len(unmeasured), len(measured))
        prior_log = (ratios + log_values[None, :]).mean(axis=1)

        k = len(measured)
        alpha = self.prior_strength / (self.prior_strength + k)
        assert current.predicted is not None
        blended = np.exp(
            alpha * prior_log + (1.0 - alpha) * np.log(current.predicted)
        )
        return AcquisitionScores(scores=prediction_delta(blended), predicted=blended)
