"""Stopping criteria.

The paper compares two families (Section VI-A):

* **EI threshold** — CherryPick's rule for Naive BO: stop when the best
  remaining Expected Improvement falls below a fraction of the incumbent
  (10% as prescribed).
* **Prediction-Delta threshold** — Augmented BO's rule: stop when even
  the best *predicted* objective among unmeasured VMs is no better than
  ``threshold`` times the incumbent.  Thresholds below 1 stop while an
  improvement is still predicted (cheap searches, possibly sub-optimal);
  thresholds well above 1 keep searching until everything remaining is
  predicted clearly worse (near-exhaustive).  The paper sweeps 0.9-1.3
  and recommends 1.1 for cost (1.05 for the time-cost product).

Criteria are evaluated after each surrogate fit, before the next
measurement is charged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class SearchState:
    """What a stopping criterion may look at after one surrogate fit.

    Attributes:
        measurement_count: measurements charged so far.
        best_observed: incumbent (lowest) objective value.
        predicted: surrogate point predictions for unmeasured candidates
            (``None`` for optimisers without a surrogate, e.g. random).
        expected_improvements: EI values for unmeasured candidates
            (``None`` when the acquisition is not EI-based).
    """

    measurement_count: int
    best_observed: float
    predicted: np.ndarray | None
    expected_improvements: np.ndarray | None


class StoppingCriterion(abc.ABC):
    """Decides whether a search should end before exhausting the catalog."""

    @abc.abstractmethod
    def should_stop(self, state: SearchState) -> bool:
        """True if the search should stop in ``state``."""

    def describe(self) -> str:
        """Rule name plus threshold, for the ``stopping_rule_fired`` event."""
        return type(self).__name__

    @property
    def min_measurements(self) -> int:
        """Measurements that must be charged before this criterion may fire."""
        return 0


class MaxMeasurements(StoppingCriterion):
    """Stop after a fixed measurement budget."""

    def __init__(self, budget: int) -> None:
        if budget < 1:
            raise ValueError(f"budget must be at least 1, got {budget}")
        self.budget = budget

    def should_stop(self, state: SearchState) -> bool:
        return state.measurement_count >= self.budget

    def describe(self) -> str:
        return f"MaxMeasurements(budget={self.budget})"


class EIThreshold(StoppingCriterion):
    """CherryPick's rule: stop when max EI < ``fraction`` x incumbent.

    Args:
        fraction: relative EI threshold (CherryPick uses 0.1).
        min_measurements: don't stop before this many measurements
            (CherryPick requires at least 6).
    """

    def __init__(self, fraction: float = 0.1, min_measurements: int = 6) -> None:
        if fraction <= 0:
            raise ValueError(f"fraction must be positive, got {fraction}")
        self.fraction = fraction
        self._min_measurements = min_measurements

    @property
    def min_measurements(self) -> int:
        return self._min_measurements

    def should_stop(self, state: SearchState) -> bool:
        if state.measurement_count < self._min_measurements:
            return False
        if state.expected_improvements is None or state.expected_improvements.size == 0:
            return False
        return float(np.max(state.expected_improvements)) < self.fraction * abs(
            state.best_observed
        )

    def describe(self) -> str:
        return f"EIThreshold(fraction={self.fraction})"


class PredictionDeltaThreshold(StoppingCriterion):
    """Augmented BO's rule: stop when min predicted >= threshold x incumbent.

    Args:
        threshold: the paper's 0.9-1.3 sweep value (1.1 recommended).
        min_measurements: don't stop before this many measurements (the
            surrogate needs at least the initial design plus one).
    """

    def __init__(self, threshold: float = 1.1, min_measurements: int = 4) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold
        self._min_measurements = min_measurements

    @property
    def min_measurements(self) -> int:
        return self._min_measurements

    def should_stop(self, state: SearchState) -> bool:
        if state.measurement_count < self._min_measurements:
            return False
        if state.predicted is None or state.predicted.size == 0:
            return False
        return float(np.min(state.predicted)) >= self.threshold * state.best_observed

    def describe(self) -> str:
        return f"PredictionDeltaThreshold(threshold={self.threshold})"
