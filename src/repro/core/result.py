"""Search traces and results.

A :class:`SearchResult` records everything the paper's evaluation needs
from one optimiser run: the ordered measurements (one :class:`SearchStep`
per charge), the best VM found, and why the search ended.  Analysis
utilities (search cost to optimum, normalised performance at step k) live
in :mod:`repro.analysis.metrics`; this module is pure record-keeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import SearchEvent
from repro.core.objectives import Objective


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """One failed (but still charged) measurement attempt.

    Attributes:
        step: the 1-based step the search was working towards when the
            attempt failed (= successful observations so far + 1).
        vm_name: the VM whose measurement failed.
        attempt: 1-based attempt number within that observation round.
        error: ``"ErrorType: message"`` of the underlying failure.
        charge: what the cloud billed for the attempt, in on-demand
            attempt units.  ``1.0`` (a full on-demand run) everywhere
            except spot-priced searches, where a market revocation bills
            only the completed fraction at the discounted spot price.
    """

    step: int
    vm_name: str
    attempt: int
    error: str
    charge: float = 1.0


@dataclass(frozen=True, slots=True)
class SearchStep:
    """One successful charged measurement during a search.

    Attributes:
        step: 1-based measurement index (initial samples included).
        vm_name: the VM type measured at this step.
        objective_value: the objective of this measurement.
        best_value: the best (lowest) objective observed up to this step.
        attempts: measure calls this observation took (1 = first try;
            the ``attempts - 1`` failures are also in
            :attr:`SearchResult.failure_events`).
        charge: what the cloud billed for the successful attempt, in
            on-demand attempt units.  ``1.0`` except under spot pricing,
            where the run bills the spot price for only the work a
            banked partial checkpoint did not already cover.
    """

    step: int
    vm_name: str
    objective_value: float
    best_value: float
    attempts: int = 1
    charge: float = 1.0


@dataclass(frozen=True, slots=True)
class SearchResult:
    """The outcome of one optimiser run on one workload.

    Attributes:
        optimizer: the optimiser's display name.
        objective: what was minimised.
        workload_id: the workload searched, when known.
        steps: one entry per successful measurement, in order.
        stopped_by: ``"exhausted"`` (all reachable VMs measured),
            ``"criterion"`` (stopping rule fired) or ``"budget"``
            (``max_measurements`` charged attempts reached).
        quarantined_vms: VM types the circuit breaker quarantined after
            repeated failures (sorted); empty for a fault-free search.
        failure_events: every failed-but-charged measurement attempt, in
            order of occurrence.
        retry_wait_s: total simulated (or real) backoff time spent
            between retry attempts.
        events: the search's full structured event stream
            (:class:`~repro.core.events.SearchEvent`), in emission order.
    """

    optimizer: str
    objective: Objective
    workload_id: str | None
    steps: tuple[SearchStep, ...]
    stopped_by: str
    quarantined_vms: tuple[str, ...] = ()
    failure_events: tuple[FailureEvent, ...] = ()
    retry_wait_s: float = 0.0
    events: tuple[SearchEvent, ...] = ()

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a search result must contain at least one step")

    @property
    def search_cost(self) -> int:
        """Number of successful charged measurements (one per step)."""
        return len(self.steps)

    @property
    def failure_count(self) -> int:
        """Number of failed (but charged) measurement attempts."""
        return len(self.failure_events)

    @property
    def charged_cost(self) -> int | float:
        """Everything the cloud billed, in on-demand attempt units.

        Unit charges (every run outside spot pricing) keep the historic
        integer semantics — ``search_cost + failure_count`` exactly, an
        ``int`` — so fault accounting, displays and cached digests are
        unchanged.  Spot-priced searches bill fractional charges
        (discounted runs, partial revocation charges, resumed redo), and
        the sum is returned as the exact float the attempts accumulated.
        """
        attempts = self.search_cost + self.failure_count
        total = sum(s.charge for s in self.steps) + sum(
            e.charge for e in self.failure_events
        )
        if total == attempts:  # all unit charges: exact integer sum
            return attempts
        return total

    @property
    def best_value(self) -> float:
        """Best objective value observed over the whole search."""
        return self.steps[-1].best_value

    @property
    def best_vm_name(self) -> str:
        """Name of the VM achieving :attr:`best_value`."""
        best = min(self.steps, key=lambda s: s.objective_value)
        return best.vm_name

    @property
    def measured_vm_names(self) -> tuple[str, ...]:
        """Names of all measured VMs, in measurement order."""
        return tuple(s.vm_name for s in self.steps)

    def best_value_at(self, step: int) -> float:
        """Best objective after ``step`` measurements.

        For ``step`` beyond the search's end, returns the final best —
        the search has converged and would not improve further.

        Raises:
            ValueError: if ``step`` is less than 1.
        """
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        index = min(step, len(self.steps)) - 1
        return self.steps[index].best_value

    def first_step_reaching(self, target_value: float, tolerance: float = 1e-9) -> int | None:
        """Earliest step whose best value is within ``tolerance`` of target.

        Returns ``None`` if the search never reached ``target_value``.
        """
        for step_record in self.steps:
            if step_record.best_value <= target_value * (1.0 + tolerance):
                return step_record.step
        return None
