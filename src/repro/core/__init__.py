"""The paper's contribution: Bayesian optimisation for cloud VM selection.

* :class:`~repro.core.naive_bo.NaiveBO` — CherryPick-style BO: Gaussian
  Process over the encoded instance space, Matérn 5/2, Expected
  Improvement (the paper's baseline, shown to be fragile),
* :class:`~repro.core.augmented_bo.AugmentedBO` — the paper's method
  (Arrow): Extra-Trees surrogate over instance features *augmented with
  low-level metrics of measured VMs*, Prediction-Delta acquisition,
* :class:`~repro.core.hybrid_bo.HybridBO` — the combination sketched in
  Section V-B (Naive early, Augmented once low-level data accumulates),
* baselines, acquisition functions, stopping criteria, and the generic
  SMBO loop (Algorithm 1) they all share.
"""

from repro.core.objectives import Objective
from repro.core.result import FailureEvent, SearchResult, SearchStep
from repro.core.acquisition import (
    expected_improvement,
    lower_confidence_bound,
    prediction_delta,
    probability_of_improvement,
)
from repro.core.stopping import (
    EIThreshold,
    MaxMeasurements,
    PredictionDeltaThreshold,
    SearchState,
    StoppingCriterion,
)
from repro.core.smbo import MeasurementError, SequentialOptimizer
from repro.core.naive_bo import NaiveBO
from repro.core.augmented_bo import AugmentedBO
from repro.core.hybrid_bo import HybridBO
from repro.core.history_bo import HistoryAugmentedBO, HistoryModel, build_history_pairs
from repro.core.baselines import ExhaustiveSearch, RandomSearch, SingleVMRule

__all__ = [
    "Objective",
    "SearchResult",
    "SearchStep",
    "FailureEvent",
    "expected_improvement",
    "probability_of_improvement",
    "lower_confidence_bound",
    "prediction_delta",
    "SearchState",
    "StoppingCriterion",
    "MaxMeasurements",
    "EIThreshold",
    "PredictionDeltaThreshold",
    "SequentialOptimizer",
    "MeasurementError",
    "NaiveBO",
    "AugmentedBO",
    "HybridBO",
    "HistoryAugmentedBO",
    "HistoryModel",
    "build_history_pairs",
    "RandomSearch",
    "ExhaustiveSearch",
    "SingleVMRule",
]
