"""Structured per-search event stream.

Every search emits an append-only sequence of :class:`SearchEvent`
records — measurement lifecycle, surrogate fits, VM quarantines — that
rides on :class:`~repro.core.result.SearchResult`.  The stream is the
single surface shared by live progress reporting (the parallel engine
forwards it from workers) and post-hoc analysis (it round-trips through
the experiment cache), so neither needs its own bookkeeping.

Events are deliberately flat and stringly-detailed: a kind, the 1-based
step the search was working towards, an optional VM name, and a free-form
detail.  Position in the stream is the ordering; there is no timestamp
(searches replay deterministically, wall-clock would break bit-identical
caching).
"""

from __future__ import annotations

from dataclasses import dataclass

#: The event vocabulary.  ``measurement_started`` fires once per charged
#: attempt (so retries are visible), ``measurement_failed`` once per
#: failed attempt, ``measurement_finished`` once per successful
#: observation, ``vm_quarantined`` once per VM the circuit breaker trips
#: on, ``surrogate_fitted`` once per acquisition round, and
#: ``stopping_rule_fired`` once, when an early-stopping criterion ends
#: the search (detail carries the rule name and threshold), and
#: ``cell_retried`` when the parallel engine's supervisor had to retry
#: the whole cell this result came from (a worker-side failure preceded
#: it; the mirror makes the retry visible in the persisted record).
#: Batched searches (``batch_size > 1``) additionally emit
#: ``batch_suggested`` once per round, when the acquisition picks its
#: q-point batch (detail carries the picked VM names in pick order), and
#: ``batch_measured`` once the round's measurements are committed
#: (detail carries the success count); the per-measurement lifecycle
#: events between them are replayed in catalog-index order.
#: Spot-priced searches additionally emit ``spot_revoked`` once per
#: market revocation (detail carries the fraction completed and the
#: partial charge billed at the spot price) and ``fallback_to_ondemand``
#: once per observation whose retry ladder exhausted its spot patience
#: and switched the remaining attempts to guaranteed on-demand capacity.
EVENT_KINDS: tuple[str, ...] = (
    "measurement_started",
    "measurement_finished",
    "measurement_failed",
    "vm_quarantined",
    "surrogate_fitted",
    "stopping_rule_fired",
    "cell_retried",
    "batch_suggested",
    "batch_measured",
    "spot_revoked",
    "fallback_to_ondemand",
)


@dataclass(frozen=True, slots=True)
class SearchEvent:
    """One entry in a search's event stream.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        step: the 1-based step the search was working towards when the
            event fired (successful observations so far + 1; for
            ``surrogate_fitted`` this is the step the fit will choose).
        vm_name: the VM involved, when the event concerns one.
        detail: free-form context — attempt number, error text,
            measured value, candidate count.
    """

    kind: str
    step: int
    vm_name: str | None = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; known: {EVENT_KINDS}"
            )
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")
