"""Naive BO — the CherryPick baseline.

Gaussian Process surrogate over the four encoded VM characteristics with
a Matérn 5/2 kernel (CherryPick's choice; any of the paper's four kernels
can be substituted, which is how Figure 7 studies kernel fragility) and
Expected Improvement acquisition.

The surrogate sees *only* the published instance space — no low-level
information — which is the insufficiency the paper demonstrates.
"""

from __future__ import annotations

import numpy as np

from repro.core.acquisition import (
    expected_improvement,
    liar_value,
    lower_confidence_bound,
    max_value_entropy_search,
    probability_of_improvement,
)
from repro.core.smbo import AcquisitionScores, SequentialOptimizer
from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import DesignGeometry, Kernel, Matern52
from repro.ml.scaling import StandardScaler

#: Acquisition functions a GP surrogate can drive.  Section III-A lists
#: PI, EI and GP-UCB as the common choices (EI is CherryPick's) and
#: points to entropy-search methods — here max-value entropy search — as
#: promising alternatives.
GP_ACQUISITIONS = ("ei", "pi", "lcb", "mes")


class GPScorer:
    """Fits a GP on measured (encoded VM, objective) pairs and scores an
    acquisition function (Expected Improvement by default).

    Factored out of :class:`NaiveBO` so :class:`~repro.core.hybrid_bo.HybridBO`
    can reuse it verbatim for its early phase.

    The scorer is incremental across BO steps: the pairwise distance
    geometry of the scaled design is tracked by a
    :class:`~repro.ml.kernels.DesignGeometry` that appends one column
    per new measurement, so both the hyperparameter fit and the
    cross-covariance block of the predict reuse cached distances
    instead of recomputing them every step.

    Args:
        design_matrix: full encoded instance space (scaling is fitted on
            it once, so feature scales don't drift as measurements arrive).
        kernel: GP covariance function (cloned per fit).
        acquisition: ``"ei"`` (default), ``"pi"`` or ``"lcb"``.
        seed: seed for the GP's hyperparameter restarts.
        gradient: likelihood-gradient mode for the GP —
            ``"analytic"`` (fused one-Cholesky value+gradient, default)
            or ``"numeric"`` (finite differences, the legacy path).
    """

    def __init__(
        self,
        design_matrix: np.ndarray,
        kernel: Kernel | None = None,
        acquisition: str = "ei",
        seed: int | None = None,
        gradient: str = "analytic",
    ) -> None:
        if acquisition not in GP_ACQUISITIONS:
            raise ValueError(
                f"unknown acquisition {acquisition!r}; known: {GP_ACQUISITIONS}"
            )
        self.acquisition = acquisition
        self._design = np.asarray(design_matrix, dtype=float)
        self._scaler = StandardScaler().fit(self._design)
        self._scaled_design = self._scaler.transform(self._design)
        self._rng = np.random.default_rng(seed)
        self._geometry = DesignGeometry(self._scaled_design)
        # One persistent GP: successive fits warm-start the likelihood
        # optimisation from the previous step's hyperparameters, which
        # keeps per-step cost low without losing adaptivity.
        self._gp = GaussianProcessRegressor(
            kernel=kernel if kernel is not None else Matern52(),
            n_restarts=0,
            seed=int(self._rng.integers(2**31)),
            gradient=gradient,
        )

    @property
    def gp(self) -> GaussianProcessRegressor:
        """The underlying GP (exposes fit/eval instrumentation counters)."""
        return self._gp

    @property
    def geometry_stats(self) -> dict[str, int]:
        """Incremental-geometry counters: columns appended vs restarts."""
        return {
            "extensions": self._geometry.extensions,
            "rebuilds": self._geometry.rebuilds,
        }

    @property
    def stackable(self) -> bool:
        """Whether a cross-search driver can batch this scorer's round.

        The stacked GP path (:func:`repro.ml.gp.fit_gps_stacked`) and
        the stacked acquisition
        (:func:`repro.core.acquisition.expected_improvement_stacked`)
        reproduce the analytic-gradient EI round bit for bit; the other
        acquisitions (PI/LCB/MES — MES draws from the scorer RNG) and
        the numeric-gradient path fall back to the per-search loop.
        """
        return self.acquisition == "ei" and self._gp.gradient == "analytic"

    def fit_inputs(
        self, measured: list[int], values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, object]:
        """This round's GP training inputs ``(X, y, fit geometry)``.

        What the analytic branch of :meth:`score` hands to ``gp.fit`` —
        exposed so a cross-search driver can fit many scorers' GPs in
        one stacked call (:func:`repro.ml.gp.fit_gps_stacked`).
        """
        return (
            self._scaled_design[measured],
            values,
            self._geometry.fit_geometry(measured),
        )

    def posterior(
        self, measured: list[int], unmeasured: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Candidate posterior ``(mean, std)`` from the already-fitted GP."""
        return self._gp.predict(
            self._scaled_design[unmeasured],
            return_std=True,
            geometry=self._geometry.cross_geometry(unmeasured, measured),
        )

    def score(
        self, measured: list[int], values: np.ndarray, unmeasured: list[int]
    ) -> AcquisitionScores:
        """Fit on the measured rows and return EI scores for the rest."""
        gp = self._gp
        if gp.gradient == "analytic":
            # Reuse the incrementally grown distance geometry for both
            # the fit and the cross-covariance block of the predict.
            X, y, geometry = self.fit_inputs(measured, values)
            gp.fit(X, y, geometry=geometry)
            mean, std = self.posterior(measured, unmeasured)
        else:
            # Numeric mode preserves the legacy behaviour bit for bit.
            gp.fit(self._scaled_design[measured], values)
            mean, std = gp.predict(self._scaled_design[unmeasured], return_std=True)
        scores, ei = self._scores_from_posterior(mean, std, float(values.min()))
        return AcquisitionScores(scores=scores, predicted=mean, expected_improvements=ei)

    def _scores_from_posterior(
        self, mean: np.ndarray, std: np.ndarray, incumbent: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Acquisition scores (and EI) from one posterior over candidates."""
        ei = expected_improvement(mean, std, incumbent)
        if self.acquisition == "ei":
            scores = ei
        elif self.acquisition == "pi":
            scores = probability_of_improvement(mean, std, incumbent)
        elif self.acquisition == "lcb":
            scores = lower_confidence_bound(mean, std)
        else:
            scores = max_value_entropy_search(mean, std, self._rng)
        return scores, ei

    def suggest_batch(
        self,
        measured: list[int],
        values: np.ndarray,
        unmeasured: list[int],
        q: int,
        liar: str = "min",
    ) -> tuple[AcquisitionScores, list[int]]:
        """Constant-liar q-point suggestion (Ginsbourger et al.).

        The first pick is the plain acquisition argmax — bit-identical
        to :meth:`score` (q=1 returns before any fantasy work).  Each
        further pick fantasizes the previous one at the liar value and
        re-conditions the GP on *warm* hyperparameters (``optimise`` is
        suspended, so no likelihood refit per fantasy); the analytic
        path rescores the shrinking candidate set through the same
        incremental distance geometry as :meth:`score`, appending one
        fantasy column per pick instead of rebuilding distances.
        """
        acquisition = self.score(measured, values, unmeasured)
        picked = [unmeasured[int(np.argmax(acquisition.scores))]]
        if q <= 1 or len(unmeasured) <= 1:
            return acquisition, picked
        gp = self._gp
        lie = liar_value(values, liar)
        fant_measured = list(measured)
        fant_values = np.asarray(values, dtype=float).ravel()
        remaining = [i for i in unmeasured if i != picked[0]]
        saved_optimise = gp.optimise
        gp.optimise = False
        try:
            while len(picked) < q and remaining:
                fant_measured.append(picked[-1])
                fant_values = np.append(fant_values, lie)
                if gp.gradient == "analytic":
                    gp.fit(
                        self._scaled_design[fant_measured],
                        fant_values,
                        geometry=self._geometry.fit_geometry(fant_measured),
                    )
                    mean, std = gp.predict(
                        self._scaled_design[remaining],
                        return_std=True,
                        geometry=self._geometry.cross_geometry(
                            remaining, fant_measured
                        ),
                    )
                else:
                    gp.fit(self._scaled_design[fant_measured], fant_values)
                    mean, std = gp.predict(
                        self._scaled_design[remaining], return_std=True
                    )
                scores, _ = self._scores_from_posterior(
                    mean, std, float(fant_values.min())
                )
                picked.append(remaining.pop(int(np.argmax(scores))))
        finally:
            gp.optimise = saved_optimise
        return acquisition, picked


class NaiveBO(SequentialOptimizer):
    """CherryPick-style Bayesian optimisation (the paper's baseline).

    Args:
        kernel: covariance function; defaults to Matérn 5/2.
        acquisition: ``"ei"`` (CherryPick's choice, default), ``"pi"`` or
            ``"lcb"``.
        gp_gradient: ``"analytic"`` (fused value+gradient likelihood
            fits, default) or ``"numeric"`` (legacy finite differences).
        **kwargs: forwarded to :class:`SequentialOptimizer`.
    """

    name = "naive-bo"

    def __init__(
        self,
        *args,
        kernel: Kernel | None = None,
        acquisition: str = "ei",
        gp_gradient: str = "analytic",
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._scorer = GPScorer(
            self.design_matrix,
            kernel=kernel,
            acquisition=acquisition,
            seed=int(self._rng.integers(2**31)),
            gradient=gp_gradient,
        )

    def _score_candidates(self, unmeasured: list[int]) -> AcquisitionScores:
        return self._scorer.score(self.measured_indices, self.measured_values, unmeasured)

    def _round_scorer(self) -> GPScorer:
        return self._scorer

    def _suggest_batch(
        self, unmeasured: list[int], q: int
    ) -> tuple[AcquisitionScores, list[int]]:
        return self._scorer.suggest_batch(
            self.measured_indices, self.measured_values, unmeasured, q, self.liar
        )
