"""Hybrid BO — Naive early, Augmented late (paper Section V-B).

Augmented BO has a "slow start": with only the initial design measured,
its pairwise training set is tiny and over-parameterised, so for the
first few acquisitions the GP over plain instance features does better.
The paper sketches (and plots as the blue "Hybrid BO" curve) a method
that combines the best of both: use Naive BO's GP + EI while few VMs are
measured, then switch to the low-level augmented surrogate once enough
low-level observations have accumulated.
"""

from __future__ import annotations

from repro.core.augmented_bo import DEFAULT_N_ESTIMATORS, PairwiseTreeScorer
from repro.core.naive_bo import GPScorer
from repro.core.smbo import AcquisitionScores, SequentialOptimizer
from repro.ml.kernels import Kernel

#: Switch to the augmented surrogate once this many VMs are measured.
DEFAULT_SWITCH_AT = 5


class HybridBO(SequentialOptimizer):
    """GP + EI until ``switch_at`` measurements, then the augmented surrogate.

    Args:
        switch_at: measurement count at which to switch surrogates.
        kernel: kernel for the early-phase GP (default Matérn 5/2).
        n_estimators: ensemble size for the late-phase Extra-Trees.
        refit_fraction: warm-start refit knob for the late-phase
            surrogate; see :class:`~repro.core.augmented_bo.PairwiseTreeScorer`.
        tree_builder: tree-growth strategy for the late-phase surrogate;
            see :class:`~repro.core.augmented_bo.PairwiseTreeScorer`.
        query_mode: candidate-row assembly mode for the late-phase
            surrogate; see :class:`~repro.core.augmented_bo.PairwiseTreeScorer`.
        gp_gradient: likelihood-gradient mode for the early-phase GP —
            ``"analytic"`` (default) or ``"numeric"``; see
            :class:`~repro.core.naive_bo.GPScorer`.
        **kwargs: forwarded to :class:`SequentialOptimizer`.
    """

    name = "hybrid-bo"

    def __init__(
        self,
        *args,
        switch_at: int = DEFAULT_SWITCH_AT,
        kernel: Kernel | None = None,
        n_estimators: int = DEFAULT_N_ESTIMATORS,
        refit_fraction: float = 1.0,
        tree_builder: str = "vectorized",
        query_mode: str = "incremental",
        gp_gradient: str = "analytic",
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if switch_at < 1:
            raise ValueError(f"switch_at must be at least 1, got {switch_at}")
        self.switch_at = switch_at
        self._gp_scorer = GPScorer(
            self.design_matrix,
            kernel=kernel,
            seed=int(self._rng.integers(2**31)),
            gradient=gp_gradient,
        )
        self._tree_scorer = PairwiseTreeScorer(
            self.design_matrix,
            n_estimators=n_estimators,
            seed=int(self._rng.integers(2**31)),
            refit_fraction=refit_fraction,
            tree_builder=tree_builder,
            query_mode=query_mode,
        )

    def _round_scorer(self) -> GPScorer | PairwiseTreeScorer:
        if len(self.measured_indices) < self.switch_at:
            return self._gp_scorer
        return self._tree_scorer

    def _score_candidates(self, unmeasured: list[int]) -> AcquisitionScores:
        if len(self.measured_indices) < self.switch_at:
            return self._gp_scorer.score(
                self.measured_indices, self.measured_values, unmeasured
            )
        return self._tree_scorer.score(
            self.measured_indices,
            self.measured_values,
            self.measured_measurements,
            unmeasured,
        )

    def _suggest_batch(
        self, unmeasured: list[int], q: int
    ) -> tuple[AcquisitionScores, list[int]]:
        # Early phase batches like Naive BO (constant-liar q-EI); the
        # late-phase tree surrogate batches via the base top-q
        # prediction delta (one batched ensemble predict, q argmins).
        if len(self.measured_indices) < self.switch_at:
            return self._gp_scorer.suggest_batch(
                self.measured_indices, self.measured_values, unmeasured, q, self.liar
            )
        return super()._suggest_batch(unmeasured, q)
