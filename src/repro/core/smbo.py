"""Sequential model-based optimisation — Algorithm 1 of the paper.

The loop is shared by every optimiser in this package:

1. measure an initial quasi-random sample of distinct VMs,
2. fit a surrogate on everything measured so far and score the
   unmeasured VMs with an acquisition function (subclass hook),
3. stop if the stopping criterion fires, otherwise measure the
   highest-scoring VM and repeat.

The instance space is finite (18 VMs), so optimisers never re-measure a
VM and a search that exhausts the catalog ends with ``"exhausted"``.
Search cost is the number of charged measurements, initial samples
included — the paper's accounting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.cloud.encoding import InstanceEncoder
from repro.core.objectives import Objective
from repro.core.result import SearchResult, SearchStep
from repro.core.stopping import SearchState, StoppingCriterion
from repro.ml.sampling import quasi_random_distinct
from repro.simulator.cluster import Measurement, MeasurementEnvironment

#: CherryPick's initial-design size, used by default throughout the paper.
DEFAULT_N_INITIAL = 3


class MeasurementError(RuntimeError):
    """A measurement failed even after the configured retries."""


@dataclass(frozen=True, slots=True)
class AcquisitionScores:
    """A subclass's verdict on the unmeasured candidates.

    Attributes:
        scores: one score per unmeasured candidate; the highest is
            measured next.
        predicted: surrogate point predictions for the same candidates
            (``None`` when the optimiser has no surrogate).
        expected_improvements: EI values for the same candidates
            (``None`` when the acquisition is not EI-based).
    """

    scores: np.ndarray
    predicted: np.ndarray | None = None
    expected_improvements: np.ndarray | None = None


class SequentialOptimizer(abc.ABC):
    """Base class implementing the SMBO loop over a finite VM catalog.

    Args:
        environment: where measurements come from (simulator or trace).
        objective: what to minimise.
        n_initial: size of the quasi-random initial design.
        stopping: optional early-stopping criterion.
        max_measurements: optional hard measurement budget.
        seed: seed for the initial design and any surrogate randomness.
        initial_design: explicit catalog indices to measure first instead
            of the quasi-random design (the Section III-C sensitivity
            experiments fix these).
        measure_retries: how many times a failed (raising) measurement is
            retried before the search aborts with
            :class:`MeasurementError`.  Cloud measurements do fail —
            spot interruptions, provisioning errors — and a search tool
            must survive transient ones.  Each retry is charged like any
            other measurement (the cloud billed it).
    """

    #: Display name; subclasses override.
    name = "smbo"

    def __init__(
        self,
        environment: MeasurementEnvironment,
        objective: Objective = Objective.TIME,
        n_initial: int = DEFAULT_N_INITIAL,
        stopping: StoppingCriterion | None = None,
        max_measurements: int | None = None,
        seed: int | None = None,
        initial_design: list[int] | None = None,
        measure_retries: int = 0,
    ) -> None:
        if n_initial < 1:
            raise ValueError(f"n_initial must be at least 1, got {n_initial}")
        if max_measurements is not None and max_measurements < n_initial:
            raise ValueError("max_measurements must be at least n_initial")
        if measure_retries < 0:
            raise ValueError(f"measure_retries must be >= 0, got {measure_retries}")
        self.measure_retries = measure_retries
        self.initial_design = list(initial_design) if initial_design is not None else None
        self._env = environment
        self.objective = objective
        self.n_initial = n_initial
        self.stopping = stopping
        self.max_measurements = max_measurements
        self._rng = np.random.default_rng(seed)
        # The initial design gets its own stream, split off before any
        # subclass draws: optimisers with the same seed then share the
        # same initial design regardless of how many surrogate seeds they
        # consume (Hybrid BO's early phase must match Naive BO's exactly).
        self._init_rng = np.random.default_rng(self._rng.integers(2**31))
        self._encoder = InstanceEncoder(tuple(environment.catalog))
        self._design = self._encoder.encode_all()
        self._observations: list[tuple[int, Measurement, float]] = []

    # -- state exposed to subclasses ----------------------------------------

    @property
    def design_matrix(self) -> np.ndarray:
        """The full encoded instance space, one row per catalog VM."""
        return self._design

    @property
    def measured_indices(self) -> list[int]:
        """Catalog indices measured so far, in measurement order."""
        return [index for index, _, _ in self._observations]

    @property
    def measured_values(self) -> np.ndarray:
        """Objective values measured so far, aligned with indices."""
        return np.array([value for _, _, value in self._observations])

    @property
    def measured_measurements(self) -> list[Measurement]:
        """Full measurements so far (low-level metrics included)."""
        return [measurement for _, measurement, _ in self._observations]

    @property
    def best_observed(self) -> float:
        """Incumbent objective value.

        Raises:
            RuntimeError: before any measurement.
        """
        if not self._observations:
            raise RuntimeError("no measurements yet")
        return float(min(value for _, _, value in self._observations))

    # -- subclass hooks ------------------------------------------------------

    @abc.abstractmethod
    def _score_candidates(self, unmeasured: list[int]) -> AcquisitionScores:
        """Fit the surrogate and score the ``unmeasured`` catalog indices."""

    def _initial_indices(self) -> list[int]:
        """Catalog indices of the initial design (quasi-random distinct)."""
        if self.initial_design is not None:
            return list(self.initial_design)
        n = min(self.n_initial, len(self._env.catalog))
        return quasi_random_distinct(self._design, n, self._init_rng)

    # -- the loop ------------------------------------------------------------

    def _observe(self, index: int) -> None:
        vm = self._env.catalog[index]
        last_error: Exception | None = None
        for _ in range(self.measure_retries + 1):
            try:
                measurement = self._env.measure(vm)
            except Exception as error:  # noqa: BLE001 - cloud errors are diverse
                last_error = error
                continue
            value = self.objective.value_of(measurement)
            self._observations.append((index, measurement, value))
            return
        raise MeasurementError(
            f"measuring {vm.name} failed after {self.measure_retries + 1} attempts"
        ) from last_error

    def run(self, initial_vms: list[int] | None = None) -> SearchResult:
        """Execute the search and return its full trace.

        Args:
            initial_vms: override the initial design with explicit
                catalog indices (used by the initial-point sensitivity
                experiments of Section III-C).
        """
        self._env.reset()
        self._observations = []
        n_vms = len(self._env.catalog)

        initial = initial_vms if initial_vms is not None else self._initial_indices()
        if not initial:
            raise ValueError("initial design must contain at least one VM")
        if len(set(initial)) != len(initial):
            raise ValueError("initial design must not repeat VMs")
        budget = self.max_measurements if self.max_measurements is not None else n_vms
        for index in initial[:budget]:
            self._observe(index)

        stopped_by = "exhausted"
        while len(self._observations) < n_vms:
            if len(self._observations) >= budget:
                stopped_by = "budget"
                break
            measured = set(self.measured_indices)
            unmeasured = [i for i in range(n_vms) if i not in measured]
            acquisition = self._score_candidates(unmeasured)
            if acquisition.scores.shape != (len(unmeasured),):
                raise RuntimeError(
                    f"{self.name}: expected {len(unmeasured)} scores, "
                    f"got shape {acquisition.scores.shape}"
                )
            if self.stopping is not None and self.stopping.should_stop(
                SearchState(
                    measurement_count=len(self._observations),
                    best_observed=self.best_observed,
                    predicted=acquisition.predicted,
                    expected_improvements=acquisition.expected_improvements,
                )
            ):
                stopped_by = "criterion"
                break
            self._observe(unmeasured[int(np.argmax(acquisition.scores))])

        return self._build_result(stopped_by)

    def _build_result(self, stopped_by: str) -> SearchResult:
        steps = []
        best = np.inf
        for step, (index, _, value) in enumerate(self._observations, start=1):
            best = min(best, value)
            steps.append(
                SearchStep(
                    step=step,
                    vm_name=self._env.catalog[index].name,
                    objective_value=value,
                    best_value=best,
                )
            )
        workload = getattr(self._env, "workload", None)
        return SearchResult(
            optimizer=self.name,
            objective=self.objective,
            workload_id=workload.workload_id if workload is not None else None,
            steps=tuple(steps),
            stopped_by=stopped_by,
        )
