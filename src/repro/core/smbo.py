"""Sequential model-based optimisation — Algorithm 1 of the paper.

The loop is shared by every optimiser in this package:

1. measure an initial quasi-random sample of distinct VMs,
2. fit a surrogate on everything measured so far and score the
   unmeasured VMs with an acquisition function (subclass hook),
3. stop if the stopping criterion fires, otherwise measure the
   highest-scoring VM and repeat.

The instance space is finite (18 VMs), so optimisers never re-measure a
VM and a search that measures every reachable VM ends with
``"exhausted"``.  Search cost is the number of charged measurements,
initial samples and *failed attempts* included — the cloud bills a run
that a spot reclamation killed — which is the paper's accounting
extended honestly to faulty clouds.

Fault tolerance: measurements may raise (spot interruptions,
provisioning errors) or return corrupted values (NaN / non-positive
time).  Each observation is retried under a
:class:`~repro.faults.retry.RetryPolicy` (exponential backoff, seeded
jitter), and a per-VM :class:`~repro.faults.retry.CircuitBreaker`
quarantines a VM after repeated failures so the search continues over
the remaining catalog instead of aborting.  :class:`MeasurementError`
is raised only when *nothing* could be measured at all.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.cloud.encoding import InstanceEncoder
from repro.core.events import SearchEvent
from repro.core.objectives import Objective
from repro.core.result import FailureEvent, SearchResult, SearchStep
from repro.core.stopping import SearchState, StoppingCriterion
from repro.faults.models import CorruptedMeasurementError
from repro.faults.retry import CircuitBreaker, RetryPolicy
from repro.ml.sampling import quasi_random_distinct
from repro.simulator.cluster import Measurement, MeasurementEnvironment

#: CherryPick's initial-design size, used by default throughout the paper.
DEFAULT_N_INITIAL = 3


class MeasurementError(RuntimeError):
    """No measurement could be obtained at all (every VM failed)."""


@dataclass(frozen=True, slots=True)
class AcquisitionScores:
    """A subclass's verdict on the unmeasured candidates.

    Attributes:
        scores: one score per unmeasured candidate; the highest is
            measured next.
        predicted: surrogate point predictions for the same candidates
            (``None`` when the optimiser has no surrogate).
        expected_improvements: EI values for the same candidates
            (``None`` when the acquisition is not EI-based).
    """

    scores: np.ndarray
    predicted: np.ndarray | None = None
    expected_improvements: np.ndarray | None = None


class SequentialOptimizer(abc.ABC):
    """Base class implementing the SMBO loop over a finite VM catalog.

    Args:
        environment: where measurements come from (simulator or trace).
        objective: what to minimise.
        n_initial: size of the quasi-random initial design.
        stopping: optional early-stopping criterion.
        max_measurements: optional hard budget on *charged attempts*
            (failed ones included).
        seed: seed for the initial design, retry jitter, and any
            surrogate randomness.
        initial_design: explicit catalog indices to measure first instead
            of the quasi-random design (the Section III-C sensitivity
            experiments fix these).
        measure_retries: legacy retry counter; shorthand for
            ``retry_policy=RetryPolicy(max_attempts=measure_retries + 1)``.
        retry_policy: full retry behaviour (attempts, backoff, jitter);
            overrides ``measure_retries`` when given.  Each attempt is
            charged like any other measurement (the cloud billed it).
        quarantine_after: consecutive failures after which a VM is
            quarantined for the rest of the search.
    """

    #: Display name; subclasses override.
    name = "smbo"

    def __init__(
        self,
        environment: MeasurementEnvironment,
        objective: Objective = Objective.TIME,
        n_initial: int = DEFAULT_N_INITIAL,
        stopping: StoppingCriterion | None = None,
        max_measurements: int | None = None,
        seed: int | None = None,
        initial_design: list[int] | None = None,
        measure_retries: int = 0,
        retry_policy: RetryPolicy | None = None,
        quarantine_after: int = 3,
    ) -> None:
        if n_initial < 1:
            raise ValueError(f"n_initial must be at least 1, got {n_initial}")
        if max_measurements is not None and max_measurements < n_initial:
            raise ValueError("max_measurements must be at least n_initial")
        if measure_retries < 0:
            raise ValueError(f"measure_retries must be >= 0, got {measure_retries}")
        self.measure_retries = measure_retries
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy.from_retries(measure_retries)
        )
        self.quarantine_after = quarantine_after  # CircuitBreaker validates
        self.initial_design = list(initial_design) if initial_design is not None else None
        self._env = environment
        self.objective = objective
        self.n_initial = n_initial
        self.stopping = stopping
        self.max_measurements = max_measurements
        self._rng = np.random.default_rng(seed)
        # The initial design gets its own stream, split off before any
        # subclass draws: optimisers with the same seed then share the
        # same initial design regardless of how many surrogate seeds they
        # consume (Hybrid BO's early phase must match Naive BO's exactly).
        # The retry-jitter stream derives from the same draw (not a second
        # one) so adding it did not shift any pre-existing seeded stream.
        stream_seed = int(self._rng.integers(2**31))
        self._init_rng = np.random.default_rng(stream_seed)
        self._stream_seed = stream_seed
        self._encoder = InstanceEncoder(tuple(environment.catalog))
        self._design = self._encoder.encode_all()
        self._observations: list[tuple[int, Measurement, float, int]] = []
        self._failure_events: list[FailureEvent] = []
        self._events: list[SearchEvent] = []
        self._failed_charges = 0
        self._retry_wait_s = 0.0
        self._breaker = CircuitBreaker(self.quarantine_after)
        self._retry_rng = np.random.default_rng([self._stream_seed, 1])

    # -- state exposed to subclasses ----------------------------------------

    @property
    def design_matrix(self) -> np.ndarray:
        """The full encoded instance space, one row per catalog VM."""
        return self._design

    @property
    def measured_indices(self) -> list[int]:
        """Catalog indices measured so far, in measurement order."""
        return [index for index, _, _, _ in self._observations]

    @property
    def measured_values(self) -> np.ndarray:
        """Objective values measured so far, aligned with indices."""
        return np.array([value for _, _, value, _ in self._observations])

    @property
    def measured_measurements(self) -> list[Measurement]:
        """Full measurements so far (low-level metrics included)."""
        return [measurement for _, measurement, _, _ in self._observations]

    @property
    def quarantined_vm_names(self) -> frozenset[str]:
        """VM types quarantined by the circuit breaker so far."""
        return self._breaker.quarantined

    @property
    def best_observed(self) -> float:
        """Incumbent objective value.

        Raises:
            RuntimeError: before any measurement.
        """
        if not self._observations:
            raise RuntimeError("no measurements yet")
        return float(min(value for _, _, value, _ in self._observations))

    # -- subclass hooks ------------------------------------------------------

    @abc.abstractmethod
    def _score_candidates(self, unmeasured: list[int]) -> AcquisitionScores:
        """Fit the surrogate and score the ``unmeasured`` catalog indices."""

    def _initial_indices(self) -> list[int]:
        """Catalog indices of the initial design (quasi-random distinct)."""
        if self.initial_design is not None:
            return list(self.initial_design)
        n = min(self.n_initial, len(self._env.catalog))
        return quasi_random_distinct(self._design, n, self._init_rng)

    # -- the loop ------------------------------------------------------------

    def _charged(self) -> int:
        """Charged attempts so far: successful observations + failures."""
        return len(self._observations) + self._failed_charges

    def _budget_exhausted(self) -> bool:
        return (
            self.max_measurements is not None
            and self._charged() >= self.max_measurements
        )

    def _observe(self, index: int) -> bool:
        """Try to measure one VM under the retry policy.

        Every attempt — failed or not — is charged.  Returns True on a
        successful observation; False when the attempts were exhausted,
        the VM got quarantined, or the budget ran out mid-retry.
        """
        vm = self._env.catalog[index]
        policy = self.retry_policy
        step = len(self._observations) + 1
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self._retry_wait_s += policy.wait(attempt - 1, self._retry_rng)
            self._events.append(
                SearchEvent(
                    kind="measurement_started",
                    step=step,
                    vm_name=vm.name,
                    detail=f"attempt {attempt}",
                )
            )
            try:
                measurement = self._env.measure(vm)
                value = self.objective.value_of(measurement)
                if not np.isfinite(value) or value <= 0.0:
                    raise CorruptedMeasurementError(
                        f"{vm.name} returned unusable {self.objective.value} "
                        f"value {value!r}"
                    )
            except Exception as error:  # noqa: BLE001 - cloud errors are diverse
                self._failed_charges += 1
                error_text = f"{type(error).__name__}: {error}"
                self._failure_events.append(
                    FailureEvent(
                        step=step,
                        vm_name=vm.name,
                        attempt=attempt,
                        error=error_text,
                    )
                )
                self._events.append(
                    SearchEvent(
                        kind="measurement_failed",
                        step=step,
                        vm_name=vm.name,
                        detail=error_text,
                    )
                )
                if self._breaker.record_failure(vm.name):
                    self._events.append(
                        SearchEvent(
                            kind="vm_quarantined",
                            step=step,
                            vm_name=vm.name,
                            detail=f"after {attempt} failed attempts this round",
                        )
                    )
                    return False
                if self._budget_exhausted():
                    return False
                continue
            self._breaker.record_success(vm.name)
            self._observations.append((index, measurement, value, attempt))
            self._events.append(
                SearchEvent(
                    kind="measurement_finished",
                    step=step,
                    vm_name=vm.name,
                    detail=f"{self.objective.value}={value!r}",
                )
            )
            return True
        return False

    def _reachable_unmeasured(self) -> list[int]:
        """Unmeasured catalog indices whose VM is not quarantined."""
        measured = set(self.measured_indices)
        return [
            i
            for i, vm in enumerate(self._env.catalog)
            if i not in measured and not self._breaker.is_quarantined(vm.name)
        ]

    def run(self, initial_vms: list[int] | None = None) -> SearchResult:
        """Execute the search and return its full trace.

        Args:
            initial_vms: override the initial design with explicit
                catalog indices (used by the initial-point sensitivity
                experiments of Section III-C).

        Raises:
            MeasurementError: if not even one VM could be measured.
        """
        self._env.reset()
        self._observations = []
        self._failure_events = []
        self._events = []
        self._failed_charges = 0
        self._retry_wait_s = 0.0
        self._breaker = CircuitBreaker(self.quarantine_after)
        self._retry_rng = np.random.default_rng([self._stream_seed, 1])

        initial = initial_vms if initial_vms is not None else self._initial_indices()
        if not initial:
            raise ValueError("initial design must contain at least one VM")
        if len(set(initial)) != len(initial):
            raise ValueError("initial design must not repeat VMs")
        if self.max_measurements is not None:
            initial = initial[: self.max_measurements]
        for index in initial:
            if self._budget_exhausted():
                break
            self._observe(index)
        # If every initial VM failed, fall back to the remaining reachable
        # catalog (in order) so one bad initial design cannot kill the
        # search while measurable VMs exist.
        while not self._observations and not self._budget_exhausted():
            candidates = self._reachable_unmeasured()
            if not candidates:
                break
            self._observe(candidates[0])
        if not self._observations:
            raise MeasurementError(
                "no initial measurement succeeded "
                f"({self._failed_charges} charged attempts; "
                f"quarantined: {sorted(self._breaker.quarantined)})"
            )

        stopped_by = "exhausted"
        while True:
            candidates = self._reachable_unmeasured()
            if not candidates:
                stopped_by = "exhausted"
                break
            if self._budget_exhausted():
                stopped_by = "budget"
                break
            acquisition = self._score_candidates(candidates)
            self._events.append(
                SearchEvent(
                    kind="surrogate_fitted",
                    step=len(self._observations) + 1,
                    detail=f"scored {len(candidates)} candidates",
                )
            )
            if acquisition.scores.shape != (len(candidates),):
                raise RuntimeError(
                    f"{self.name}: expected {len(candidates)} scores, "
                    f"got shape {acquisition.scores.shape}"
                )
            if self.stopping is not None and self.stopping.should_stop(
                SearchState(
                    measurement_count=len(self._observations),
                    best_observed=self.best_observed,
                    predicted=acquisition.predicted,
                    expected_improvements=acquisition.expected_improvements,
                )
            ):
                self._events.append(
                    SearchEvent(
                        kind="stopping_rule_fired",
                        step=len(self._observations) + 1,
                        detail=self.stopping.describe(),
                    )
                )
                stopped_by = "criterion"
                break
            self._observe(candidates[int(np.argmax(acquisition.scores))])

        return self._build_result(stopped_by)

    def _build_result(self, stopped_by: str) -> SearchResult:
        steps = []
        best = np.inf
        for step, (index, _, value, attempts) in enumerate(self._observations, start=1):
            best = min(best, value)
            steps.append(
                SearchStep(
                    step=step,
                    vm_name=self._env.catalog[index].name,
                    objective_value=value,
                    best_value=best,
                    attempts=attempts,
                )
            )
        workload = getattr(self._env, "workload", None)
        return SearchResult(
            optimizer=self.name,
            objective=self.objective,
            workload_id=workload.workload_id if workload is not None else None,
            steps=tuple(steps),
            stopped_by=stopped_by,
            quarantined_vms=tuple(sorted(self._breaker.quarantined)),
            failure_events=tuple(self._failure_events),
            retry_wait_s=self._retry_wait_s,
            events=tuple(self._events),
        )
