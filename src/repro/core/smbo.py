"""Sequential model-based optimisation — Algorithm 1 of the paper.

The loop is shared by every optimiser in this package:

1. measure an initial quasi-random sample of distinct VMs,
2. fit a surrogate on everything measured so far and score the
   unmeasured VMs with an acquisition function (subclass hook),
3. stop if the stopping criterion fires, otherwise measure the
   highest-scoring VM and repeat.

The instance space is finite (the environment's catalog — the paper's
18 VMs by default, hundreds for the generated large catalogs), so
optimisers never re-measure a
VM and a search that measures every reachable VM ends with
``"exhausted"``.  Search cost is the number of charged measurements,
initial samples and *failed attempts* included — the cloud bills a run
that a spot reclamation killed — which is the paper's accounting
extended honestly to faulty clouds.

Fault tolerance: measurements may raise (spot interruptions,
provisioning errors) or return corrupted values (NaN / non-positive
time).  Each observation is retried under a
:class:`~repro.faults.retry.RetryPolicy` (exponential backoff, seeded
jitter), and a per-VM :class:`~repro.faults.retry.CircuitBreaker`
quarantines a VM after repeated failures so the search continues over
the remaining catalog instead of aborting.  :class:`MeasurementError`
is raised only when *nothing* could be measured at all.

Batched suggestions (``batch_size=q > 1``): each round the optimiser
asks its :meth:`SequentialOptimizer._suggest_batch` hook for ``q``
distinct candidates (constant-liar q-EI on GP scorers, top-q prediction
delta by default), measures them — concurrently, when a measurement
fan-out is injected — and commits the outcomes in catalog-index order.
Every batch measurement draws its randomness from the spawn key
``(search stream seed, 2, iteration, catalog index)``, so results and
fault-injection streams are independent of completion order and worker
count.  ``batch_size=1`` takes the literally unchanged sequential path
and is bit-identical to it.

Two accounting edges are inherent to batching and documented rather
than hidden: the charge budget is capped *before* a batch launches (one
charge reserved per pick), so in-batch retries can overshoot
``max_measurements`` by at most ``q * (max_attempts - 1)`` charges
where the serial loop would have stopped mid-retry; and a VM that the
commit quarantines has already run (and been billed for) its full retry
schedule, where the serial loop would have abandoned the remaining
attempts.
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.cloud.encoding import InstanceEncoder
from repro.core.acquisition import LIAR_STRATEGIES, top_q_indices
from repro.core.events import SearchEvent
from repro.core.objectives import Objective
from repro.core.result import FailureEvent, SearchResult, SearchStep
from repro.core.stopping import SearchState, StoppingCriterion
from repro.faults.models import CorruptedMeasurementError
from repro.faults.retry import CircuitBreaker, RetryPolicy
from repro.ml.sampling import quasi_random_distinct
from repro.simulator.cluster import Measurement, MeasurementEnvironment

#: CherryPick's initial-design size, used by default throughout the paper.
DEFAULT_N_INITIAL = 3

#: Stream tag for per-batch-measurement randomness (tag 1 is the serial
#: retry-jitter stream; using a distinct tag means batch mode consumes
#: nothing from any pre-existing stream).
BATCH_STREAM_TAG = 2


class MeasurementError(RuntimeError):
    """No measurement could be obtained at all (every VM failed)."""


@dataclass(frozen=True, slots=True)
class AcquisitionScores:
    """A subclass's verdict on the unmeasured candidates.

    Attributes:
        scores: one score per unmeasured candidate; the highest is
            measured next.
        predicted: surrogate point predictions for the same candidates
            (``None`` when the optimiser has no surrogate).
        expected_improvements: EI values for the same candidates
            (``None`` when the acquisition is not EI-based).
    """

    scores: np.ndarray
    predicted: np.ndarray | None = None
    expected_improvements: np.ndarray | None = None


@dataclass(frozen=True, slots=True)
class BatchMeasurement:
    """The outcome of one batched measurement task.

    Produced by :meth:`SequentialOptimizer.batch_measure_task` —
    possibly in a worker process — and folded into search state at
    batch-commit time, in catalog-index order.

    Attributes:
        index: catalog index of the measured VM.
        iteration: 1-based batch round the task belongs to.
        measurement: the successful measurement, or ``None`` when every
            attempt failed.
        value: the validated objective value (``None`` on failure).
        attempts: charged attempts this task made (the successful one
            included, when there was one).
        failures: ``(attempt, "ErrorType: message")`` per failed attempt.
        wait_s: total retry backoff the task accounted.
    """

    index: int
    iteration: int
    measurement: Measurement | None
    value: float | None
    attempts: int
    failures: tuple[tuple[int, str], ...] = ()
    wait_s: float = 0.0


#: One batch-measurement work item: ``(iteration, catalog index)``.
BatchCell = tuple[int, int]

#: A within-search measurement fan-out: runs every cell through
#: ``run_task`` (in any order, on any backend) and returns all outcomes.
#: Injected — rather than imported — so the core loop stays free of the
#: execution plane; :class:`repro.parallel.batch.MeasurementFanout`
#: implements it over the pluggable cell executors.
BatchFanout = Callable[
    [list[BatchCell], Callable[[BatchCell], BatchMeasurement]],
    list[BatchMeasurement],
]


def _inline_fanout(
    cells: list[BatchCell], run_task: Callable[[BatchCell], BatchMeasurement]
) -> list[BatchMeasurement]:
    """The default fan-out: run the batch's tasks inline, in pick order."""
    return [run_task(cell) for cell in cells]


class SequentialOptimizer(abc.ABC):
    """Base class implementing the SMBO loop over a finite VM catalog.

    Args:
        environment: where measurements come from (simulator or trace).
        objective: what to minimise.
        n_initial: size of the quasi-random initial design.
        stopping: optional early-stopping criterion.
        max_measurements: optional hard budget on *charged attempts*
            (failed ones included).
        seed: seed for the initial design, retry jitter, and any
            surrogate randomness.
        initial_design: explicit catalog indices to measure first instead
            of the quasi-random design (the Section III-C sensitivity
            experiments fix these).
        measure_retries: legacy retry counter; shorthand for
            ``retry_policy=RetryPolicy(max_attempts=measure_retries + 1)``.
        retry_policy: full retry behaviour (attempts, backoff, jitter);
            overrides ``measure_retries`` when given.  Each attempt is
            charged like any other measurement (the cloud billed it).
        quarantine_after: consecutive failures after which a VM is
            quarantined for the rest of the search.
        batch_size: suggestions measured per acquisition round.  ``1``
            (the default) is the classic sequential loop, bit for bit;
            ``q > 1`` suggests q distinct VMs per surrogate fit via
            :meth:`_suggest_batch` and commits their measurements in
            catalog-index order.
        liar: constant-liar strategy (``"min"``/``"mean"``/``"max"``)
            for GP-based batch suggestion; ignored by scorers that
            batch via top-q prediction delta.
        measurement_fanout: optional callable running one batch's
            measurement tasks (see :data:`BatchFanout`); ``None`` runs
            them inline.  Results are identical for any fan-out because
            each task reseeds from its spawn key.
    """

    #: Display name; subclasses override.
    name = "smbo"

    def __init__(
        self,
        environment: MeasurementEnvironment,
        objective: Objective = Objective.TIME,
        n_initial: int = DEFAULT_N_INITIAL,
        stopping: StoppingCriterion | None = None,
        max_measurements: int | None = None,
        seed: int | None = None,
        initial_design: list[int] | None = None,
        measure_retries: int = 0,
        retry_policy: RetryPolicy | None = None,
        quarantine_after: int = 3,
        batch_size: int = 1,
        liar: str = "min",
        measurement_fanout: BatchFanout | None = None,
    ) -> None:
        if n_initial < 1:
            raise ValueError(f"n_initial must be at least 1, got {n_initial}")
        if max_measurements is not None and max_measurements < n_initial:
            raise ValueError("max_measurements must be at least n_initial")
        if measure_retries < 0:
            raise ValueError(f"measure_retries must be >= 0, got {measure_retries}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if liar not in LIAR_STRATEGIES:
            raise ValueError(
                f"unknown liar strategy {liar!r}; known: {LIAR_STRATEGIES}"
            )
        self.measure_retries = measure_retries
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy.from_retries(measure_retries)
        )
        self.quarantine_after = quarantine_after  # CircuitBreaker validates
        self.initial_design = list(initial_design) if initial_design is not None else None
        self._env = environment
        self.objective = objective
        self.n_initial = n_initial
        self.stopping = stopping
        self.max_measurements = max_measurements
        self.batch_size = batch_size
        self.liar = liar
        self._fanout = measurement_fanout
        self._rng = np.random.default_rng(seed)
        # The initial design gets its own stream, split off before any
        # subclass draws: optimisers with the same seed then share the
        # same initial design regardless of how many surrogate seeds they
        # consume (Hybrid BO's early phase must match Naive BO's exactly).
        # The retry-jitter stream derives from the same draw (not a second
        # one) so adding it did not shift any pre-existing seeded stream.
        stream_seed = int(self._rng.integers(2**31))
        self._init_rng = np.random.default_rng(stream_seed)
        self._stream_seed = stream_seed
        self._encoder = InstanceEncoder(tuple(environment.catalog))
        self._design = self._encoder.encode_all()
        self._reset_observations()
        self._failure_events: list[FailureEvent] = []
        self._events: list[SearchEvent] = []
        self._failed_charges = 0
        self._retry_wait_s = 0.0
        self._breaker = CircuitBreaker(self.quarantine_after)
        self._retry_rng = np.random.default_rng([self._stream_seed, 1])

    # -- state exposed to subclasses ----------------------------------------

    def _reset_observations(self) -> None:
        """(Re)initialise the incrementally-grown observation buffers.

        A search never re-measures a VM, so successful observations are
        bounded by the catalog size and the value buffer is allocated
        once; every property below is then a view or a live reference
        instead of a per-access rebuild (the old properties reconstructed
        lists/arrays from a tuple log on every hot-loop access).
        """
        self._obs_count = 0
        self._obs_indices: list[int] = []
        self._obs_measurements: list[Measurement] = []
        self._obs_attempts: list[int] = []
        self._value_buf = np.empty(max(len(self._env.catalog), 1), dtype=float)
        self._measured_set: set[int] = set()
        self._best = np.inf

    @property
    def design_matrix(self) -> np.ndarray:
        """The full encoded instance space, one row per catalog VM."""
        return self._design

    @property
    def measured_indices(self) -> list[int]:
        """Catalog indices measured so far, in measurement order.

        The returned list is live internal state — treat it as
        read-only.
        """
        return self._obs_indices

    @property
    def measured_values(self) -> np.ndarray:
        """Objective values measured so far, aligned with indices.

        A read-only view of the incrementally-grown value buffer.
        """
        view = self._value_buf[: self._obs_count]
        view.flags.writeable = False
        return view

    @property
    def measured_measurements(self) -> list[Measurement]:
        """Full measurements so far (low-level metrics included).

        The returned list is live internal state — treat it as
        read-only.
        """
        return self._obs_measurements

    @property
    def quarantined_vm_names(self) -> frozenset[str]:
        """VM types quarantined by the circuit breaker so far."""
        return self._breaker.quarantined

    @property
    def best_observed(self) -> float:
        """Incumbent objective value.

        Raises:
            RuntimeError: before any measurement.
        """
        if not self._obs_count:
            raise RuntimeError("no measurements yet")
        return float(self._best)

    def _record_observation(
        self, index: int, measurement: Measurement, value: float, attempt: int
    ) -> None:
        """Append one successful observation to the grown buffers."""
        if self._obs_count == len(self._value_buf):  # pragma: no cover - guard
            self._value_buf = np.concatenate([self._value_buf, self._value_buf])
        self._value_buf[self._obs_count] = value
        self._obs_count += 1
        self._obs_indices.append(index)
        self._obs_measurements.append(measurement)
        self._obs_attempts.append(attempt)
        self._measured_set.add(index)
        if value < self._best:
            self._best = value

    # -- subclass hooks ------------------------------------------------------

    @abc.abstractmethod
    def _score_candidates(self, unmeasured: list[int]) -> AcquisitionScores:
        """Fit the surrogate and score the ``unmeasured`` catalog indices."""

    def _suggest_batch(
        self, unmeasured: list[int], q: int
    ) -> tuple[AcquisitionScores, list[int]]:
        """Pick up to ``q`` distinct candidates to measure this round.

        Returns the first-round acquisition (consumed by the stopping
        rule, exactly like the sequential loop's single fit) and the
        picked catalog indices in pick order.  The default is top-q on
        one score vector — for prediction-delta scorers this *is* top-q
        prediction delta: one batched ensemble predict, q distinct
        argmins.  GP scorers override it with constant-liar q-EI.
        """
        acquisition = self._score_candidates(unmeasured)
        picked = [unmeasured[i] for i in top_q_indices(acquisition.scores, q)]
        return acquisition, picked

    def _initial_indices(self) -> list[int]:
        """Catalog indices of the initial design (quasi-random distinct)."""
        if self.initial_design is not None:
            return list(self.initial_design)
        n = min(self.n_initial, len(self._env.catalog))
        return quasi_random_distinct(self._design, n, self._init_rng)

    # -- the loop ------------------------------------------------------------

    def _charged(self) -> int:
        """Charged attempts so far: successful observations + failures."""
        return self._obs_count + self._failed_charges

    def _budget_exhausted(self) -> bool:
        return (
            self.max_measurements is not None
            and self._charged() >= self.max_measurements
        )

    def _observe(self, index: int) -> bool:
        """Try to measure one VM under the retry policy.

        Every attempt — failed or not — is charged.  Returns True on a
        successful observation; False when the attempts were exhausted,
        the VM got quarantined, or the budget ran out mid-retry.
        """
        vm = self._env.catalog[index]
        policy = self.retry_policy
        step = self._obs_count + 1
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self._retry_wait_s += policy.wait(attempt - 1, self._retry_rng)
            self._events.append(
                SearchEvent(
                    kind="measurement_started",
                    step=step,
                    vm_name=vm.name,
                    detail=f"attempt {attempt}",
                )
            )
            try:
                measurement = self._env.measure(vm)
                value = self.objective.value_of(measurement)
                if not np.isfinite(value) or value <= 0.0:
                    raise CorruptedMeasurementError(
                        f"{vm.name} returned unusable {self.objective.value} "
                        f"value {value!r}"
                    )
            except Exception as error:  # noqa: BLE001 - cloud errors are diverse
                self._failed_charges += 1
                error_text = f"{type(error).__name__}: {error}"
                self._failure_events.append(
                    FailureEvent(
                        step=step,
                        vm_name=vm.name,
                        attempt=attempt,
                        error=error_text,
                    )
                )
                self._events.append(
                    SearchEvent(
                        kind="measurement_failed",
                        step=step,
                        vm_name=vm.name,
                        detail=error_text,
                    )
                )
                if self._breaker.record_failure(vm.name):
                    self._events.append(
                        SearchEvent(
                            kind="vm_quarantined",
                            step=step,
                            vm_name=vm.name,
                            detail=f"after {attempt} failed attempts this round",
                        )
                    )
                    return False
                if self._budget_exhausted():
                    return False
                continue
            self._breaker.record_success(vm.name)
            self._record_observation(index, measurement, value, attempt)
            self._events.append(
                SearchEvent(
                    kind="measurement_finished",
                    step=step,
                    vm_name=vm.name,
                    detail=f"{self.objective.value}={value!r}",
                )
            )
            return True
        return False

    def _reachable_unmeasured(self) -> list[int]:
        """Unmeasured catalog indices whose VM is not quarantined."""
        measured = self._measured_set
        return [
            i
            for i, vm in enumerate(self._env.catalog)
            if i not in measured and not self._breaker.is_quarantined(vm.name)
        ]

    def run(self, initial_vms: list[int] | None = None) -> SearchResult:
        """Execute the search and return its full trace.

        Args:
            initial_vms: override the initial design with explicit
                catalog indices (used by the initial-point sensitivity
                experiments of Section III-C).

        Raises:
            MeasurementError: if not even one VM could be measured.
        """
        self._env.reset()
        self._reset_observations()
        self._failure_events = []
        self._events = []
        self._failed_charges = 0
        self._retry_wait_s = 0.0
        self._breaker = CircuitBreaker(self.quarantine_after)
        self._retry_rng = np.random.default_rng([self._stream_seed, 1])

        initial = initial_vms if initial_vms is not None else self._initial_indices()
        if not initial:
            raise ValueError("initial design must contain at least one VM")
        if len(set(initial)) != len(initial):
            raise ValueError("initial design must not repeat VMs")
        if self.max_measurements is not None:
            initial = initial[: self.max_measurements]
        for index in initial:
            if self._budget_exhausted():
                break
            self._observe(index)
        # If every initial VM failed, fall back to the remaining reachable
        # catalog (in order) so one bad initial design cannot kill the
        # search while measurable VMs exist.
        while not self._obs_count and not self._budget_exhausted():
            candidates = self._reachable_unmeasured()
            if not candidates:
                break
            self._observe(candidates[0])
        if not self._obs_count:
            raise MeasurementError(
                "no initial measurement succeeded "
                f"({self._failed_charges} charged attempts; "
                f"quarantined: {sorted(self._breaker.quarantined)})"
            )

        if self.batch_size == 1:
            stopped_by = self._sequential_loop()
        else:
            stopped_by = self._batched_loop()
        return self._build_result(stopped_by)

    def _sequential_loop(self) -> str:
        """The classic one-VM-per-round loop (``batch_size=1``)."""
        while True:
            candidates = self._reachable_unmeasured()
            if not candidates:
                return "exhausted"
            if self._budget_exhausted():
                return "budget"
            acquisition = self._score_candidates(candidates)
            self._events.append(
                SearchEvent(
                    kind="surrogate_fitted",
                    step=self._obs_count + 1,
                    detail=f"scored {len(candidates)} candidates",
                )
            )
            if acquisition.scores.shape != (len(candidates),):
                raise RuntimeError(
                    f"{self.name}: expected {len(candidates)} scores, "
                    f"got shape {acquisition.scores.shape}"
                )
            if self.stopping is not None and self.stopping.should_stop(
                SearchState(
                    measurement_count=self._obs_count,
                    best_observed=self.best_observed,
                    predicted=acquisition.predicted,
                    expected_improvements=acquisition.expected_improvements,
                )
            ):
                self._events.append(
                    SearchEvent(
                        kind="stopping_rule_fired",
                        step=self._obs_count + 1,
                        detail=self.stopping.describe(),
                    )
                )
                return "criterion"
            self._observe(candidates[int(np.argmax(acquisition.scores))])

    # -- batched rounds ------------------------------------------------------

    def batch_measure_task(self, cell: BatchCell) -> BatchMeasurement:
        """Run one batch measurement to completion, self-seeded.

        Safe to run in any order, on any worker: the task derives every
        random stream it touches — environment noise, fault rules, retry
        jitter — from its spawn key ``(stream seed, 2, iteration,
        catalog index)`` (environments expose an optional ``arm_for``
        hook for the first two).  Global concerns (circuit breaker,
        budget, events) are deliberately absent; they are applied when
        the batch commits.
        """
        iteration, index = cell
        vm = self._env.catalog[index]
        spawn_key = (self._stream_seed, BATCH_STREAM_TAG, iteration, index)
        arm = getattr(self._env, "arm_for", None)
        if arm is not None:
            arm(spawn_key)
        retry_rng = np.random.default_rng([*spawn_key, 1])
        policy = self.retry_policy
        failures: list[tuple[int, str]] = []
        wait_s = 0.0
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                wait_s += policy.wait(attempt - 1, retry_rng)
            try:
                measurement = self._env.measure(vm)
                value = self.objective.value_of(measurement)
                if not np.isfinite(value) or value <= 0.0:
                    raise CorruptedMeasurementError(
                        f"{vm.name} returned unusable {self.objective.value} "
                        f"value {value!r}"
                    )
            except Exception as error:  # noqa: BLE001 - cloud errors are diverse
                failures.append((attempt, f"{type(error).__name__}: {error}"))
                continue
            return BatchMeasurement(
                index=index,
                iteration=iteration,
                measurement=measurement,
                value=value,
                attempts=attempt,
                failures=tuple(failures),
                wait_s=wait_s,
            )
        return BatchMeasurement(
            index=index,
            iteration=iteration,
            measurement=None,
            value=None,
            attempts=policy.max_attempts,
            failures=tuple(failures),
            wait_s=wait_s,
        )

    def _commit_batch(self, outcomes: list[BatchMeasurement]) -> None:
        """Fold one round's outcomes into search state.

        Commits in catalog-index order regardless of completion order,
        so events, failure records, breaker state and step numbering are
        identical for any fan-out backend and worker count.
        """
        for outcome in sorted(outcomes, key=lambda o: o.index):
            vm = self._env.catalog[outcome.index]
            step = self._obs_count + 1
            self._retry_wait_s += outcome.wait_s
            quarantined = False
            for attempt, error_text in outcome.failures:
                self._events.append(
                    SearchEvent(
                        kind="measurement_started",
                        step=step,
                        vm_name=vm.name,
                        detail=f"attempt {attempt}",
                    )
                )
                self._failed_charges += 1
                self._failure_events.append(
                    FailureEvent(
                        step=step,
                        vm_name=vm.name,
                        attempt=attempt,
                        error=error_text,
                    )
                )
                self._events.append(
                    SearchEvent(
                        kind="measurement_failed",
                        step=step,
                        vm_name=vm.name,
                        detail=error_text,
                    )
                )
                if self._breaker.record_failure(vm.name) and not quarantined:
                    quarantined = True
                    self._events.append(
                        SearchEvent(
                            kind="vm_quarantined",
                            step=step,
                            vm_name=vm.name,
                            detail=f"after {attempt} failed attempts this round",
                        )
                    )
            if outcome.measurement is not None and outcome.value is not None:
                self._events.append(
                    SearchEvent(
                        kind="measurement_started",
                        step=step,
                        vm_name=vm.name,
                        detail=f"attempt {outcome.attempts}",
                    )
                )
                self._breaker.record_success(vm.name)
                self._record_observation(
                    outcome.index, outcome.measurement, outcome.value, outcome.attempts
                )
                self._events.append(
                    SearchEvent(
                        kind="measurement_finished",
                        step=step,
                        vm_name=vm.name,
                        detail=f"{self.objective.value}={outcome.value!r}",
                    )
                )

    def _batched_loop(self) -> str:
        """The q-point loop (``batch_size > 1``): suggest, fan out, commit."""
        fanout = self._fanout if self._fanout is not None else _inline_fanout
        iteration = 0
        while True:
            candidates = self._reachable_unmeasured()
            if not candidates:
                return "exhausted"
            if self._budget_exhausted():
                return "budget"
            iteration += 1
            acquisition, picked = self._suggest_batch(candidates, self.batch_size)
            step = self._obs_count + 1
            self._events.append(
                SearchEvent(
                    kind="surrogate_fitted",
                    step=step,
                    detail=f"scored {len(candidates)} candidates",
                )
            )
            if acquisition.scores.shape != (len(candidates),):
                raise RuntimeError(
                    f"{self.name}: expected {len(candidates)} scores, "
                    f"got shape {acquisition.scores.shape}"
                )
            if self.stopping is not None and self.stopping.should_stop(
                SearchState(
                    measurement_count=self._obs_count,
                    best_observed=self.best_observed,
                    predicted=acquisition.predicted,
                    expected_improvements=acquisition.expected_improvements,
                )
            ):
                self._events.append(
                    SearchEvent(
                        kind="stopping_rule_fired",
                        step=step,
                        detail=self.stopping.describe(),
                    )
                )
                return "criterion"
            if self.max_measurements is not None:
                # Reserve one charge per pick up front; the batch cannot
                # pause mid-flight the way the serial loop checks the
                # budget between retries (overshoot is bounded, see the
                # module docstring).
                picked = picked[: self.max_measurements - self._charged()]
            if not picked:
                return "budget"
            self._events.append(
                SearchEvent(
                    kind="batch_suggested",
                    step=step,
                    detail=f"q={len(picked)}: "
                    + ", ".join(self._env.catalog[i].name for i in picked),
                )
            )
            cells: list[BatchCell] = [(iteration, index) for index in picked]
            outcomes = fanout(cells, self.batch_measure_task)
            self._commit_batch(outcomes)
            succeeded = sum(1 for o in outcomes if o.measurement is not None)
            self._events.append(
                SearchEvent(
                    kind="batch_measured",
                    step=step,
                    detail=f"{succeeded}/{len(picked)} succeeded",
                )
            )

    def _build_result(self, stopped_by: str) -> SearchResult:
        steps = []
        best = np.inf
        observations = zip(self._obs_indices, self._value_buf, self._obs_attempts)
        for step, (index, value, attempts) in enumerate(observations, start=1):
            best = min(best, value)
            steps.append(
                SearchStep(
                    step=step,
                    vm_name=self._env.catalog[index].name,
                    objective_value=float(value),
                    best_value=float(best),
                    attempts=attempts,
                )
            )
        workload = getattr(self._env, "workload", None)
        return SearchResult(
            optimizer=self.name,
            objective=self.objective,
            workload_id=workload.workload_id if workload is not None else None,
            steps=tuple(steps),
            stopped_by=stopped_by,
            quarantined_vms=tuple(sorted(self._breaker.quarantined)),
            failure_events=tuple(self._failure_events),
            retry_wait_s=self._retry_wait_s,
            events=tuple(self._events),
        )
