"""Sequential model-based optimisation — Algorithm 1 of the paper.

The loop is shared by every optimiser in this package:

1. measure an initial quasi-random sample of distinct VMs,
2. fit a surrogate on everything measured so far and score the
   unmeasured VMs with an acquisition function (subclass hook),
3. stop if the stopping criterion fires, otherwise measure the
   highest-scoring VM and repeat.

The instance space is finite (the environment's catalog — the paper's
18 VMs by default, hundreds for the generated large catalogs), so
optimisers never re-measure a
VM and a search that measures every reachable VM ends with
``"exhausted"``.  Search cost is the number of charged measurements,
initial samples and *failed attempts* included — the cloud bills a run
that a spot reclamation killed — which is the paper's accounting
extended honestly to faulty clouds.

Fault tolerance: measurements may raise (spot interruptions,
provisioning errors) or return corrupted values (NaN / non-positive
time).  Each observation is retried under a
:class:`~repro.faults.retry.RetryPolicy` (exponential backoff, seeded
jitter), and a per-VM :class:`~repro.faults.retry.CircuitBreaker`
quarantines a VM after repeated failures so the search continues over
the remaining catalog instead of aborting.  :class:`MeasurementError`
is raised only when *nothing* could be measured at all.

Batched suggestions (``batch_size=q > 1``): each round the optimiser
asks its :meth:`SequentialOptimizer._suggest_batch` hook for ``q``
distinct candidates (constant-liar q-EI on GP scorers, top-q prediction
delta by default), measures them — concurrently, when a measurement
fan-out is injected — and commits the outcomes in catalog-index order.
Every batch measurement draws its randomness from the spawn key
``(search stream seed, 2, iteration, catalog index)``, so results and
fault-injection streams are independent of completion order and worker
count.  ``batch_size=1`` takes the literally unchanged sequential path
and is bit-identical to it.

Two accounting edges are inherent to batching and documented rather
than hidden: the charge budget is capped *before* a batch launches (one
charge reserved per pick), so in-batch retries can overshoot
``max_measurements`` by at most ``q * (max_attempts - 1)`` charges
where the serial loop would have stopped mid-retry; and a VM that the
commit quarantines has already run (and been billed for) its full retry
schedule, where the serial loop would have abandoned the remaining
attempts.
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.cloud.encoding import InstanceEncoder
from repro.cloud.spot import SpotPolicy
from repro.core.acquisition import LIAR_STRATEGIES, top_q_indices
from repro.core.events import SearchEvent
from repro.core.objectives import Objective
from repro.core.result import FailureEvent, SearchResult, SearchStep
# The stopping module's ``SearchState`` is the per-round snapshot handed
# to stopping rules; this module's :class:`SearchState` (below) is the
# resumable ask/tell machine.  Alias the snapshot to keep both importable.
from repro.core.stopping import SearchState as StoppingSnapshot
from repro.core.stopping import StoppingCriterion
from repro.faults.models import (
    CorruptedMeasurementError,
    PartialMeasurement,
    SpotInterruptionError,
)
from repro.faults.retry import CircuitBreaker, RetryPolicy
from repro.ml.sampling import quasi_random_distinct
from repro.simulator.cluster import Measurement, MeasurementEnvironment

#: CherryPick's initial-design size, used by default throughout the paper.
DEFAULT_N_INITIAL = 3

#: Stream tag for per-batch-measurement randomness (tag 1 is the serial
#: retry-jitter stream; using a distinct tag means batch mode consumes
#: nothing from any pre-existing stream).
BATCH_STREAM_TAG = 2


class MeasurementError(RuntimeError):
    """No measurement could be obtained at all (every VM failed)."""


@dataclass(frozen=True, slots=True)
class AcquisitionScores:
    """A subclass's verdict on the unmeasured candidates.

    Attributes:
        scores: one score per unmeasured candidate; the highest is
            measured next.
        predicted: surrogate point predictions for the same candidates
            (``None`` when the optimiser has no surrogate).
        expected_improvements: EI values for the same candidates
            (``None`` when the acquisition is not EI-based).
    """

    scores: np.ndarray
    predicted: np.ndarray | None = None
    expected_improvements: np.ndarray | None = None


@dataclass(frozen=True, slots=True)
class BatchMeasurement:
    """The outcome of one batched measurement task.

    Produced by :meth:`SequentialOptimizer.batch_measure_task` —
    possibly in a worker process — and folded into search state at
    batch-commit time, in catalog-index order.

    Attributes:
        index: catalog index of the measured VM.
        iteration: 1-based batch round the task belongs to.
        measurement: the successful measurement, or ``None`` when every
            attempt failed.
        value: the validated objective value (``None`` on failure).
        attempts: charged attempts this task made (the successful one
            included, when there was one).
        failures: ``(attempt, "ErrorType: message")`` per failed attempt.
        wait_s: total retry backoff the task accounted.
        charge: what the successful attempt billed, in on-demand
            attempt units (``1.0`` outside spot pricing).
        failure_charges: per-failure charges aligned with ``failures``;
            empty means every failure billed ``1.0``.
        revoked_attempts: attempt numbers that were market spot
            revocations (a subset of the ``failures`` attempts).
        fallback_at: attempt number whose revocation tripped the
            fall-back to on-demand pricing, or ``None``.
        checkpoint: the partial-progress checkpoint surviving the task
            (``None`` on success — the checkpoint was consumed — or
            when nothing partial was banked).
    """

    index: int
    iteration: int
    measurement: Measurement | None
    value: float | None
    attempts: int
    failures: tuple[tuple[int, str], ...] = ()
    wait_s: float = 0.0
    charge: float = 1.0
    failure_charges: tuple[float, ...] = ()
    revoked_attempts: tuple[int, ...] = ()
    fallback_at: int | None = None
    checkpoint: PartialMeasurement | None = None


#: One batch-measurement work item: ``(iteration, catalog index)``.
BatchCell = tuple[int, int]

#: A within-search measurement fan-out: runs every cell through
#: ``run_task`` (in any order, on any backend) and returns all outcomes.
#: Injected — rather than imported — so the core loop stays free of the
#: execution plane; :class:`repro.parallel.batch.MeasurementFanout`
#: implements it over the pluggable cell executors.
BatchFanout = Callable[
    [list[BatchCell], Callable[[BatchCell], BatchMeasurement]],
    list[BatchMeasurement],
]


def _inline_fanout(
    cells: list[BatchCell], run_task: Callable[[BatchCell], BatchMeasurement]
) -> list[BatchMeasurement]:
    """The default fan-out: run the batch's tasks inline, in pick order."""
    return [run_task(cell) for cell in cells]


class SequentialOptimizer(abc.ABC):
    """Base class implementing the SMBO loop over a finite VM catalog.

    Args:
        environment: where measurements come from (simulator or trace).
        objective: what to minimise.
        n_initial: size of the quasi-random initial design.
        stopping: optional early-stopping criterion.
        max_measurements: optional hard budget on *charged attempts*
            (failed ones included).
        seed: seed for the initial design, retry jitter, and any
            surrogate randomness.
        initial_design: explicit catalog indices to measure first instead
            of the quasi-random design (the Section III-C sensitivity
            experiments fix these).
        measure_retries: legacy retry counter; shorthand for
            ``retry_policy=RetryPolicy(max_attempts=measure_retries + 1)``.
        retry_policy: full retry behaviour (attempts, backoff, jitter);
            overrides ``measure_retries`` when given.  Each attempt is
            charged like any other measurement (the cloud billed it).
        quarantine_after: consecutive failures after which a VM is
            quarantined for the rest of the search.
        batch_size: suggestions measured per acquisition round.  ``1``
            (the default) is the classic sequential loop, bit for bit;
            ``q > 1`` suggests q distinct VMs per surrogate fit via
            :meth:`_suggest_batch` and commits their measurements in
            catalog-index order.
        liar: constant-liar strategy (``"min"``/``"mean"``/``"max"``)
            for GP-based batch suggestion; ignored by scorers that
            batch via top-q prediction delta.
        measurement_fanout: optional callable running one batch's
            measurement tasks (see :data:`BatchFanout`); ``None`` runs
            them inline.  Results are identical for any fan-out because
            each task reseeds from its spawn key.
        spot: optional :class:`~repro.cloud.spot.SpotPolicy` switching
            the search to spot pricing.  Measurements then run on spot
            capacity first (the environment's ``set_pricing`` hook is
            told which tier each attempt buys); a market revocation
            bills only the completed fraction at the spot price, banks
            it as a :class:`~repro.faults.models.PartialMeasurement`
            checkpoint that retries resume from, and after
            ``fallback_after`` revocations the observation falls back
            to on-demand at full price.  ``None`` (the default) is the
            historic on-demand loop, bit for bit.
    """

    #: Display name; subclasses override.
    name = "smbo"

    def __init__(
        self,
        environment: MeasurementEnvironment,
        objective: Objective = Objective.TIME,
        n_initial: int = DEFAULT_N_INITIAL,
        stopping: StoppingCriterion | None = None,
        max_measurements: int | None = None,
        seed: int | None = None,
        initial_design: list[int] | None = None,
        measure_retries: int = 0,
        retry_policy: RetryPolicy | None = None,
        quarantine_after: int = 3,
        batch_size: int = 1,
        liar: str = "min",
        measurement_fanout: BatchFanout | None = None,
        spot: SpotPolicy | None = None,
    ) -> None:
        if n_initial < 1:
            raise ValueError(f"n_initial must be at least 1, got {n_initial}")
        if max_measurements is not None and max_measurements < n_initial:
            raise ValueError("max_measurements must be at least n_initial")
        if measure_retries < 0:
            raise ValueError(f"measure_retries must be >= 0, got {measure_retries}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if liar not in LIAR_STRATEGIES:
            raise ValueError(
                f"unknown liar strategy {liar!r}; known: {LIAR_STRATEGIES}"
            )
        self.measure_retries = measure_retries
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy.from_retries(measure_retries)
        )
        self.quarantine_after = quarantine_after  # CircuitBreaker validates
        self.initial_design = list(initial_design) if initial_design is not None else None
        self._env = environment
        self.objective = objective
        self.n_initial = n_initial
        self.stopping = stopping
        self.max_measurements = max_measurements
        self.batch_size = batch_size
        self.liar = liar
        self._fanout = measurement_fanout
        self._spot = spot
        self._checkpoints: dict[str, PartialMeasurement] = {}
        self._charge_total = 0.0
        self._rng = np.random.default_rng(seed)
        # The initial design gets its own stream, split off before any
        # subclass draws: optimisers with the same seed then share the
        # same initial design regardless of how many surrogate seeds they
        # consume (Hybrid BO's early phase must match Naive BO's exactly).
        # The retry-jitter stream derives from the same draw (not a second
        # one) so adding it did not shift any pre-existing seeded stream.
        stream_seed = int(self._rng.integers(2**31))
        self._init_rng = np.random.default_rng(stream_seed)
        self._stream_seed = stream_seed
        self._encoder = InstanceEncoder(tuple(environment.catalog))
        self._design = self._encoder.encode_all()
        self._reset_observations()
        self._failure_events: list[FailureEvent] = []
        self._events: list[SearchEvent] = []
        self._failed_charges = 0
        self._retry_wait_s = 0.0
        self._breaker = self._new_breaker()
        self._retry_rng = np.random.default_rng([self._stream_seed, 1])

    def _new_breaker(self) -> CircuitBreaker:
        """A fresh circuit breaker matching this optimiser's policy.

        Spot-priced searches get the breaker's price-aware mode: a VM
        that keeps getting reclaimed is quarantined for churn even when
        its runs eventually succeed.
        """
        revocation_threshold = (
            self._spot.revocation_quarantine if self._spot is not None else None
        )
        return CircuitBreaker(
            self.quarantine_after, revocation_threshold=revocation_threshold
        )

    # -- state exposed to subclasses ----------------------------------------

    def _reset_observations(self) -> None:
        """(Re)initialise the incrementally-grown observation buffers.

        A search never re-measures a VM, so successful observations are
        bounded by the catalog size and the value buffer is allocated
        once; every property below is then a view or a live reference
        instead of a per-access rebuild (the old properties reconstructed
        lists/arrays from a tuple log on every hot-loop access).
        """
        self._obs_count = 0
        self._obs_indices: list[int] = []
        self._obs_measurements: list[Measurement] = []
        self._obs_attempts: list[int] = []
        self._obs_charges: list[float] = []
        self._value_buf = np.empty(max(len(self._env.catalog), 1), dtype=float)
        self._measured_set: set[int] = set()
        self._best = np.inf

    @property
    def design_matrix(self) -> np.ndarray:
        """The full encoded instance space, one row per catalog VM."""
        return self._design

    @property
    def measured_indices(self) -> list[int]:
        """Catalog indices measured so far, in measurement order.

        The returned list is live internal state — treat it as
        read-only.
        """
        return self._obs_indices

    @property
    def measured_values(self) -> np.ndarray:
        """Objective values measured so far, aligned with indices.

        A read-only view of the incrementally-grown value buffer.
        """
        view = self._value_buf[: self._obs_count]
        view.flags.writeable = False
        return view

    @property
    def measured_measurements(self) -> list[Measurement]:
        """Full measurements so far (low-level metrics included).

        The returned list is live internal state — treat it as
        read-only.
        """
        return self._obs_measurements

    @property
    def quarantined_vm_names(self) -> frozenset[str]:
        """VM types quarantined by the circuit breaker so far."""
        return self._breaker.quarantined

    @property
    def best_observed(self) -> float:
        """Incumbent objective value.

        Raises:
            RuntimeError: before any measurement.
        """
        if not self._obs_count:
            raise RuntimeError("no measurements yet")
        return float(self._best)

    def _record_observation(
        self,
        index: int,
        measurement: Measurement,
        value: float,
        attempt: int,
        charge: float = 1.0,
    ) -> None:
        """Append one successful observation to the grown buffers."""
        if self._obs_count == len(self._value_buf):  # pragma: no cover - guard
            self._value_buf = np.concatenate([self._value_buf, self._value_buf])
        self._value_buf[self._obs_count] = value
        self._obs_count += 1
        self._obs_indices.append(index)
        self._obs_measurements.append(measurement)
        self._obs_attempts.append(attempt)
        self._obs_charges.append(charge)
        self._charge_total += charge
        self._measured_set.add(index)
        if value < self._best:
            self._best = value

    # -- subclass hooks ------------------------------------------------------

    @abc.abstractmethod
    def _score_candidates(self, unmeasured: list[int]) -> AcquisitionScores:
        """Fit the surrogate and score the ``unmeasured`` catalog indices."""

    def _suggest_batch(
        self, unmeasured: list[int], q: int
    ) -> tuple[AcquisitionScores, list[int]]:
        """Pick up to ``q`` distinct candidates to measure this round.

        Returns the first-round acquisition (consumed by the stopping
        rule, exactly like the sequential loop's single fit) and the
        picked catalog indices in pick order.  The default is top-q on
        one score vector — for prediction-delta scorers this *is* top-q
        prediction delta: one batched ensemble predict, q distinct
        argmins.  GP scorers override it with constant-liar q-EI.
        """
        acquisition = self._score_candidates(unmeasured)
        picked = [unmeasured[i] for i in top_q_indices(acquisition.scores, q)]
        return acquisition, picked

    def _initial_indices(self) -> list[int]:
        """Catalog indices of the initial design (quasi-random distinct)."""
        if self.initial_design is not None:
            return list(self.initial_design)
        n = min(self.n_initial, len(self._env.catalog))
        return quasi_random_distinct(self._design, n, self._init_rng)

    # -- the loop ------------------------------------------------------------

    def _charged(self) -> int | float:
        """Everything billed so far, in on-demand attempt units.

        On-demand searches keep the historic integer semantics (one
        unit per attempt, failed or not).  Spot-priced searches sum the
        actual fractional charges — discounted runs, partial revocation
        charges — so the budget buys more attempts when they are cheap.
        """
        if self._spot is None:
            return self._obs_count + self._failed_charges
        return self._charge_total

    def _set_env_pricing(self, vm_name: str, pricing: str) -> None:
        """Tell the environment which pricing tier the next run buys."""
        setter = getattr(self._env, "set_pricing", None)
        if setter is not None:
            setter(vm_name, pricing)

    def _price_ratio(self, vm_name: str, pricing: str) -> float:
        """Spot/on-demand price ratio billed for a run of ``vm_name``."""
        if self._spot is not None and pricing == "spot":
            return 1.0 - self._spot.market.discount(vm_name)
        return 1.0

    def _budget_exhausted(self) -> bool:
        return (
            self.max_measurements is not None
            and self._charged() >= self.max_measurements
        )

    def _observe(self, index: int) -> bool:
        """Try to measure one VM under the retry policy.

        Every attempt — failed or not — is charged.  Returns True on a
        successful observation; False when the attempts were exhausted,
        the VM got quarantined, or the budget ran out mid-retry.

        Spot-priced searches (``spot`` policy set) walk a retry ladder:
        attempts run at the spot price until ``fallback_after`` market
        revocations, then fall back to on-demand at full price.  A
        revocation bills only the reached fraction of the remaining
        work (at the spot price) and banks resume credit as a per-VM
        :class:`~repro.faults.models.PartialMeasurement` checkpoint, so
        the eventual success is billed for the uncovered remainder
        only.
        """
        vm = self._env.catalog[index]
        policy = self.retry_policy
        step = self._obs_count + 1
        spot = self._spot
        pricing = "on-demand" if spot is None else "spot"
        revocations = 0
        if spot is not None:
            self._set_env_pricing(vm.name, "spot")
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self._retry_wait_s += policy.wait(attempt - 1, self._retry_rng)
            self._events.append(
                SearchEvent(
                    kind="measurement_started",
                    step=step,
                    vm_name=vm.name,
                    detail=f"attempt {attempt}",
                )
            )
            try:
                measurement = self._env.measure(vm)
                value = self.objective.value_of(measurement)
                if not np.isfinite(value) or value <= 0.0:
                    raise CorruptedMeasurementError(
                        f"{vm.name} returned unusable {self.objective.value} "
                        f"value {value!r}"
                    )
            except Exception as error:  # noqa: BLE001 - cloud errors are diverse
                self._failed_charges += 1
                error_text = f"{type(error).__name__}: {error}"
                charge = 1.0
                revoked = (
                    spot is not None
                    and pricing == "spot"
                    and isinstance(error, SpotInterruptionError)
                    and error.fraction is not None
                )
                if spot is not None:
                    checkpoint = self._checkpoints.get(vm.name)
                    done = checkpoint.fraction if checkpoint is not None else 0.0
                    ratio = self._price_ratio(vm.name, pricing)
                    if revoked:
                        # Revoked at fraction g of the *remaining* work:
                        # bill g * (1 - done) at the spot price and bank
                        # resume credit toward the next attempt.
                        progressed = float(error.fraction) * (1.0 - done)
                        charge = ratio * progressed
                        prior = checkpoint.charge if checkpoint is not None else 0.0
                        self._checkpoints[vm.name] = PartialMeasurement(
                            vm_name=vm.name,
                            fraction=done + spot.resume_credit * progressed,
                            charge=prior + charge,
                        )
                    else:
                        charge = ratio * (1.0 - done)
                self._charge_total += charge
                self._failure_events.append(
                    FailureEvent(
                        step=step,
                        vm_name=vm.name,
                        attempt=attempt,
                        error=error_text,
                        charge=charge,
                    )
                )
                self._events.append(
                    SearchEvent(
                        kind="measurement_failed",
                        step=step,
                        vm_name=vm.name,
                        detail=error_text,
                    )
                )
                if revoked:
                    revocations += 1
                    self._events.append(
                        SearchEvent(
                            kind="spot_revoked",
                            step=step,
                            vm_name=vm.name,
                            detail=(
                                f"revocation {revocations} at "
                                f"{float(error.fraction):.0%} of the remaining "
                                f"work, charged {charge:.6f}"
                            ),
                        )
                    )
                    quarantined = self._breaker.record_revocation(vm.name)
                    quarantine_detail = (
                        "spot churn: "
                        f"{self._breaker.revocation_count(vm.name)} revocations"
                    )
                else:
                    quarantined = self._breaker.record_failure(vm.name)
                    quarantine_detail = f"after {attempt} failed attempts this round"
                if quarantined:
                    self._events.append(
                        SearchEvent(
                            kind="vm_quarantined",
                            step=step,
                            vm_name=vm.name,
                            detail=quarantine_detail,
                        )
                    )
                    return False
                if self._budget_exhausted():
                    return False
                if revoked and pricing == "spot" and revocations >= spot.fallback_after:
                    pricing = "on-demand"
                    self._set_env_pricing(vm.name, "on-demand")
                    self._events.append(
                        SearchEvent(
                            kind="fallback_to_ondemand",
                            step=step,
                            vm_name=vm.name,
                            detail=(
                                f"after {revocations} revocations; retrying at "
                                "full on-demand price"
                            ),
                        )
                    )
                continue
            self._breaker.record_success(vm.name)
            charge = 1.0
            if spot is not None:
                checkpoint = self._checkpoints.pop(vm.name, None)
                done = checkpoint.fraction if checkpoint is not None else 0.0
                charge = self._price_ratio(vm.name, pricing) * (1.0 - done)
            self._record_observation(index, measurement, value, attempt, charge=charge)
            self._events.append(
                SearchEvent(
                    kind="measurement_finished",
                    step=step,
                    vm_name=vm.name,
                    detail=f"{self.objective.value}={value!r}",
                )
            )
            return True
        return False

    def _reachable_unmeasured(self) -> list[int]:
        """Unmeasured catalog indices whose VM is not quarantined."""
        measured = self._measured_set
        return [
            i
            for i, vm in enumerate(self._env.catalog)
            if i not in measured and not self._breaker.is_quarantined(vm.name)
        ]

    def start(self, initial_vms: list[int] | None = None) -> SearchState:
        """Begin a search and return its resumable ask/tell handle.

        Resets search state (exactly like :meth:`run`'s prologue) and
        hands back a :class:`SearchState` whose :meth:`SearchState.step`
        advances the search one observation or one acquisition round at
        a time — so an external driver (the vectorized grid executor, a
        service loop) can own the schedule instead of this optimiser.

        Args:
            initial_vms: override the initial design with explicit
                catalog indices (used by the initial-point sensitivity
                experiments of Section III-C).
        """
        return SearchState(self, initial_vms)

    def run(self, initial_vms: list[int] | None = None) -> SearchResult:
        """Execute the search to completion and return its full trace.

        Drives :meth:`start`'s step machine until it finishes; the
        resulting trace is bit-identical to the historical monolithic
        loop (the steps decompose it without reordering any operation).

        Args:
            initial_vms: override the initial design with explicit
                catalog indices (used by the initial-point sensitivity
                experiments of Section III-C).

        Raises:
            MeasurementError: if not even one VM could be measured.
        """
        state = self.start(initial_vms)
        while state.step():
            pass
        return state.result()

    def _round_scorer(self):
        """The scorer :meth:`_score_candidates` would use next round.

        Drivers that batch surrogate work across searches (the
        ``"vector"`` executor) use this to group compatible searches;
        ``None`` (the base default) means "not batchable — score via
        :meth:`_score_candidates`".
        """
        return None

    # -- batched rounds ------------------------------------------------------

    def batch_measure_task(self, cell: BatchCell) -> BatchMeasurement:
        """Run one batch measurement to completion, self-seeded.

        Safe to run in any order, on any worker: the task derives every
        random stream it touches — environment noise, fault rules, retry
        jitter — from its spawn key ``(stream seed, 2, iteration,
        catalog index)`` (environments expose an optional ``arm_for``
        hook for the first two).  Global concerns (circuit breaker,
        budget, events) are deliberately absent; they are applied when
        the batch commits.
        """
        iteration, index = cell
        vm = self._env.catalog[index]
        spawn_key = (self._stream_seed, BATCH_STREAM_TAG, iteration, index)
        arm = getattr(self._env, "arm_for", None)
        if arm is not None:
            arm(spawn_key)
        retry_rng = np.random.default_rng([*spawn_key, 1])
        policy = self.retry_policy
        spot = self._spot
        pricing = "on-demand" if spot is None else "spot"
        revocations = 0
        # The checkpoint evolves task-locally from the global state at
        # fan-out time (deterministic: commits happen between rounds).
        checkpoint = self._checkpoints.get(vm.name) if spot is not None else None
        failures: list[tuple[int, str]] = []
        failure_charges: list[float] = []
        revoked_attempts: list[int] = []
        fallback_at: int | None = None
        wait_s = 0.0
        if spot is not None:
            self._set_env_pricing(vm.name, "spot")
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                wait_s += policy.wait(attempt - 1, retry_rng)
            try:
                measurement = self._env.measure(vm)
                value = self.objective.value_of(measurement)
                if not np.isfinite(value) or value <= 0.0:
                    raise CorruptedMeasurementError(
                        f"{vm.name} returned unusable {self.objective.value} "
                        f"value {value!r}"
                    )
            except Exception as error:  # noqa: BLE001 - cloud errors are diverse
                failures.append((attempt, f"{type(error).__name__}: {error}"))
                charge = 1.0
                revoked = (
                    spot is not None
                    and pricing == "spot"
                    and isinstance(error, SpotInterruptionError)
                    and error.fraction is not None
                )
                if spot is not None:
                    done = checkpoint.fraction if checkpoint is not None else 0.0
                    ratio = self._price_ratio(vm.name, pricing)
                    if revoked:
                        progressed = float(error.fraction) * (1.0 - done)
                        charge = ratio * progressed
                        prior = checkpoint.charge if checkpoint is not None else 0.0
                        checkpoint = PartialMeasurement(
                            vm_name=vm.name,
                            fraction=done + spot.resume_credit * progressed,
                            charge=prior + charge,
                        )
                    else:
                        charge = ratio * (1.0 - done)
                failure_charges.append(charge)
                if revoked:
                    revocations += 1
                    revoked_attempts.append(attempt)
                    if pricing == "spot" and revocations >= spot.fallback_after:
                        pricing = "on-demand"
                        fallback_at = attempt
                        self._set_env_pricing(vm.name, "on-demand")
                continue
            charge = 1.0
            if spot is not None:
                done = checkpoint.fraction if checkpoint is not None else 0.0
                charge = self._price_ratio(vm.name, pricing) * (1.0 - done)
                checkpoint = None  # consumed by the success
            return BatchMeasurement(
                index=index,
                iteration=iteration,
                measurement=measurement,
                value=value,
                attempts=attempt,
                failures=tuple(failures),
                wait_s=wait_s,
                charge=charge,
                failure_charges=tuple(failure_charges),
                revoked_attempts=tuple(revoked_attempts),
                fallback_at=fallback_at,
                checkpoint=checkpoint,
            )
        return BatchMeasurement(
            index=index,
            iteration=iteration,
            measurement=None,
            value=None,
            attempts=policy.max_attempts,
            failures=tuple(failures),
            wait_s=wait_s,
            failure_charges=tuple(failure_charges),
            revoked_attempts=tuple(revoked_attempts),
            fallback_at=fallback_at,
            checkpoint=checkpoint,
        )

    def _commit_batch(self, outcomes: list[BatchMeasurement]) -> None:
        """Fold one round's outcomes into search state.

        Commits in catalog-index order regardless of completion order,
        so events, failure records, breaker state and step numbering are
        identical for any fan-out backend and worker count.
        """
        for outcome in sorted(outcomes, key=lambda o: o.index):
            vm = self._env.catalog[outcome.index]
            step = self._obs_count + 1
            self._retry_wait_s += outcome.wait_s
            quarantined = False
            revoked_set = set(outcome.revoked_attempts)
            revocations = 0
            for position, (attempt, error_text) in enumerate(outcome.failures):
                charge = (
                    outcome.failure_charges[position]
                    if outcome.failure_charges
                    else 1.0
                )
                self._events.append(
                    SearchEvent(
                        kind="measurement_started",
                        step=step,
                        vm_name=vm.name,
                        detail=f"attempt {attempt}",
                    )
                )
                self._failed_charges += 1
                self._charge_total += charge
                self._failure_events.append(
                    FailureEvent(
                        step=step,
                        vm_name=vm.name,
                        attempt=attempt,
                        error=error_text,
                        charge=charge,
                    )
                )
                self._events.append(
                    SearchEvent(
                        kind="measurement_failed",
                        step=step,
                        vm_name=vm.name,
                        detail=error_text,
                    )
                )
                if attempt in revoked_set:
                    revocations += 1
                    self._events.append(
                        SearchEvent(
                            kind="spot_revoked",
                            step=step,
                            vm_name=vm.name,
                            detail=(
                                f"revocation {revocations} at batch attempt "
                                f"{attempt}, charged {charge:.6f}"
                            ),
                        )
                    )
                    newly_quarantined = self._breaker.record_revocation(vm.name)
                else:
                    newly_quarantined = self._breaker.record_failure(vm.name)
                if newly_quarantined and not quarantined:
                    quarantined = True
                    self._events.append(
                        SearchEvent(
                            kind="vm_quarantined",
                            step=step,
                            vm_name=vm.name,
                            detail=f"after {attempt} failed attempts this round",
                        )
                    )
                if outcome.fallback_at == attempt:
                    self._events.append(
                        SearchEvent(
                            kind="fallback_to_ondemand",
                            step=step,
                            vm_name=vm.name,
                            detail=(
                                f"after {revocations} revocations; retrying at "
                                "full on-demand price"
                            ),
                        )
                    )
            if outcome.measurement is not None and outcome.value is not None:
                self._events.append(
                    SearchEvent(
                        kind="measurement_started",
                        step=step,
                        vm_name=vm.name,
                        detail=f"attempt {outcome.attempts}",
                    )
                )
                self._breaker.record_success(vm.name)
                self._record_observation(
                    outcome.index,
                    outcome.measurement,
                    outcome.value,
                    outcome.attempts,
                    charge=outcome.charge,
                )
                self._events.append(
                    SearchEvent(
                        kind="measurement_finished",
                        step=step,
                        vm_name=vm.name,
                        detail=f"{self.objective.value}={outcome.value!r}",
                    )
                )
                if self._spot is not None:
                    self._checkpoints.pop(vm.name, None)
            elif outcome.checkpoint is not None:
                # The task failed outright but banked partial progress;
                # keep it so a later round resumes instead of redoing.
                self._checkpoints[vm.name] = outcome.checkpoint

    def _batched_round(self, iteration: int) -> str | None:
        """One q-point round (``batch_size > 1``): suggest, fan out, commit.

        Returns the stop reason when this round ended the search, else
        ``None`` (the caller — :class:`SearchState` — schedules the next
        round).
        """
        fanout = self._fanout if self._fanout is not None else _inline_fanout
        candidates = self._reachable_unmeasured()
        if not candidates:
            return "exhausted"
        if self._budget_exhausted():
            return "budget"
        acquisition, picked = self._suggest_batch(candidates, self.batch_size)
        step = self._obs_count + 1
        self._events.append(
            SearchEvent(
                kind="surrogate_fitted",
                step=step,
                detail=f"scored {len(candidates)} candidates",
            )
        )
        if acquisition.scores.shape != (len(candidates),):
            raise RuntimeError(
                f"{self.name}: expected {len(candidates)} scores, "
                f"got shape {acquisition.scores.shape}"
            )
        if self.stopping is not None and self.stopping.should_stop(
            StoppingSnapshot(
                measurement_count=self._obs_count,
                best_observed=self.best_observed,
                predicted=acquisition.predicted,
                expected_improvements=acquisition.expected_improvements,
            )
        ):
            self._events.append(
                SearchEvent(
                    kind="stopping_rule_fired",
                    step=step,
                    detail=self.stopping.describe(),
                )
            )
            return "criterion"
        if self.max_measurements is not None:
            # Reserve the cost of each pick up front; the batch cannot
            # pause mid-flight the way the serial loop checks the
            # budget between retries (overshoot is bounded, see the
            # module docstring).
            if self._spot is None:
                picked = picked[: self.max_measurements - self._charged()]
            else:
                # Under spot pricing a pick's expected bill is below one
                # on-demand unit (hazard-adjusted closed form), so the
                # same budget affords more concurrent picks.
                remaining = float(self.max_measurements) - self._charged()
                affordable: list[int] = []
                for index in picked:
                    expected = self._spot.expected_attempt_cost(
                        self._env.catalog[index].name
                    )
                    if expected > remaining:
                        break
                    remaining -= expected
                    affordable.append(index)
                picked = affordable
        if not picked:
            return "budget"
        self._events.append(
            SearchEvent(
                kind="batch_suggested",
                step=step,
                detail=f"q={len(picked)}: "
                + ", ".join(self._env.catalog[i].name for i in picked),
            )
        )
        cells: list[BatchCell] = [(iteration, index) for index in picked]
        outcomes = fanout(cells, self.batch_measure_task)
        self._commit_batch(outcomes)
        succeeded = sum(1 for o in outcomes if o.measurement is not None)
        self._events.append(
            SearchEvent(
                kind="batch_measured",
                step=step,
                detail=f"{succeeded}/{len(picked)} succeeded",
            )
        )
        return None

    def _build_result(self, stopped_by: str) -> SearchResult:
        steps = []
        best = np.inf
        observations = zip(
            self._obs_indices, self._value_buf, self._obs_attempts, self._obs_charges
        )
        for step, (index, value, attempts, charge) in enumerate(observations, start=1):
            best = min(best, value)
            steps.append(
                SearchStep(
                    step=step,
                    vm_name=self._env.catalog[index].name,
                    objective_value=float(value),
                    best_value=float(best),
                    attempts=attempts,
                    charge=charge,
                )
            )
        workload = getattr(self._env, "workload", None)
        return SearchResult(
            optimizer=self.name,
            objective=self.objective,
            workload_id=workload.workload_id if workload is not None else None,
            steps=tuple(steps),
            stopped_by=stopped_by,
            quarantined_vms=tuple(sorted(self._breaker.quarantined)),
            failure_events=tuple(self._failure_events),
            retry_wait_s=self._retry_wait_s,
            events=tuple(self._events),
        )


class SearchState:
    """A resumable search: the ask/tell step machine behind :meth:`run`.

    Obtained from :meth:`SequentialOptimizer.start`.  The search moves
    through three phases:

    * ``"init"`` — one initial-design observation per :meth:`step`
      (including the fall-back probing of the remaining catalog when
      every planned initial VM failed);
    * ``"search"`` — one acquisition round per :meth:`step`: score the
      reachable unmeasured candidates, fire the stopping rule, measure
      the argmax (or, in batched mode, one full suggest/fan-out/commit
      round);
    * ``"done"`` — :meth:`result` returns the finished
      :class:`~repro.core.result.SearchResult`.

    Driving ``step()`` to completion is bit-identical to the historical
    monolithic loop: the phases decompose it without reordering any
    observation, event, or random draw.

    External drivers that want to batch the surrogate work of many
    searches use the finer-grained round split instead of ``step()``:
    :meth:`begin_round` returns the candidate list (or finishes the
    search), the driver computes the acquisition however it likes (for
    the vectorized grid executor: stacked across searches, bit-identical
    per search), and :meth:`complete_round` applies it.

    The state (optimiser included) is plain-picklable as long as the
    environment and any injected measurement fan-out are, so a search
    can be serialized mid-flight with :meth:`to_bytes` and resumed in
    another process with :meth:`from_bytes`.
    """

    def __init__(
        self,
        optimizer: SequentialOptimizer,
        initial_vms: list[int] | None = None,
    ) -> None:
        opt = optimizer
        self._opt = opt
        self._phase = "init"
        self._stopped_by: str | None = None
        self._result: SearchResult | None = None
        self._iteration = 0  # batched rounds only
        opt._env.reset()
        opt._reset_observations()
        opt._failure_events = []
        opt._events = []
        opt._failed_charges = 0
        opt._retry_wait_s = 0.0
        opt._checkpoints = {}
        opt._charge_total = 0.0
        opt._breaker = opt._new_breaker()
        opt._retry_rng = np.random.default_rng([opt._stream_seed, 1])
        initial = initial_vms if initial_vms is not None else opt._initial_indices()
        if not initial:
            raise ValueError("initial design must contain at least one VM")
        if len(set(initial)) != len(initial):
            raise ValueError("initial design must not repeat VMs")
        if opt.max_measurements is not None:
            initial = initial[: opt.max_measurements]
        self._pending_initial = list(initial)

    # -- introspection -------------------------------------------------------

    @property
    def optimizer(self) -> SequentialOptimizer:
        """The optimiser this state is driving."""
        return self._opt

    @property
    def phase(self) -> str:
        """``"init"``, ``"search"``, or ``"done"``."""
        return self._phase

    @property
    def done(self) -> bool:
        """True once the search finished and :meth:`result` is ready."""
        return self._phase == "done"

    @property
    def stopped_by(self) -> str | None:
        """The stop reason once done, else ``None``."""
        return self._stopped_by

    # -- stepping ------------------------------------------------------------

    def step(self) -> bool:
        """Advance the search by one unit of work.

        One initial observation in the ``"init"`` phase; one acquisition
        round in the ``"search"`` phase.  Returns True while the search
        is still live, False once it finished.

        Raises:
            MeasurementError: if not even one VM could be measured.
        """
        if self._phase == "done":
            return False
        if self._phase == "init":
            self._step_init()
            return self._phase != "done"
        if self._opt.batch_size == 1:
            candidates = self.begin_round()
            if candidates is None:
                return False
            acquisition = self._opt._score_candidates(candidates)
            self.complete_round(candidates, acquisition)
        else:
            self._iteration += 1
            stopped_by = self._opt._batched_round(self._iteration)
            if stopped_by is not None:
                self._finish(stopped_by)
        return self._phase != "done"

    def _step_init(self) -> None:
        """One initial-design observation (or fall-back probe)."""
        opt = self._opt
        while self._pending_initial:
            if opt._budget_exhausted():
                self._pending_initial.clear()
                break
            opt._observe(self._pending_initial.pop(0))
            return  # one observation per step
        if not opt._obs_count and not opt._budget_exhausted():
            # Every planned initial VM failed: fall back to the remaining
            # reachable catalog (in order), one probe per step, so one
            # bad initial design cannot kill the search while measurable
            # VMs exist.
            candidates = opt._reachable_unmeasured()
            if candidates:
                opt._observe(candidates[0])
                return
        if not opt._obs_count:
            raise MeasurementError(
                "no initial measurement succeeded "
                f"({opt._failed_charges} charged attempts; "
                f"quarantined: {sorted(opt._breaker.quarantined)})"
            )
        self._phase = "search"

    # -- the driver-facing round split (batch_size == 1) ---------------------

    def begin_round(self) -> list[int] | None:
        """Open one sequential acquisition round.

        Returns the reachable unmeasured candidate indices, or ``None``
        when this call finished the search (catalog exhausted / budget
        spent).  Each successful ``begin_round`` must be paired with one
        :meth:`complete_round`.
        """
        opt = self._opt
        if self._phase != "search":
            raise RuntimeError(f"begin_round() in phase {self._phase!r}")
        candidates = opt._reachable_unmeasured()
        if not candidates:
            self._finish("exhausted")
            return None
        if opt._budget_exhausted():
            self._finish("budget")
            return None
        return candidates

    def complete_round(
        self, candidates: list[int], acquisition: AcquisitionScores
    ) -> None:
        """Apply one round's acquisition: events, stopping rule, observe.

        ``acquisition`` must score exactly ``candidates`` (the list the
        matching :meth:`begin_round` returned) and — for bit-identity
        with the serial path — must equal what the optimiser's own
        :meth:`~SequentialOptimizer._score_candidates` would produce.
        """
        opt = self._opt
        opt._events.append(
            SearchEvent(
                kind="surrogate_fitted",
                step=opt._obs_count + 1,
                detail=f"scored {len(candidates)} candidates",
            )
        )
        if acquisition.scores.shape != (len(candidates),):
            raise RuntimeError(
                f"{opt.name}: expected {len(candidates)} scores, "
                f"got shape {acquisition.scores.shape}"
            )
        if opt.stopping is not None and opt.stopping.should_stop(
            StoppingSnapshot(
                measurement_count=opt._obs_count,
                best_observed=opt.best_observed,
                predicted=acquisition.predicted,
                expected_improvements=acquisition.expected_improvements,
            )
        ):
            opt._events.append(
                SearchEvent(
                    kind="stopping_rule_fired",
                    step=opt._obs_count + 1,
                    detail=opt.stopping.describe(),
                )
            )
            self._finish("criterion")
            return
        opt._observe(candidates[int(np.argmax(acquisition.scores))])

    def _finish(self, stopped_by: str) -> None:
        self._phase = "done"
        self._stopped_by = stopped_by
        self._result = self._opt._build_result(stopped_by)

    def result(self) -> SearchResult:
        """The finished search trace.

        Raises:
            RuntimeError: while the search is still live.
        """
        if self._result is None:
            raise RuntimeError("search not finished; keep calling step()")
        return self._result

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Pickle this mid-flight search (optimiser and all)."""
        import pickle

        return pickle.dumps(self)

    @classmethod
    def from_bytes(cls, payload: bytes) -> SearchState:
        """Resume a search serialized with :meth:`to_bytes`."""
        import pickle

        state = pickle.loads(payload)
        if not isinstance(state, cls):
            raise TypeError(f"payload is not a {cls.__name__}")
        return state
