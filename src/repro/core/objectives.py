"""Optimisation objectives.

The paper optimises three objectives, always minimised:

* execution **time** (RQ1),
* deployment **cost** = time x unit price (RQ2, shown to be harder
  because cost "creates a level playing field"),
* the **time-cost product** (Section VI-B), which values a 10% time
  improvement exactly as much as a 10% cost increase hurts.
"""

from __future__ import annotations

import enum

from repro.simulator.cluster import Measurement


class Objective(enum.Enum):
    """A minimisation objective over measurements."""

    TIME = "time"
    COST = "cost"
    TIME_COST_PRODUCT = "product"

    def value_of(self, measurement: Measurement) -> float:
        """The scalar to minimise, extracted from one measurement."""
        if self is Objective.TIME:
            return measurement.execution_time_s
        if self is Objective.COST:
            return measurement.cost_usd
        return measurement.execution_time_s * measurement.cost_usd

    @property
    def trace_key(self) -> str:
        """The :meth:`BenchmarkTrace.objective_values` key for this objective."""
        return self.value

    @classmethod
    def from_name(cls, name: str) -> Objective:
        """Parse ``"time"``, ``"cost"`` or ``"product"`` (case-insensitive)."""
        try:
            return cls(name.lower())
        except ValueError:
            known = ", ".join(o.value for o in cls)
            raise ValueError(f"unknown objective {name!r}; known: {known}") from None
