"""``arrow`` — the command-line interface of the reproduction.

Subcommands:

* ``arrow catalog`` — VM catalogs: the paper's 18 types (default), plus
  ``list``/``show <name>`` over the registered large catalogs,
* ``arrow workloads`` — the 107-workload registry, filterable,
* ``arrow trace generate|stats`` — build or summarise a benchmark trace,
* ``arrow search`` — run an optimiser on one workload and show the trace,
* ``arrow queue-worker`` — pull and execute cells from a durable work queue,
* ``arrow queue-status`` — inspect a durable work queue (read-only),
* ``arrow profile`` — simulate a run's sysstat time series on one VM,
* ``arrow figure`` — render a cached experiment figure in the terminal,
* ``arrow experiments`` — list the paper's experiment index.

Every command is pure stdout; exit status 0 on success, 2 on usage
errors (argparse), 1 on runtime errors with a message on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.analysis.ascii_plots import bar_chart, line_chart
from repro.cloud.catalog import DEFAULT_CATALOG_NAME, catalog_names, get_catalog
from repro.cloud.spot import PRICING_MODES, SpotMarket, SpotPolicy
from repro.cloud.vmtypes import get_vm_type
from repro.core.augmented_bo import AugmentedBO
from repro.core.baselines import ExhaustiveSearch, RandomSearch
from repro.core.hybrid_bo import HybridBO
from repro.core.naive_bo import NaiveBO
from repro.core.objectives import Objective
from repro.core.smbo import MeasurementError
from repro.core.stopping import EIThreshold, PredictionDeltaThreshold
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SpotInterruptions,
    parse_fault_plan,
)
from repro.simulator.perfmodel import PerformanceModel
from repro.simulator.sar import record_sar_trace
from repro.trace.generate import canonical_trace, generate_trace
from repro.trace.io import load_trace, save_trace
from repro.workloads.registry import default_registry
from repro.workloads.spec import Category, Framework, InputSize

_METHODS = {
    "naive": NaiveBO,
    "augmented": AugmentedBO,
    "hybrid": HybridBO,
    "random": RandomSearch,
    "exhaustive": ExhaustiveSearch,
}


# -- catalog -------------------------------------------------------------


def _print_catalog_table(catalog) -> None:
    print(
        f"{'name':<16} {'vCPU':>4} {'RAM GiB':>8} {'clock':>6} "
        f"{'disk MB/s':>10} {'local SSD':>9} {'$/hour':>8}"
    )
    for vm in catalog:
        print(
            f"{vm.name:<16} {vm.vcpus:>4} {vm.ram_gb:>8.2f} {vm.clock_factor:>6.2f} "
            f"{vm.disk_mbps:>10.0f} {'yes' if vm.local_ssd else 'no':>9} "
            f"{catalog.prices.price_per_hour(vm):>8.3f}"
        )


def _cmd_catalog(args: argparse.Namespace) -> int:
    if args.action == "list":
        print(f"{'catalog':<12} {'types':>5} {'families':>8}  providers")
        for name in catalog_names():
            catalog = get_catalog(name)
            print(
                f"{name:<12} {len(catalog):>5} {len(catalog.families):>8}  "
                f"{', '.join(catalog.providers)}"
            )
        return 0
    if args.action == "show":
        if not args.name:
            print("error: 'arrow catalog show' needs a catalog name", file=sys.stderr)
            return 1
        try:
            catalog = get_catalog(args.name)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"{catalog.name}: {catalog.description}")
        print(
            f"{len(catalog)} types, {len(catalog.families)} families, "
            f"providers: {', '.join(catalog.providers)}"
        )
        for provider in catalog.providers:
            low, high = catalog.price_range(provider)
            print(f"  {provider}: ${low:.4f}-{high:.4f}/hour")
        print()
        _print_catalog_table(catalog)
        return 0
    # Bare "arrow catalog": the paper's 18 types, as always.
    _print_catalog_table(get_catalog(DEFAULT_CATALOG_NAME))
    return 0


# -- workloads -----------------------------------------------------------


def _cmd_workloads(args: argparse.Namespace) -> int:
    registry = default_registry()
    framework = Framework(args.framework) if args.framework else None
    category = Category(args.category) if args.category else None
    size = InputSize(args.size) if args.size else None
    matches = registry.filter(
        application=args.application,
        framework=framework,
        category=category,
        input_size=size,
    )
    for workload in matches:
        print(f"{workload.workload_id:<40} {workload.category.value}")
    print(f"-- {len(matches)} workloads", file=sys.stderr)
    return 0


# -- trace ---------------------------------------------------------------


def _cmd_trace_generate(args: argparse.Namespace) -> int:
    try:
        catalog = get_catalog(args.catalog)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    trace = generate_trace(seed=args.seed, catalog=catalog)
    save_trace(trace, args.out)
    print(f"wrote trace (catalog {args.catalog}, seed {args.seed}) to {args.out}")
    return 0


def _load_trace_arg(path: str | None, catalog: str = DEFAULT_CATALOG_NAME):
    """A trace to search over: a file, or the named catalog's canonical trace.

    A trace file records its own catalog, so ``--catalog`` only selects
    which canonical trace to synthesise when no ``--trace`` is given.
    """
    return load_trace(path) if path else canonical_trace(catalog)


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    trace = _load_trace_arg(args.path)
    objective = args.objective
    spreads = [trace.spread(w, objective) for w in trace.registry]
    winners: dict[str, int] = {}
    for workload in trace.registry:
        name = trace.best_vm(workload, objective).name
        winners[name] = winners.get(name, 0) + 1
    print(f"objective: {objective}")
    print(
        f"worst/best spread: max {max(spreads):.1f}x, "
        f"median {float(np.median(spreads)):.1f}x"
    )
    print("\noptimal-VM histogram:")
    ordered = dict(sorted(winners.items(), key=lambda kv: -kv[1]))
    print(bar_chart({k: float(v) for k, v in ordered.items()}, unit=" workloads"))
    return 0


# -- search ----------------------------------------------------------------


def _add_optimizer_flags(parser: argparse.ArgumentParser) -> None:
    """The flags that define *which optimiser runs and how*.

    Shared verbatim between ``arrow search`` (the coordinator) and
    ``arrow queue-worker`` (the fleet): both feed
    :func:`_build_optimizer` and :func:`_search_grid_key`, so a worker
    started with the same flags reproduces the coordinator's grid key —
    and one started with different flags is refused by the key guard
    before it can record a result the coordinator never asked for.
    """
    parser.add_argument("--method", choices=sorted(_METHODS), default="augmented")
    parser.add_argument(
        "--objective", choices=["time", "cost", "product"], default="time"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--refit-fraction", type=float, default=1.0,
        help="fraction of surrogate trees regrown per step for the "
        "augmented/hybrid methods (1.0 = full refit, bit-identical "
        "classic behaviour; smaller = faster warm-start refits)",
    )
    parser.add_argument(
        "--tree-builder", choices=["vectorized", "classic"],
        default="vectorized",
        help="surrogate tree-growth strategy for the augmented/hybrid "
        "methods: level-synchronous batched growth (default) or the "
        "per-node recursive grower (statistically equivalent)",
    )
    parser.add_argument(
        "--gp-gradient", choices=["analytic", "numeric"], default="analytic",
        help="likelihood-gradient mode for the naive/hybrid GP surrogate: "
        "fused analytic value+gradient fits (default, one Cholesky per "
        "L-BFGS-B step) or the legacy finite-difference path",
    )
    parser.add_argument(
        "--batch-size", type=int, default=1,
        help="suggestions measured per acquisition round (1 = classic "
        "sequential loop, bit-identical; q > 1 = constant-liar q-EI on "
        "GP methods, top-q prediction delta on tree methods)",
    )
    parser.add_argument(
        "--liar", choices=["min", "mean", "max"], default="min",
        help="constant-liar strategy for GP batch suggestion: fantasize "
        "picked points at the min (optimistic, spreads the batch), mean, "
        "or max (pessimistic, clusters) of the observed values",
    )
    parser.add_argument(
        "--batch-workers", type=int, default=1,
        help="processes measuring one batch concurrently (1 = inline; "
        "results are identical for any value — each measurement is "
        "seeded from (search seed, iteration, catalog index))",
    )
    parser.add_argument("--stop", choices=["none", "ei", "delta"], default="none")
    parser.add_argument("--stop-value", type=float, default=None)
    parser.add_argument(
        "--max-measurements", type=int, default=None, metavar="N",
        help="hard budget on charged measurements per run (default: "
        "exhaust the catalog; mainly for large catalogs and smoke runs)",
    )
    parser.add_argument("--trace", help="trace JSON (default: canonical)")
    parser.add_argument(
        "--catalog", choices=catalog_names(), default=DEFAULT_CATALOG_NAME,
        help="VM catalog to search over when no --trace is given (the "
        "named catalog's canonical trace is synthesised on the fly); a "
        "--trace file carries its own catalog and wins",
    )
    parser.add_argument(
        "--measure-retries", type=int, default=0,
        help="retries per failed measurement (each attempt is charged)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.0,
        help="base exponential-backoff delay in seconds between retries",
    )
    parser.add_argument(
        "--quarantine-after", type=int, default=3,
        help="consecutive failures before a VM is quarantined",
    )
    parser.add_argument(
        "--fault-plan",
        help='inject faults, e.g. "transient:rate=0.3+outage:vm=c3.large"',
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault plan's randomness",
    )
    parser.add_argument(
        "--pricing", choices=sorted(PRICING_MODES), default="on-demand",
        help="pricing tier measurements buy: on-demand (default, "
        "bit-identical historic behaviour) or spot — discounted runs "
        "under a seeded revocation market with partial-credit resume "
        "and an on-demand fallback ladder",
    )
    parser.add_argument(
        "--spot-seed", type=int, default=0,
        help="seed of the deterministic spot market (discounts, "
        "volatility and revocation hazard per VM)",
    )
    parser.add_argument(
        "--spot-fallback-after", type=int, default=2,
        help="spot revocations of one observation before it falls back "
        "to on-demand at full price",
    )
    parser.add_argument(
        "--spot-resume-credit", type=float, default=1.0,
        help="fraction of a revoked run's completed work the next "
        "attempt resumes from (1.0 = perfect checkpoints, 0.0 = full "
        "redo)",
    )


def _build_optimizer(args: argparse.Namespace, environment, seed: int | None = None):
    objective = Objective.from_name(args.objective)
    stopping = None
    if args.stop == "ei":
        stopping = EIThreshold(fraction=args.stop_value or 0.1)
    elif args.stop == "delta":
        stopping = PredictionDeltaThreshold(threshold=args.stop_value or 1.1)
    retry_policy = RetryPolicy(
        max_attempts=args.measure_retries + 1,
        backoff_base_s=args.retry_backoff,
    )
    extra = {}
    if args.method in ("augmented", "hybrid"):
        extra["refit_fraction"] = args.refit_fraction
        extra["tree_builder"] = args.tree_builder
    if args.method in ("naive", "hybrid"):
        extra["gp_gradient"] = args.gp_gradient
    batch_size = getattr(args, "batch_size", 1)
    fanout = None
    if batch_size > 1 and getattr(args, "batch_workers", 1) > 1:
        from repro.parallel.batch import MeasurementFanout

        fanout = MeasurementFanout("pool", workers=args.batch_workers)
    cls = _METHODS[args.method]
    return cls(
        environment,
        objective=objective,
        stopping=stopping,
        seed=args.seed if seed is None else seed,
        retry_policy=retry_policy,
        quarantine_after=args.quarantine_after,
        max_measurements=getattr(args, "max_measurements", None),
        batch_size=batch_size,
        liar=getattr(args, "liar", "min"),
        measurement_fanout=fanout,
        spot=_spot_policy(args),
        **extra,
    )


def _spot_policy(args: argparse.Namespace) -> SpotPolicy | None:
    """The spot policy the flags ask for, or None in on-demand mode."""
    if getattr(args, "pricing", "on-demand") != "spot":
        return None
    return SpotPolicy(
        market=SpotMarket(seed=getattr(args, "spot_seed", 0)),
        fallback_after=getattr(args, "spot_fallback_after", 2),
        resume_credit=getattr(args, "spot_resume_credit", 1.0),
    )


def _wrap_faults(args: argparse.Namespace, environment):
    """Fault-inject an environment when a plan (or spot pricing) asks.

    ``--pricing spot`` guarantees a market-driven spot-revocation rule
    is present: spot capacity without revocation risk would just be a
    discount.  A ``--fault-plan`` that already carries a market rule is
    kept as written; otherwise the market (seeded by ``--spot-seed``)
    is appended to the plan, or forms a single-rule plan of its own.
    """
    rules = ()
    if args.fault_plan:
        plan = parse_fault_plan(args.fault_plan, seed=args.fault_seed)
        rules = plan.rules
    if getattr(args, "pricing", "on-demand") == "spot" and not any(
        isinstance(rule, SpotInterruptions) and rule.market is not None
        for rule in rules
    ):
        market = SpotMarket(seed=getattr(args, "spot_seed", 0))
        rules = (*rules, SpotInterruptions(market=market))
    if rules:
        environment = FaultInjector(
            environment, FaultPlan(rules, seed=args.fault_seed)
        )
    return environment


def _search_environment(args: argparse.Namespace, trace):
    """The workload's replay environment, fault-injected when asked."""
    return _wrap_faults(args, trace.environment(args.workload))


def _fault_summary(result) -> str | None:
    """One line describing a run's failures, or None when fault-free."""
    if not result.failure_count and not result.quarantined_vms:
        return None
    parts = [
        f"failed attempts: {result.failure_count} "
        f"(charged cost {result.charged_cost})"
    ]
    if result.retry_wait_s:
        parts.append(f"retry wait {result.retry_wait_s:.1f}s")
    if result.quarantined_vms:
        parts.append(f"quarantined: {', '.join(result.quarantined_vms)}")
    return "; ".join(parts)


def _search_grid_key(args: argparse.Namespace) -> str:
    """A cache key for one ``arrow search`` repeat campaign.

    Encodes every argument that changes results, so two invocations
    share cache entries exactly when their runs would be identical.
    """
    import zlib

    slug = args.workload.replace("/", "~").replace(" ", "_")
    relevant = (
        args.method, args.objective, args.stop, args.stop_value,
        args.measure_retries, args.retry_backoff, args.quarantine_after,
        args.fault_plan, args.fault_seed, args.refit_fraction,
        args.tree_builder, args.gp_gradient,
    )
    # Batched searches produce different measurement sequences, so the
    # batch shape joins the key — but only when batching is on, which
    # keeps every pre-existing q=1 digest stable.  --batch-workers is
    # deliberately excluded: results are identical for any worker count.
    if getattr(args, "batch_size", 1) > 1:
        relevant = (*relevant, args.batch_size, args.liar)
    # Same stability rule for the catalog axis and measurement budget:
    # they join the key only when set off their defaults, so every
    # pre-existing default-catalog digest is unchanged.
    if getattr(args, "catalog", DEFAULT_CATALOG_NAME) != DEFAULT_CATALOG_NAME:
        relevant = (*relevant, args.catalog)
    if getattr(args, "max_measurements", None) is not None:
        relevant = (*relevant, args.max_measurements)
    # Spot pricing changes retries, charges and events, so its whole
    # configuration joins the key — but only when enabled, keeping every
    # pre-existing on-demand digest stable.
    if getattr(args, "pricing", "on-demand") == "spot":
        relevant = (
            *relevant, args.pricing, args.spot_seed,
            args.spot_fallback_after, args.spot_resume_credit,
        )
    digest = zlib.crc32(repr(relevant).encode()) & 0xFFFFFFFF
    return f"search-{args.method}-{slug}-{digest:08x}"


def _run_repeats(args: argparse.Namespace, trace, objective):
    """All repeat results for ``arrow search --repeats N``, in order.

    With ``--cache-dir`` the repeats run as a one-workload
    :class:`~repro.analysis.runner.RunGrid` through the caching
    :class:`~repro.analysis.runner.ExperimentRunner`, which journals
    every completed repeat — an interrupted campaign picks up with
    ``--resume`` instead of recomputing.  Without it they stream
    straight through the supervised engine.
    """
    from repro.parallel.engine import run_cells

    def factory(environment, _objective, seed):
        return _build_optimizer(args, _wrap_faults(args, environment), seed=seed)

    def seed_fn(_workload: str, repeat: int) -> int:
        return repeat

    if args.cache_dir:
        from repro.analysis.runner import ExperimentRunner, RunGrid

        runner = ExperimentRunner(trace, cache_dir=args.cache_dir)
        grid = RunGrid(
            key=_search_grid_key(args),
            factory=factory,
            objective=objective,
            workload_ids=(args.workload,),
            repeats=args.repeats,
        )
        results = runner.run(
            grid,
            workers=args.workers,
            resume=args.resume,
            cell_timeout=args.cell_timeout,
            cell_retries=args.cell_retries,
            pool_restarts=args.pool_restarts,
            seed_fn=seed_fn,
            executor=args.executor,
            queue_workers=args.queue_workers,
            queue_lease_s=args.queue_lease,
            queue_max_attempts=args.queue_max_attempts,
            queue_stall_timeout_s=args.queue_stall_timeout,
            queue_pricing=getattr(args, "pricing", "on-demand"),
        )
        return results[args.workload]

    return [
        result
        for _cell, result in run_cells(
            trace=trace,
            factory=factory,
            objective=objective,
            cells=[(args.workload, repeat) for repeat in range(args.repeats)],
            workers=args.workers,
            seed_fn=seed_fn,
            cell_timeout=args.cell_timeout,
            cell_retries=args.cell_retries,
            pool_restarts=args.pool_restarts,
            executor=args.executor,
        )
    ]


def _cmd_search(args: argparse.Namespace) -> int:
    if args.executor == "queue" and not args.cache_dir:
        print(
            "error: --executor queue requires --cache-dir (the durable "
            "queue lives next to the cache file)",
            file=sys.stderr,
        )
        return 1
    trace = _load_trace_arg(args.trace, args.catalog)
    if args.workload not in trace.registry:
        print(f"error: unknown workload {args.workload!r}", file=sys.stderr)
        return 1
    objective = Objective.from_name(args.objective)
    optimum = trace.objective_values(args.workload, objective.trace_key).min()
    try:
        if args.repeats == 1:
            optimizer = _build_optimizer(args, _search_environment(args, trace))
            try:
                result = optimizer.run()
            finally:
                if optimizer._fanout is not None:
                    optimizer._fanout.close()
            print(f"{'step':>4}  {'VM type':<12} {'value':>12} {'best':>12}")
            for step in result.steps:
                retried = f"  ({step.attempts} attempts)" if step.attempts > 1 else ""
                print(
                    f"{step.step:>4}  {step.vm_name:<12} "
                    f"{step.objective_value:>12.4f} {step.best_value:>12.4f}{retried}"
                )
            print(
                f"\nstopped by {result.stopped_by} after {result.search_cost} "
                f"measurements; best {result.best_vm_name} "
                f"({result.best_value / optimum:.2f}x optimum)"
            )
            summary = _fault_summary(result)
            if summary:
                print(summary)
            return 0

        # Repeats are independent cells, so they parallelise across the
        # engine's workers; per-cell seeding (seed = repeat index) keeps
        # the summary identical for any --workers value, any supervision
        # settings, and any interruption/resume history.
        results = _run_repeats(args, trace, objective)
        costs = [r.search_cost for r in results]
        charged = [r.charged_cost for r in results]
        ratios = [r.best_value / optimum for r in results]
    except (ValueError, MeasurementError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(
        f"{args.method} on {args.workload} ({objective.value}), "
        f"{args.repeats} repeats:"
    )
    print(
        f"  search cost: median {float(np.median(costs)):.1f} "
        f"(min {min(costs)}, max {max(costs)})"
    )
    if charged != costs:
        print(
            f"  charged cost (failures included): median "
            f"{float(np.median(charged)):.1f} (max {max(charged)})"
        )
    print(f"  best-vs-optimum: median {float(np.median(ratios)):.3f}x")
    return 0


# -- queue worker / status -------------------------------------------------


def _queue_workloads(queue) -> list[str]:
    """Distinct workload ids currently enqueued (sorted)."""
    return sorted(
        row[0]
        for row in queue._con.execute("SELECT DISTINCT workload FROM cells")
        if row[0]
    )


def _check_queue_key(args: argparse.Namespace, queue, workloads: list[str]) -> str | None:
    """Refuse a queue this worker's flags cannot faithfully serve.

    The coordinator recorded its cache key (grid key + objective) in the
    queue; a worker rebuilding optimisers from CLI flags must reproduce
    that key exactly, or its results would be values the coordinator's
    settings never produced.  Returns an error message, or ``None`` when
    the worker may proceed.
    """
    if args.allow_key_mismatch:
        return None
    if len(workloads) != 1:
        return (
            f"queue {queue.path} holds {len(workloads)} workloads; 'arrow "
            "queue-worker' can only verify single-workload search campaigns "
            "(pass --allow-key-mismatch to serve it anyway)"
        )
    probe = argparse.Namespace(**vars(args))
    probe.workload = workloads[0]
    expected = f"{_search_grid_key(probe)}__{Objective.from_name(args.objective).value}"
    if queue.cache_key != expected:
        return (
            f"queue {queue.path} belongs to grid {queue.cache_key!r} but "
            f"these flags produce {expected!r}; align the optimiser flags "
            "with the coordinator's, or pass --allow-key-mismatch"
        )
    return None


def _cmd_queue_worker(args: argparse.Namespace) -> int:
    import time as _time

    from repro.parallel.queue import WorkQueue, default_owner, queue_worker_loop

    queue_path = Path(args.queue_db)
    deadline = _time.monotonic() + args.wait_for_db
    while not queue_path.exists():
        if _time.monotonic() >= deadline:
            print(f"error: no queue database at {queue_path}", file=sys.stderr)
            return 1
        _time.sleep(0.1)
    try:
        queue = WorkQueue.attach(queue_path)
    except (ValueError, FileNotFoundError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        trace = _load_trace_arg(args.trace, args.catalog)
        problem = _check_queue_key(args, queue, _queue_workloads(queue))
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return 1

        def run_lease(lease):
            environment = _wrap_faults(args, trace.environment(lease.workload_id))
            # The stored per-cell seed — not this process's --seed —
            # decides the run, so any worker reproduces any cell.
            return _build_optimizer(args, environment, seed=lease.seed).run()

        owner = args.owner if args.owner else default_owner()
        completed = queue_worker_loop(
            queue,
            run_lease,
            owner=owner,
            poll_interval_s=args.poll_interval,
            exit_when_drained=not args.follow,
            max_cells=args.max_cells,
        )
        print(f"worker {owner}: processed {completed} cell(s)")
        return 0
    finally:
        queue.close()


def _queue_partial_credit(queue) -> float | None:
    """Attempt-units spot billing saved across the queue's done cells.

    Sums ``attempts - sum(charges)`` over every stored done payload —
    zero for an on-demand grid, positive once revocations banked
    partial charges.  ``None`` when nothing is done yet (nothing to
    report) or the queue predates charge accounting.
    """
    totals = []
    for _cell, state, payload, _error, _attempts in queue.terminal_cells():
        if state != "done" or not isinstance(payload, dict):
            continue
        steps = payload.get("steps", [])
        failures = payload.get("failures", [])
        attempts = len(steps) + len(failures)
        charged = sum(
            float(row[3]) if len(row) == 4 else 1.0 for row in steps
        ) + sum(float(row[4]) if len(row) == 5 else 1.0 for row in failures)
        totals.append(attempts - charged)
    if not totals:
        return None
    return sum(totals)


def _cmd_queue_status(args: argparse.Namespace) -> int:
    from repro.parallel.queue import WorkQueue

    queue_path = Path(args.queue_db)
    if not queue_path.exists():
        print(f"error: no queue database at {queue_path}", file=sys.stderr)
        return 1
    try:
        queue = WorkQueue.attach(queue_path, readonly=True)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    try:
        counts = queue.counts()
        total = sum(counts.values())
        print(f"queue {queue_path}")
        print(
            f"grid {queue.cache_key}; pricing {queue.pricing}; "
            f"lease {queue.lease_duration_s:.0f}s; "
            f"max attempts {queue.max_attempts}"
        )
        print(f"\ncells ({total} total):")
        for state, count in counts.items():
            print(f"  {state:<9} {count}")
        leases = queue.leases()
        if leases:
            print("\nactive leases:")
            print(
                f"  {'workload':<40} {'rep':>3} {'owner':<28} "
                f"{'att':>3} {'pricing':<9} {'beat age':>9} {'expires':>8}"
            )
            for (workload_id, repeat), owner, attempts, age, left in leases:
                print(
                    f"  {workload_id:<40} {repeat:>3} {owner:<28} "
                    f"{attempts:>3} {queue.pricing:<9} {age:>8.1f}s {left:>7.1f}s"
                )
        credit = _queue_partial_credit(queue)
        if credit is not None:
            print(
                f"\ncumulative partial credit: {credit:.6f} attempt-unit(s) "
                "saved vs unit billing across done cells"
            )
        histogram = queue.attempt_histogram()
        if histogram:
            print("\nattempts histogram:")
            print(
                bar_chart(
                    {f"{attempts} attempt(s)": float(count)
                     for attempts, count in histogram.items()},
                    unit=" cells",
                )
            )
        return 0
    finally:
        queue.close()


# -- profile --------------------------------------------------------------


def _cmd_profile(args: argparse.Namespace) -> int:
    registry = default_registry()
    if args.workload not in registry:
        print(f"error: unknown workload {args.workload!r}", file=sys.stderr)
        return 1
    try:
        vm = get_vm_type(args.vm)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    workload = registry.get(args.workload)
    model = PerformanceModel()
    breakdown = model.breakdown(vm, workload.profile)
    sar = record_sar_trace(
        vm, workload.profile, breakdown, interval_s=args.interval, seed=args.seed
    )
    matrix = sar.to_matrix()

    print(f"{args.workload} on {vm.name}: {breakdown.total_time_s:.0f}s simulated")
    print(
        f"compute {breakdown.compute_time_s:.0f}s, disk {breakdown.disk_time_s:.0f}s, "
        f"paging {'yes' if breakdown.paging else 'no'} "
        f"(memory ratio {breakdown.memory_ratio:.2f})\n"
    )
    print(
        line_chart(
            {
                "cpu user %": matrix[:, 0].tolist(),
                "iowait %": matrix[:, 1].tolist(),
                "mem commit %": matrix[:, 3].tolist(),
            },
            x_label=f"samples ({args.interval:.0f}s interval)",
            y_label="utilisation",
            y_min=0.0,
        )
    )
    summary = sar.aggregate()
    print(
        f"\nsummary: cpu {summary.cpu_user_pct:.0f}%, iowait "
        f"{summary.cpu_iowait_pct:.0f}%, mem commit {summary.mem_commit_pct:.0f}%, "
        f"disk util {summary.disk_util_pct:.0f}%, disk wait {summary.disk_wait_ms:.1f}ms"
    )
    return 0


# -- figure -----------------------------------------------------------------


def _cmd_figure(args: argparse.Namespace) -> int:
    path = Path(args.dir) / f"{args.name}.json"
    if not path.exists():
        print(
            f"error: {path} not found — run scripts/build_cache.py first",
            file=sys.stderr,
        )
        return 1
    payload = json.loads(path.read_text())

    if args.name in {"fig9a", "fig9b"}:
        print(
            line_chart(
                {label: curve for label, curve in payload["curves"].items()},
                x_label="search cost (# of measurements)",
                y_label="fraction of workloads solved",
                y_min=0.0,
                y_max=1.0,
            )
        )
        return 0
    if args.name == "fig1":
        print(
            line_chart(
                {"naive-bo": payload["curve"]},
                x_label="search cost (# of measurements)",
                y_label="fraction of workloads solved",
                y_min=0.0,
                y_max=1.0,
            )
        )
        print(f"\nregions: {payload['regions']}")
        return 0
    if args.name in {"fig2"}:
        print(
            line_chart(
                {
                    "median": payload["median_curve"],
                    "q1": payload["q1_curve"],
                    "q3": payload["q3_curve"],
                },
                x_label="search cost (# of measurements)",
                y_label="execution time (normalised)",
            )
        )
        return 0
    if args.name == "fig8":
        bars = {
            row["vm"]: row["normalised_time"] for row in payload["rows"]
        }
        print(bar_chart(bars, unit="x"))
        return 0

    print(json.dumps(payload, indent=2))
    return 0


# -- experiments -------------------------------------------------------------


_EXPERIMENT_INDEX = (
    ("table1", "Table I — applications and workloads"),
    ("fig1", "Figure 1 — Naive BO search-cost CDF"),
    ("fig2", "Figure 2 — Naive BO trace on ALS"),
    ("fig3", "Figure 3 — worst/best VM spreads"),
    ("fig4", "Figure 4 — extreme VMs are not optimal"),
    ("fig5", "Figure 5 — input size moves the optimum"),
    ("fig6", "Figure 6 — cost levels the playing field"),
    ("fig7", "Figure 7 — kernel fragility"),
    ("sec3c", "Section III-C — initial-point sensitivity"),
    ("fig8", "Figure 8 — memory bottleneck in low-level metrics"),
    ("fig9a", "Figure 9(a) — CDFs, time objective"),
    ("fig9b", "Figure 9(b) — CDFs, cost objective"),
    ("fig10", "Figure 10 — example search traces"),
    ("fig11", "Figure 11 — stopping-criterion trade-off"),
    ("fig12", "Figure 12 — win/draw/loss, cost"),
    ("fig13", "Figure 13 — time-cost product"),
)


def _cmd_experiments(args: argparse.Namespace) -> int:
    for name, description in _EXPERIMENT_INDEX:
        print(f"{name:<8} {description}")
    return 0


# -- parser -------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``arrow`` argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="arrow",
        description="Low-level augmented Bayesian optimisation for cloud VM selection.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    catalog = sub.add_parser(
        "catalog",
        help="show VM catalogs (bare: the paper's 18 types)",
        description="Bare 'arrow catalog' prints the paper's 18-type "
        "default catalog.  'arrow catalog list' enumerates every "
        "registered catalog; 'arrow catalog show NAME' prints one "
        "catalog's summary (type count, families, per-provider price "
        "ranges) and full table.",
    )
    catalog.add_argument(
        "action", nargs="?", choices=["list", "show"],
        help="list registered catalogs, or show one by name",
    )
    catalog.add_argument(
        "name", nargs="?",
        help="catalog name for 'show', e.g. 'aws-large'",
    )
    catalog.set_defaults(func=_cmd_catalog)

    workloads = sub.add_parser("workloads", help="list the 107 workloads")
    workloads.add_argument("--framework", choices=[f.value for f in Framework])
    workloads.add_argument("--category", choices=[c.value for c in Category])
    workloads.add_argument("--size", choices=[s.value for s in InputSize])
    workloads.add_argument("--application")
    workloads.set_defaults(func=_cmd_workloads)

    trace = sub.add_parser("trace", help="generate or summarise a benchmark trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_gen = trace_sub.add_parser("generate", help="sweep all workloads and save")
    trace_gen.add_argument("--seed", type=int, default=2018)
    trace_gen.add_argument(
        "--catalog", choices=catalog_names(), default=DEFAULT_CATALOG_NAME,
        help="VM catalog to sweep (default: the paper's 18 types)",
    )
    trace_gen.add_argument("--out", required=True)
    trace_gen.set_defaults(func=_cmd_trace_generate)
    trace_stats = trace_sub.add_parser("stats", help="summarise a trace")
    trace_stats.add_argument("--path", help="trace JSON (default: canonical)")
    trace_stats.add_argument(
        "--objective", choices=["time", "cost", "product"], default="time"
    )
    trace_stats.set_defaults(func=_cmd_trace_stats)

    search = sub.add_parser("search", help="run an optimiser on one workload")
    search.add_argument("workload", help='e.g. "als/Spark 2.1/medium"')
    _add_optimizer_flags(search)
    search.add_argument("--repeats", type=int, default=1)
    search.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for --repeats > 1 (results are identical "
        "for any worker count)",
    )
    search.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline per repeat when running on a worker "
        "pool; a straggler past it is cancelled and completed serially",
    )
    search.add_argument(
        "--cell-retries", type=int, default=0,
        help="extra pool attempts for a repeat whose worker raised, "
        "before the final in-process attempt",
    )
    search.add_argument(
        "--pool-restarts", type=int, default=2,
        help="worker deaths survived (pool healed, cell re-run) before "
        "the remaining repeats degrade to serial execution",
    )
    search.add_argument(
        "--cache-dir",
        help="cache/journal directory for --repeats campaigns; completed "
        "repeats persist across invocations and interruptions",
    )
    search.add_argument(
        "--resume", action="store_true",
        help="with --cache-dir: fold results journaled by an interrupted "
        "campaign back in and recompute only the cells it lost in flight",
    )
    search.add_argument(
        "--executor", choices=["auto", "serial", "pool", "queue", "vector"],
        default="auto",
        help="execution backend for --repeats campaigns: auto (serial or "
        "fork pool from --workers), serial, pool, queue — a durable "
        "SQLite work queue next to the cache (requires --cache-dir) that "
        "survives crashes and admits external 'arrow queue-worker' "
        "processes — or vector, which steps every search in lock-step "
        "and batches per-round surrogate algebra across them "
        "(in-process, bit-identical results to serial)",
    )
    search.add_argument(
        "--queue-workers", type=int, default=None, metavar="N",
        help="with --executor queue: local pull-workers the coordinator "
        "forks (default: --workers; 0 = rely on an external fleet)",
    )
    search.add_argument(
        "--queue-lease", type=float, default=30.0, metavar="SECONDS",
        help="with --executor queue: heartbeat-free lease lifetime before "
        "a worker is presumed dead and its cell requeued",
    )
    search.add_argument(
        "--queue-max-attempts", type=int, default=3,
        help="with --executor queue: attempts per cell before it is "
        "parked for the coordinator to complete serially",
    )
    search.add_argument(
        "--queue-stall-timeout", type=float, default=60.0, metavar="SECONDS",
        help="with --executor queue: with work outstanding but no live "
        "workers or queue activity for this long, the coordinator "
        "completes the remaining cells itself",
    )
    search.set_defaults(func=_cmd_search)

    queue_worker = sub.add_parser(
        "queue-worker",
        help="pull and execute cells from a durable work queue",
        description="Join a grid's worker fleet: claim leased cells from "
        "the queue database an 'arrow search --executor queue' "
        "coordinator maintains, execute them with their stored "
        "deterministic seeds, and record results durably.  Safe to run "
        "many in parallel, on one box or across boxes sharing the "
        "filesystem; a killed worker's cells are requeued automatically.",
    )
    queue_worker.add_argument(
        "--queue-db", required=True,
        help="the queue database file (<cache>.queue next to the cache)",
    )
    _add_optimizer_flags(queue_worker)
    queue_worker.add_argument(
        "--owner", help="worker identity (default: host-pid-token)"
    )
    queue_worker.add_argument(
        "--poll-interval", type=float, default=0.2, metavar="SECONDS",
        help="idle sleep between claim attempts",
    )
    queue_worker.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="stop after this many cells (default: unbounded)",
    )
    queue_worker.add_argument(
        "--follow", action="store_true",
        help="keep polling after the queue drains instead of exiting "
        "(serve a campaign that is still enqueueing)",
    )
    queue_worker.add_argument(
        "--wait-for-db", type=float, default=0.0, metavar="SECONDS",
        help="wait up to this long for the queue database to appear "
        "(lets workers start before the coordinator)",
    )
    queue_worker.add_argument(
        "--allow-key-mismatch", action="store_true",
        help="serve a queue whose recorded grid key does not match the "
        "optimiser flags given here (DANGER: a mismatched worker "
        "records results the coordinator's settings never produced)",
    )
    queue_worker.set_defaults(func=_cmd_queue_worker)

    queue_status = sub.add_parser(
        "queue-status",
        help="inspect a durable work queue (read-only)",
        description="Per-state cell counts, active leases with heartbeat "
        "ages, and the attempt histogram of one queue database.  Opens "
        "the file read-only — safe while a grid is running.",
    )
    queue_status.add_argument(
        "--queue-db", required=True,
        help="the queue database file (<cache>.queue next to the cache)",
    )
    queue_status.set_defaults(func=_cmd_queue_status)

    profile = sub.add_parser("profile", help="simulate a run's sysstat time series")
    profile.add_argument("workload")
    profile.add_argument("vm", help='e.g. "c4.2xlarge"')
    profile.add_argument("--interval", type=float, default=1.0)
    profile.add_argument("--seed", type=int, default=0)
    profile.set_defaults(func=_cmd_profile)

    figure = sub.add_parser("figure", help="render a cached experiment figure")
    figure.add_argument("name", choices=[name for name, _ in _EXPERIMENT_INDEX])
    figure.add_argument("--dir", default="results/figures")
    figure.set_defaults(func=_cmd_figure)

    experiments = sub.add_parser("experiments", help="list the experiment index")
    experiments.set_defaults(func=_cmd_experiments)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
