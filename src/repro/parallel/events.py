"""Progress events streamed by the parallel experiment engine.

One :class:`CellEvent` per lifecycle transition of a grid cell (a
``(workload, repeat)`` pair), plus engine-level supervision notices.
The stream is advisory — consumers (progress bars, logs, tests) observe
it through the ``on_event`` callback; results never depend on it.

Events come in two scopes: *cell-scoped* events carry the
``(workload_id, repeat)`` pair they describe (build them with
:meth:`CellEvent.for_cell`), while *grid-scoped* events describe the
execution plane itself — worker planning, pool restarts, degradation —
and carry no cell (build them with :meth:`CellEvent.for_grid`).
"""

from __future__ import annotations

from dataclasses import dataclass

#: The cell-event vocabulary.
#:
#: Cell-scoped kinds:
#:
#: * ``cell_scheduled`` / ``cell_finished`` — normal lifecycle;
#: * ``cell_failed`` — the cell raised an application error in a worker;
#: * ``cell_cached`` — the runner served the cell from its cache (the
#:   engine never sees those cells);
#: * ``cell_resumed`` — the runner recovered the cell from a grid
#:   checkpoint journal left by an interrupted run;
#: * ``cell_retried`` — the supervisor re-attempted a failed cell
#:   (resubmitted to the pool, or fell back to the parent's serial
#:   path — ``detail`` says which);
#: * ``cell_timeout`` — the cell exceeded its wall-clock deadline, was
#:   cancelled, and will be completed serially;
#: * ``cell_pinned`` — the cell killed the pool repeatedly (a *poison
#:   cell*) and is quarantined to serial execution instead of
#:   re-breaking a fresh pool.
#:
#: Durable-queue cell-scoped kinds (``--executor queue``):
#:
#: * ``lease_claimed`` — a queue worker atomically leased the cell
#:   (``detail`` carries the owner and attempt count);
#: * ``lease_expired`` — a lease passed its heartbeat deadline: the
#:   worker is presumed dead mid-cell;
#: * ``worker_lost`` — the companion to ``lease_expired``, naming the
#:   presumed-dead worker;
#: * ``cell_requeued`` — the cell went back to ``pending`` for another
#:   attempt (after a lost lease or a worker-side application error).
#:
#: Grid-scoped kinds:
#:
#: * ``pool_planned`` — the engine's worker-clamping decision (requested
#:   vs effective workers) before any cell runs;
#: * ``pool_restarted`` — a dead worker pool was healed within the
#:   restart budget;
#: * ``pool_degraded`` — the restart budget is exhausted; remaining
#:   cells run serially in the parent;
#: * ``queue_stalled`` — the queue coordinator saw outstanding work but
#:   no live workers or queue activity for its stall timeout, and is
#:   completing the remaining cells itself;
#: * ``vector_planned`` — the vectorized executor is about to drive the
#:   grid's searches in lock-step rounds (``detail`` carries the cell
#:   count).
CELL_EVENT_KINDS: tuple[str, ...] = (
    "cell_scheduled",
    "cell_finished",
    "cell_failed",
    "cell_cached",
    "cell_resumed",
    "cell_retried",
    "cell_timeout",
    "cell_pinned",
    "lease_claimed",
    "lease_expired",
    "worker_lost",
    "cell_requeued",
    "pool_planned",
    "pool_restarted",
    "pool_degraded",
    "queue_stalled",
    "vector_planned",
)

#: Kinds that never name a cell.
GRID_EVENT_KINDS: tuple[str, ...] = (
    "pool_planned",
    "pool_restarted",
    "pool_degraded",
    "queue_stalled",
    "vector_planned",
)


@dataclass(frozen=True, slots=True)
class CellEvent:
    """One engine progress event.

    Attributes:
        kind: one of :data:`CELL_EVENT_KINDS`.
        workload_id: the cell's workload (``None`` for grid-scoped events).
        repeat: the cell's repeat index (``None`` for grid-scoped events).
        detail: free-form context — error text, degradation reason.
    """

    kind: str
    workload_id: str | None = None
    repeat: int | None = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in CELL_EVENT_KINDS:
            raise ValueError(
                f"unknown cell event kind {self.kind!r}; known: {CELL_EVENT_KINDS}"
            )

    @classmethod
    def for_cell(
        cls, kind: str, cell: tuple[str, int], detail: str = ""
    ) -> CellEvent:
        """A cell-scoped event for one ``(workload_id, repeat)`` pair."""
        workload_id, repeat = cell
        return cls(kind=kind, workload_id=workload_id, repeat=repeat, detail=detail)

    @classmethod
    def for_grid(cls, kind: str, detail: str = "") -> CellEvent:
        """A grid-scoped (cell-less) event — no fabricated ``(None, None)``
        pair at call sites; the constructor *is* the statement that the
        event concerns the whole execution plane."""
        if kind not in GRID_EVENT_KINDS:
            raise ValueError(
                f"{kind!r} is not a grid-scoped event kind; known: {GRID_EVENT_KINDS}"
            )
        return cls(kind=kind, detail=detail)

    @property
    def cell(self) -> tuple[str, int] | None:
        """The ``(workload_id, repeat)`` pair, or None for grid scope."""
        if self.workload_id is None or self.repeat is None:
            return None
        return (self.workload_id, self.repeat)
