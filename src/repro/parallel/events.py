"""Progress events streamed by the parallel experiment engine.

One :class:`CellEvent` per lifecycle transition of a grid cell (a
``(workload, repeat)`` pair), plus engine-level degradation notices.
The stream is advisory — consumers (progress bars, logs, tests) observe
it through the ``on_event`` callback; results never depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The cell-event vocabulary.  ``cell_cached`` is emitted by the runner
#: for cache hits (the engine never sees those cells); ``pool_planned``
#: reports the engine's worker-clamping decision (requested vs effective
#: workers) before any cell runs; ``pool_degraded`` fires when the
#: worker pool dies and the engine falls back to serial execution for
#: the remaining cells.
CELL_EVENT_KINDS: tuple[str, ...] = (
    "cell_scheduled",
    "cell_finished",
    "cell_failed",
    "cell_cached",
    "pool_planned",
    "pool_degraded",
)


@dataclass(frozen=True, slots=True)
class CellEvent:
    """One engine progress event.

    Attributes:
        kind: one of :data:`CELL_EVENT_KINDS`.
        workload_id: the cell's workload (``None`` for engine-level events).
        repeat: the cell's repeat index (``None`` for engine-level events).
        detail: free-form context — error text, degradation reason.
    """

    kind: str
    workload_id: str | None = None
    repeat: int | None = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in CELL_EVENT_KINDS:
            raise ValueError(
                f"unknown cell event kind {self.kind!r}; known: {CELL_EVENT_KINDS}"
            )
