"""Crash-safe grid checkpointing: the journal behind ``--resume``.

A long grid run writes its consolidated JSON cache only periodically —
an atomic whole-file rewrite per cell would be quadratic — so a killed
process could lose up to a flush interval of finished work.  The
:class:`GridCheckpoint` closes that gap: every completed cell is
appended to a JSON-Lines journal next to the cache file and ``fsync``'d
immediately, so after any interruption (SIGTERM, ``kill -9``, power
loss) at most the *in-flight* cells are lost.  On ``resume=True`` the
runner folds journaled results back into its cache map and skips those
cells entirely; on a clean completion the journal's contents are in the
consolidated cache and the journal is deleted.

Journal lines are self-describing and defensive:

* each line carries the grid's ``cache_key``, so a journal accidentally
  pointed at a different grid contributes nothing;
* a truncated final line — the footprint of dying mid-append — is
  skipped, never fatal;
* payloads are validated by the caller with the same schema check as
  cache entries, so a corrupt line degrades to recomputing one cell.

:func:`flush_on_signal` complements the journal for *graceful*
interruption: while active, SIGINT/SIGTERM first flush the
consolidated cache (journaled results are already safe), then re-raise
as ``KeyboardInterrupt`` / ``SystemExit`` so the process still dies
with conventional semantics.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from pathlib import Path

logger = logging.getLogger(__name__)

#: One grid cell: (workload_id, repeat).
Cell = tuple[str, int]

#: Journal files live next to the cache file they shadow.
JOURNAL_SUFFIX = ".journal"


class GridCheckpoint:
    """Append-only, fsync-per-record journal of completed grid cells.

    Args:
        path: the journal file (conventionally the cache path with
            :data:`JOURNAL_SUFFIX`).
        cache_key: identity of the grid this journal belongs to —
            recorded in and checked against every line.
    """

    def __init__(self, path: str | Path, cache_key: str) -> None:
        self.path = Path(path)
        self.cache_key = cache_key
        self._handle = None

    @classmethod
    def for_cache(cls, cache_path: str | Path) -> GridCheckpoint:
        """The journal shadowing one cache file, under the canonical
        naming every sibling artefact follows: ``<stem>.journal`` next
        to the cache, keyed by the cache's stem (the durable work queue
        derives ``<stem>.queue`` the same way)."""
        cache_path = Path(cache_path)
        return cls(
            cache_path.with_suffix(JOURNAL_SUFFIX), cache_key=cache_path.stem
        )

    # -- writing ----------------------------------------------------------

    def record(self, cell: Cell, payload: dict) -> None:
        """Durably append one completed cell's result payload.

        The line is flushed and ``fsync``'d before returning, so a
        subsequent hard kill cannot lose this cell.
        """
        workload_id, repeat = cell
        line = json.dumps(
            {
                "cache_key": self.cache_key,
                "workload": workload_id,
                "repeat": repeat,
                "result": payload,
            }
        )
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the append handle (records stay on disk)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def clear(self) -> None:
        """Remove the journal — its contents live in the cache now."""
        self.close()
        self.path.unlink(missing_ok=True)

    # -- reading ----------------------------------------------------------

    def load(self) -> dict[Cell, dict]:
        """Journaled ``{cell: payload}`` for this grid, tolerating damage.

        Unparseable lines (a truncated tail from a hard kill) and lines
        recorded for a different ``cache_key`` are skipped with a log
        message; they cost one recomputation each, never a crash.
        """
        if not self.path.exists():
            return {}
        entries: dict[Cell, dict] = {}
        skipped = 0
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict):
                skipped += 1
                continue
            if record.get("cache_key") != self.cache_key:
                skipped += 1
                continue
            workload_id = record.get("workload")
            repeat = record.get("repeat")
            payload = record.get("result")
            if (
                not isinstance(workload_id, str)
                or not isinstance(repeat, int)
                or not isinstance(payload, dict)
            ):
                skipped += 1
                continue
            entries[(workload_id, repeat)] = payload
        if skipped:
            logger.warning(
                "grid journal %s: skipped %d unusable line(s) "
                "(truncated tail or foreign cache_key)",
                self.path, skipped,
            )
        return entries

    def __enter__(self) -> GridCheckpoint:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@contextmanager
def flush_on_signal(
    flush: Callable[[], None],
    signals: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[None]:
    """Run a block with SIGINT/SIGTERM flushing state before dying.

    On a handled signal the ``flush`` callback runs once, the previous
    handlers are restored, and the conventional exception is raised
    (``KeyboardInterrupt`` for SIGINT, ``SystemExit(128 + signum)``
    otherwise) so callers and shells observe a normal interruption.

    Outside the main thread — where Python forbids ``signal.signal`` —
    the block simply runs unprotected.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous: dict[int, object] = {}

    def handler(signum: int, frame) -> None:
        for sig, old in previous.items():
            signal.signal(sig, old)
        try:
            flush()
        finally:
            if signum == signal.SIGINT:
                raise KeyboardInterrupt
            raise SystemExit(128 + signum)

    try:
        for sig in signals:
            previous[sig] = signal.signal(sig, handler)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        for sig, old in previous.items():
            signal.signal(sig, old)
        yield
        return
    try:
        yield
    finally:
        for sig, old in previous.items():
            try:
                signal.signal(sig, old)
            except (ValueError, OSError):  # pragma: no cover
                pass
