"""Within-search measurement fan-out for batched suggestions.

:class:`MeasurementFanout` implements the
:data:`~repro.core.smbo.BatchFanout` callable the optimiser's batched
loop accepts: it takes one round's measurement cells (``(iteration,
catalog index)`` tuples) plus the optimiser's self-seeded
:meth:`~repro.core.smbo.SequentialOptimizer.batch_measure_task` and
returns every outcome.  Correctness never depends on the backend: each
task derives its random streams from its spawn key, and the optimiser
commits outcomes in catalog-index order, so serial and pool runs are
bit-identical.

The ``"pool"`` backend reuses the execution plane's
:class:`~repro.parallel.executors.ForkPoolExecutor` — per-worker pipes,
contained crashes — with the optimiser's bound task as the worker's
``run_cell``.  Workers see the optimiser through fork-inherited memory;
their copies of its environment go stale as the parent commits rounds,
which is harmless because every task re-arms the environment's streams
from its spawn key before measuring.  The pool is forked lazily on the
first fan-out and persists across rounds (and searches, while the task
callable compares equal); a cell whose worker crashed or errored is
deterministically re-run inline in the parent, so a lost worker costs
capacity, never a measurement.

This module sits above :mod:`repro.core` (the optimiser only sees the
injected callable), keeping the core loop import-free of the execution
plane.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.parallel.executors import ForkPoolExecutor

#: Fan-out backends: ``"serial"`` runs tasks inline in pick order,
#: ``"pool"`` spreads them over a persistent fork pool.
BATCH_BACKENDS = ("serial", "pool")


class MeasurementFanout:
    """Runs one batch's measurement tasks on a pluggable backend.

    Args:
        backend: one of :data:`BATCH_BACKENDS`.
        workers: pool capacity for the ``"pool"`` backend (a value of 1
            short-circuits to the inline path — a one-worker pool is
            pure overhead).
    """

    def __init__(self, backend: str = "serial", workers: int = 1) -> None:
        if backend not in BATCH_BACKENDS:
            raise ValueError(
                f"unknown batch backend {backend!r}; known: {BATCH_BACKENDS}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.workers = workers
        self._executor: ForkPoolExecutor | None = None
        self._run_task: Callable[[Any], Any] | None = None

    def __call__(
        self, cells: list[Any], run_task: Callable[[Any], Any]
    ) -> list[Any]:
        if self.backend == "serial" or self.workers == 1 or len(cells) <= 1:
            return [run_task(cell) for cell in cells]
        executor = self._ensure_executor(run_task)
        for cell in cells:
            executor.submit(cell)
        pending = set(cells)
        outcomes: list[Any] = []
        failed: list[Any] = []
        while pending:
            for outcome in executor.poll():
                pending.discard(outcome.cell)
                if outcome.ok:
                    outcomes.append(outcome.result)
                else:
                    failed.append(outcome.cell)
        # Worker-side crash or error: the task is self-seeded, so an
        # inline re-run in the parent reproduces exactly what the worker
        # would have returned.
        for cell in sorted(failed):
            outcomes.append(run_task(cell))
        return outcomes

    def _ensure_executor(self, run_task: Callable[[Any], Any]) -> ForkPoolExecutor:
        # Bound methods compare equal across property accesses on the
        # same instance, so one optimiser keeps one pool across rounds;
        # a different task (another search's optimiser) rebuilds it.
        if self._executor is not None and self._run_task == run_task:
            return self._executor
        self.close()
        self._executor = ForkPoolExecutor(self.workers, run_task)
        self._run_task = run_task
        return self._executor

    def close(self) -> None:
        """Shut the pool down (it re-forks lazily on the next fan-out)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            self._run_task = None

    def __enter__(self) -> MeasurementFanout:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
