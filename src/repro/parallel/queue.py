"""Durable work queue + leased ``QueueExecutor``: crash-surviving grids.

The fork pool keeps a grid alive across *worker* deaths, but the grid
itself still lives inside one process tree: kill the coordinator, or
want workers on other boxes, and the campaign is over.  This module
moves grid state out of process memory into a single SQLite file next to
the runner cache (WAL mode), so execution survives anything short of
losing the disk:

* :class:`WorkQueue` — the durable queue itself.  One row per grid
  cell, with states ``pending → leased → done`` (or ``failed`` /
  ``poisoned``), a monotonic ``attempts`` counter against
  ``max_attempts``, per-lease deadlines refreshed by worker heartbeats,
  and every transition mirrored into an append-only ``events`` table so
  the run's robustness history is part of the persisted record.
  Lease claims are a *single guarded* ``UPDATE … RETURNING`` statement,
  so two workers racing for the same cell can never both win — SQLite's
  write lock serialises them and the ``state='pending'`` guard stops
  the loser.
* :func:`queue_worker_loop` — the pull-loop a worker runs: claim a
  lease, start a heartbeat thread, execute the cell with its *stored*
  deterministic seed, then write the result and mark the cell ``done``
  in one guarded transaction.  A worker killed with ``SIGKILL``
  mid-cell simply stops heartbeating; once its lease deadline passes,
  any sweep (a sibling worker's next claim, or the coordinator's poll)
  requeues the cell with ``attempts + 1`` — *at-least-once* execution.
  The completion guard (``state='leased' AND lease_owner=me``) makes
  result *recording* effectively once: a worker that lost its lease
  cannot overwrite the rightful result.
* :class:`QueueExecutor` — the coordinator side, implementing the
  four-method :class:`~repro.parallel.executors.CellExecutor` protocol,
  so :class:`~repro.parallel.supervisor.Supervisor` policy and the
  runner's journal/cache machinery apply unchanged.  ``submit``
  enqueues durable rows; ``poll`` sweeps expired leases (emitting
  ``lease_expired`` / ``worker_lost`` / ``cell_requeued``
  :class:`~repro.parallel.events.CellEvent`\\ s), forwards fleet
  activity from the events table, and returns terminal cells as
  outcomes.  It can fork local pull-workers (``workers > 0``) and/or
  serve an external fleet started with ``arrow queue-worker``.  A cell
  whose attempts exhaust ``max_attempts`` through worker deaths is
  parked ``poisoned`` and reported as a crash, which the engine's
  queue-mode supervision config (``poison_threshold=1``) turns into
  exactly one serial completion by the coordinator.

Results cross the queue as the runner's canonical JSON payloads
(:func:`~repro.analysis.runner.result_to_payload`), which round-trip
byte-identically, so the consolidated cache of a queue run — however
many workers died along the way — is byte-identical to a serial run.
Requeue delays after application errors reuse the one backoff
implementation in the codebase, :class:`~repro.faults.retry.RetryPolicy`
(exponential with seeded jitter), via each cell's ``not_before`` column.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import secrets
import sqlite3
import threading
import time
from collections.abc import Callable, Iterable
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.objectives import Objective
from repro.core.result import SearchResult
from repro.faults.retry import RetryPolicy
from repro.parallel.events import CellEvent
from repro.parallel.executors import Cell, CellFn, CellOutcome

#: Queue DB files live next to the cache file they feed.
QUEUE_SUFFIX = ".queue"

#: Bump when the queue schema changes; mismatching files are refused.
QUEUE_SCHEMA_VERSION = 1

#: The cell-state vocabulary (one row per grid cell).
CELL_STATES = ("pending", "leased", "done", "failed", "poisoned")

#: Default total attempts per cell before it is parked.
DEFAULT_MAX_ATTEMPTS = 3

#: Default lease lifetime without a heartbeat before a worker is
#: presumed dead and its cell requeued.
DEFAULT_LEASE_S = 30.0

#: Default requeue-backoff schedule for cells whose execution raised an
#: application error in a worker (worker deaths requeue immediately —
#: the failure was the worker's, not the cell's).
DEFAULT_REQUEUE_POLICY = RetryPolicy(
    max_attempts=DEFAULT_MAX_ATTEMPTS,
    backoff_base_s=0.1,
    backoff_factor=2.0,
    backoff_max_s=30.0,
    jitter=0.5,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS cells (
    workload      TEXT    NOT NULL,
    repeat        INTEGER NOT NULL,
    seed          INTEGER NOT NULL,
    state         TEXT    NOT NULL DEFAULT 'pending'
                  CHECK (state IN ('pending','leased','done','failed','poisoned')),
    attempts      INTEGER NOT NULL DEFAULT 0,
    priority      INTEGER NOT NULL DEFAULT 0,
    seq           INTEGER NOT NULL DEFAULT 0,
    not_before    REAL    NOT NULL DEFAULT 0.0,
    lease_owner   TEXT,
    lease_expires REAL,
    heartbeat_at  REAL,
    error         TEXT,
    result        TEXT,
    PRIMARY KEY (workload, repeat)
);
CREATE INDEX IF NOT EXISTS cells_by_state ON cells (state, priority, seq);
CREATE TABLE IF NOT EXISTS events (
    id       INTEGER PRIMARY KEY AUTOINCREMENT,
    at       REAL    NOT NULL,
    kind     TEXT    NOT NULL,
    workload TEXT,
    repeat   INTEGER,
    detail   TEXT    NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


@dataclass(frozen=True, slots=True)
class Lease:
    """One claimed cell: the worker's contract until deadline or done.

    Attributes:
        workload_id: the cell's workload.
        repeat: the cell's repeat index.
        seed: the deterministic optimiser seed *stored at enqueue time*,
            so every worker — local fork or remote CLI — computes the
            byte-identical result regardless of who runs the cell or
            how many times it was requeued.
        attempts: 1-based attempt number this lease represents.
        owner: the claiming worker's identity.
        deadline: wall-clock instant the lease expires without a
            heartbeat.
    """

    workload_id: str
    repeat: int
    seed: int
    attempts: int
    owner: str
    deadline: float

    @property
    def cell(self) -> Cell:
        """The ``(workload_id, repeat)`` pair."""
        return (self.workload_id, self.repeat)


#: Executes one leased cell to a result (seed comes from the lease).
LeaseFn = Callable[[Lease], SearchResult]


class WorkQueue:
    """SQLite-backed durable queue of grid cells with leased items.

    One file (WAL mode) next to the runner cache holds every cell's
    state, attempt count, lease, result payload, and transition history.
    All mutations are short guarded transactions, safe under concurrent
    workers in other processes (or boxes sharing a filesystem with
    POSIX locking).

    Args:
        path: the queue database file (conventionally the cache path
            with :data:`QUEUE_SUFFIX`).
        cache_key: identity of the grid this queue belongs to — stored
            in ``meta`` and checked on every open, so a queue pointed at
            the wrong grid refuses to serve.
        max_attempts: total attempts per cell before it is parked
            (``failed`` for application errors, ``poisoned`` for worker
            deaths).
        lease_duration_s: heartbeat-free lease lifetime before the
            worker is presumed dead.
        pricing: the pricing mode the grid runs under (``"on-demand"``
            or ``"spot"``) — recorded in ``meta`` so workers and status
            tools agree on how cell charges are to be read.
        clock: wall-clock source (injectable for deterministic tests).

    Raises:
        ValueError: if the file belongs to a different grid or schema.
    """

    def __init__(
        self,
        path: str | Path,
        cache_key: str,
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        lease_duration_s: float = DEFAULT_LEASE_S,
        pricing: str = "on-demand",
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if lease_duration_s <= 0:
            raise ValueError(
                f"lease_duration_s must be positive, got {lease_duration_s}"
            )
        self.path = Path(path)
        self.cache_key = cache_key
        self.max_attempts = max_attempts
        self.lease_duration_s = lease_duration_s
        self.pricing = pricing
        self._clock = clock
        self.readonly = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._con = sqlite3.connect(self.path, timeout=30.0, isolation_level=None)
        self._con.execute("PRAGMA journal_mode=WAL")
        self._con.execute("PRAGMA synchronous=NORMAL")
        self._con.execute("PRAGMA busy_timeout=30000")
        self._con.executescript(_SCHEMA)
        with self._tx():
            self._check_meta(write=True)

    @classmethod
    def attach(
        cls,
        path: str | Path,
        *,
        readonly: bool = False,
        clock: Callable[[], float] = time.time,
    ) -> WorkQueue:
        """Open an existing queue, adopting its recorded parameters.

        Workers and status tools attach instead of constructing, so the
        whole fleet agrees on ``cache_key`` / ``max_attempts`` /
        ``lease_duration_s`` — whatever the coordinator recorded wins.

        Args:
            path: the queue database file (must exist).
            readonly: open without write access (safe while a grid
                runs — ``arrow queue-status`` uses this).
            clock: wall-clock source.

        Raises:
            FileNotFoundError: if the file does not exist.
            ValueError: if the file is not a (current-schema) queue.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no queue database at {path}")
        queue = cls.__new__(cls)
        queue.path = path
        queue._clock = clock
        queue.readonly = readonly
        if readonly:
            queue._con = sqlite3.connect(
                f"file:{path}?mode=ro", uri=True, timeout=30.0, isolation_level=None
            )
        else:
            queue._con = sqlite3.connect(path, timeout=30.0, isolation_level=None)
        queue._con.execute("PRAGMA busy_timeout=30000")
        try:
            meta = dict(queue._con.execute("SELECT key, value FROM meta"))
        except sqlite3.OperationalError as error:
            # The file exists but the schema is still being created by
            # the coordinator (or it is not a queue at all).
            queue._con.close()
            raise ValueError(f"{path} is not a work queue database: {error}") from error
        if meta.get("schema") != str(QUEUE_SCHEMA_VERSION):
            queue._con.close()
            raise ValueError(
                f"{path} is not a schema-{QUEUE_SCHEMA_VERSION} work queue "
                f"(found {meta.get('schema')!r})"
            )
        queue.cache_key = meta["cache_key"]
        queue.max_attempts = int(meta["max_attempts"])
        queue.lease_duration_s = float(meta["lease_duration_s"])
        # Queues predating the pricing meta key are on-demand grids.
        queue.pricing = meta.get("pricing", "on-demand")
        return queue

    def _check_meta(self, write: bool) -> None:
        meta = dict(self._con.execute("SELECT key, value FROM meta"))
        if meta:
            if meta.get("schema") != str(QUEUE_SCHEMA_VERSION):
                raise ValueError(
                    f"{self.path} has queue schema {meta.get('schema')!r}, "
                    f"expected {QUEUE_SCHEMA_VERSION}"
                )
            if meta.get("cache_key") != self.cache_key:
                raise ValueError(
                    f"{self.path} belongs to grid {meta.get('cache_key')!r}, "
                    f"not {self.cache_key!r}"
                )
        if write:
            # The coordinator is authoritative for queue parameters; the
            # fleet reads them back through attach().
            self._con.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                [
                    ("schema", str(QUEUE_SCHEMA_VERSION)),
                    ("cache_key", self.cache_key),
                    ("max_attempts", str(self.max_attempts)),
                    ("lease_duration_s", repr(self.lease_duration_s)),
                    ("pricing", self.pricing),
                ],
            )

    @staticmethod
    def remove(path: str | Path) -> None:
        """Delete a queue database and its WAL sidecar files."""
        path = Path(path)
        for candidate in (path, path.with_name(path.name + "-wal"),
                          path.with_name(path.name + "-shm")):
            candidate.unlink(missing_ok=True)

    # -- transactions -----------------------------------------------------

    @contextmanager
    def _tx(self):
        """A short IMMEDIATE transaction (write lock up front, no
        deferred-upgrade deadlocks between concurrent workers)."""
        self._con.execute("BEGIN IMMEDIATE")
        try:
            yield
        except BaseException:
            self._con.execute("ROLLBACK")
            raise
        self._con.execute("COMMIT")

    def _event(self, kind: str, cell: Cell | None, detail: str = "") -> None:
        workload_id, repeat = cell if cell is not None else (None, None)
        self._con.execute(
            "INSERT INTO events (at, kind, workload, repeat, detail) "
            "VALUES (?, ?, ?, ?, ?)",
            (self._clock(), kind, workload_id, repeat, detail),
        )

    # -- producing --------------------------------------------------------

    def enqueue(self, items: Iterable[tuple[Cell, int]], front: bool = False) -> int:
        """Insert (or revive) cells as ``pending``; returns rows touched.

        Each item is ``((workload_id, repeat), seed)`` — the seed is
        stored so any worker reproduces the cell deterministically.
        Conflicting rows are reset to ``pending`` *except*:

        * ``done`` rows with a stored result — finished work survives a
          coordinator restart; ``poll`` serves it without recomputing;
        * live (unexpired) leases — a worker is actively computing the
          cell; its completion will land normally.

        ``front=True`` queues ahead of the existing backlog (the
        supervisor resubmits retried cells this way).
        """
        now = self._clock()
        touched = 0
        with self._tx():
            priority = 0
            if front:
                row = self._con.execute("SELECT MIN(priority) FROM cells").fetchone()
                priority = (row[0] if row[0] is not None else 0) - 1
            row = self._con.execute("SELECT MAX(seq) FROM cells").fetchone()
            seq = row[0] if row[0] is not None else 0
            for (workload_id, repeat), seed in items:
                seq += 1
                cursor = self._con.execute(
                    """
                    INSERT INTO cells (workload, repeat, seed, state, attempts,
                                       priority, seq, not_before)
                    VALUES (?, ?, ?, 'pending', 0, ?, ?, 0.0)
                    ON CONFLICT(workload, repeat) DO UPDATE SET
                        state='pending', seed=excluded.seed, attempts=0,
                        priority=excluded.priority, seq=excluded.seq,
                        not_before=0.0, lease_owner=NULL, lease_expires=NULL,
                        heartbeat_at=NULL, error=NULL, result=NULL
                    WHERE NOT (cells.state = 'done' AND cells.result IS NOT NULL)
                      AND NOT (cells.state = 'leased' AND cells.lease_expires > ?)
                    """,
                    (workload_id, repeat, seed, priority, seq, now),
                )
                touched += cursor.rowcount
        return touched

    # -- claiming / worker side -------------------------------------------

    def claim(self, owner: str) -> Lease | None:
        """Atomically lease the oldest claimable cell, or ``None``.

        Sweeps expired leases first (any participant can recover a dead
        sibling's cell — the fleet needs no coordinator to make
        progress), then claims via one guarded ``UPDATE … RETURNING``:
        concurrent claimers are serialised by SQLite's write lock and
        the ``state='pending'`` guard, so two workers can never hold
        the same cell.
        """
        self.sweep_expired()
        now = self._clock()
        deadline = now + self.lease_duration_s
        with self._tx():
            row = self._con.execute(
                """
                UPDATE cells SET
                    state='leased', lease_owner=?, lease_expires=?,
                    heartbeat_at=?, attempts=attempts + 1
                WHERE (workload, repeat) IN (
                    SELECT workload, repeat FROM cells
                    WHERE state='pending' AND not_before <= ?
                    ORDER BY priority, seq LIMIT 1
                )
                RETURNING workload, repeat, seed, attempts
                """,
                (owner, deadline, now, now),
            ).fetchone()
            if row is None:
                return None
            workload_id, repeat, seed, attempts = row
            self._event(
                "lease_claimed",
                (workload_id, repeat),
                f"owner={owner} attempt={attempts}/{self.max_attempts}",
            )
        return Lease(
            workload_id=workload_id,
            repeat=repeat,
            seed=seed,
            attempts=attempts,
            owner=owner,
            deadline=deadline,
        )

    def heartbeat(self, cell: Cell, owner: str) -> bool:
        """Refresh ``owner``'s lease on ``cell``; False = lease lost."""
        now = self._clock()
        cursor = self._con.execute(
            "UPDATE cells SET heartbeat_at=?, lease_expires=? "
            "WHERE workload=? AND repeat=? AND state='leased' AND lease_owner=?",
            (now, now + self.lease_duration_s, cell[0], cell[1], owner),
        )
        return cursor.rowcount == 1
    def complete(self, cell: Cell, owner: str, payload: dict) -> bool:
        """Record ``cell``'s result and mark it ``done``, atomically.

        The guard (``state='leased' AND lease_owner=owner``) is what
        makes recording effectively-once under at-least-once execution:
        a worker whose lease expired (and whose cell was re-run
        elsewhere) gets ``False`` and must discard its result.
        """
        with self._tx():
            cursor = self._con.execute(
                """
                UPDATE cells SET
                    state='done', result=?, error=NULL,
                    lease_owner=NULL, lease_expires=NULL, heartbeat_at=NULL
                WHERE workload=? AND repeat=? AND state='leased' AND lease_owner=?
                """,
                (json.dumps(payload), cell[0], cell[1], owner),
            )
            if cursor.rowcount != 1:
                return False
            self._event("cell_done", cell, f"owner={owner}")
        return True

    def fail(
        self, cell: Cell, owner: str, error: str, requeue_delay_s: float = 0.0
    ) -> bool:
        """Report an application error for a leased cell.

        Under ``max_attempts`` the cell returns to ``pending`` with
        ``not_before = now + requeue_delay_s`` (the caller computes the
        delay from :class:`~repro.faults.retry.RetryPolicy`); at the
        budget it is parked ``failed`` with the error recorded.
        Returns False if ``owner`` no longer held the lease.
        """
        now = self._clock()
        with self._tx():
            row = self._con.execute(
                "SELECT attempts FROM cells WHERE workload=? AND repeat=? "
                "AND state='leased' AND lease_owner=?",
                (cell[0], cell[1], owner),
            ).fetchone()
            if row is None:
                return False
            (attempts,) = row
            if attempts >= self.max_attempts:
                self._con.execute(
                    "UPDATE cells SET state='failed', error=?, lease_owner=NULL, "
                    "lease_expires=NULL, heartbeat_at=NULL "
                    "WHERE workload=? AND repeat=?",
                    (error, cell[0], cell[1]),
                )
                self._event(
                    "cell_failed", cell,
                    f"attempt {attempts}/{self.max_attempts}: {error}",
                )
            else:
                self._con.execute(
                    "UPDATE cells SET state='pending', error=?, not_before=?, "
                    "lease_owner=NULL, lease_expires=NULL, heartbeat_at=NULL "
                    "WHERE workload=? AND repeat=?",
                    (error, now + max(0.0, requeue_delay_s), cell[0], cell[1]),
                )
                self._event(
                    "cell_requeued", cell,
                    f"attempt {attempts}/{self.max_attempts} failed ({error}); "
                    f"backoff {max(0.0, requeue_delay_s):.2f}s",
                )
        return True

    # -- lease expiry ------------------------------------------------------

    def sweep_expired(self) -> list[tuple[Cell, str, int, str]]:
        """Requeue (or poison) every cell whose lease deadline passed.

        A worker killed with ``SIGKILL`` never reports — it just stops
        heartbeating.  This sweep is how its cells come back: each one
        is returned to ``pending`` with its ``attempts`` already
        counted by the claim, or parked ``poisoned`` once attempts
        reached ``max_attempts`` (a cell that keeps killing workers
        must not eat the whole fleet).

        Returns ``(cell, new_state, attempts, owner)`` transitions.
        """
        now = self._clock()
        transitions: list[tuple[Cell, str, int, str]] = []
        with self._tx():
            rows = self._con.execute(
                "SELECT workload, repeat, attempts, lease_owner FROM cells "
                "WHERE state='leased' AND lease_expires <= ?",
                (now,),
            ).fetchall()
            for workload_id, repeat, attempts, owner in rows:
                cell = (workload_id, repeat)
                self._event(
                    "lease_expired", cell,
                    f"owner={owner} attempt={attempts}/{self.max_attempts}",
                )
                self._event("worker_lost", cell, f"owner={owner}")
                if attempts >= self.max_attempts:
                    new_state = "poisoned"
                    self._con.execute(
                        "UPDATE cells SET state='poisoned', lease_owner=NULL, "
                        "lease_expires=NULL, heartbeat_at=NULL "
                        "WHERE workload=? AND repeat=?",
                        cell,
                    )
                    self._event(
                        "cell_poisoned", cell,
                        f"{attempts} attempts lost their workers",
                    )
                else:
                    new_state = "pending"
                    self._con.execute(
                        "UPDATE cells SET state='pending', not_before=?, "
                        "lease_owner=NULL, lease_expires=NULL, heartbeat_at=NULL "
                        "WHERE workload=? AND repeat=?",
                        (now, workload_id, repeat),
                    )
                    self._event(
                        "cell_requeued", cell,
                        f"lease of {owner} expired; "
                        f"attempt {attempts}/{self.max_attempts} lost",
                    )
                transitions.append((cell, new_state, attempts, owner or ""))
        return transitions

    def expire_owner(self, owner: str) -> list[tuple[Cell, str, int, str]]:
        """Expire ``owner``'s leases immediately (its process is known
        dead — e.g. the coordinator reaped a local worker), without
        waiting out the lease deadline."""
        self._con.execute(
            "UPDATE cells SET lease_expires=? WHERE state='leased' AND lease_owner=?",
            (self._clock() - 1.0, owner),
        )
        return self.sweep_expired()

    # -- coordinator reads -------------------------------------------------

    def terminal_cells(self) -> list[tuple[Cell, str, dict | None, str | None, int]]:
        """Every ``done`` / ``failed`` / ``poisoned`` row:
        ``(cell, state, payload, error, attempts)``.  A stored payload
        that fails to parse is surfaced as an error instead."""
        rows = self._con.execute(
            "SELECT workload, repeat, state, result, error, attempts FROM cells "
            "WHERE state IN ('done','failed','poisoned') ORDER BY seq"
        ).fetchall()
        out: list[tuple[Cell, str, dict | None, str | None, int]] = []
        for workload_id, repeat, state, result, error, attempts in rows:
            payload: dict | None = None
            if result is not None:
                try:
                    payload = json.loads(result)
                except json.JSONDecodeError as exc:
                    state, error = "failed", f"QueuePayloadError: {exc}"
            out.append(((workload_id, repeat), state, payload, error, attempts))
        return out

    def counts(self) -> dict[str, int]:
        """Cell count per state (states with no cells included as 0)."""
        counts = dict.fromkeys(CELL_STATES, 0)
        for state, count in self._con.execute(
            "SELECT state, COUNT(*) FROM cells GROUP BY state"
        ):
            counts[state] = count
        return counts

    def leases(self) -> list[tuple[Cell, str, int, float, float]]:
        """Active leases: ``(cell, owner, attempts, heartbeat_age_s,
        expires_in_s)`` — the live view ``arrow queue-status`` prints."""
        now = self._clock()
        return [
            ((w, r), owner, attempts, now - heartbeat, expires - now)
            for w, r, owner, attempts, heartbeat, expires in self._con.execute(
                "SELECT workload, repeat, lease_owner, attempts, heartbeat_at, "
                "lease_expires FROM cells WHERE state='leased' ORDER BY seq"
            )
        ]

    def attempt_histogram(self) -> dict[int, int]:
        """``{attempts: cells}`` over every row that was ever claimed."""
        return {
            attempts: count
            for attempts, count in self._con.execute(
                "SELECT attempts, COUNT(*) FROM cells WHERE attempts > 0 "
                "GROUP BY attempts ORDER BY attempts"
            )
        }

    def drained(self) -> bool:
        """True when no cell is ``pending`` or ``leased`` (workers that
        exit-when-drained use this as their stop condition)."""
        row = self._con.execute(
            "SELECT COUNT(*) FROM cells WHERE state IN ('pending','leased')"
        ).fetchone()
        return row[0] == 0

    def last_event_id(self) -> int:
        """The newest event row id (0 for an empty table)."""
        row = self._con.execute("SELECT MAX(id) FROM events").fetchone()
        return row[0] or 0

    def events_since(self, after_id: int) -> list[tuple[int, str, Cell | None, str]]:
        """Events newer than ``after_id``: ``(id, kind, cell, detail)``."""
        out: list[tuple[int, str, Cell | None, str]] = []
        for event_id, kind, workload_id, repeat, detail in self._con.execute(
            "SELECT id, kind, workload, repeat, detail FROM events "
            "WHERE id > ? ORDER BY id",
            (after_id,),
        ):
            cell = None if workload_id is None else (workload_id, repeat)
            out.append((event_id, kind, cell, detail))
        return out

    # -- reconciliation ----------------------------------------------------

    def reconcile(self, done_cells: Iterable[Cell]) -> int:
        """Mark cells the cache already holds as ``done`` — never re-lease
        work whose result is durable elsewhere.

        The journal/cache is the source of truth on resume: a cell it
        holds must not be claimable, whatever state a stale queue row is
        in.  Rows are upserted (a queue predating this grid's cells gets
        ``done`` markers), existing stored results are kept, and only
        rows that actually changed state are counted and evented.
        """
        changed = 0
        with self._tx():
            row = self._con.execute("SELECT MAX(seq) FROM cells").fetchone()
            seq = row[0] if row[0] is not None else 0
            for workload_id, repeat in done_cells:
                seq += 1
                cursor = self._con.execute(
                    """
                    INSERT INTO cells (workload, repeat, seed, state, seq)
                    VALUES (?, ?, 0, 'done', ?)
                    ON CONFLICT(workload, repeat) DO UPDATE SET
                        state='done', lease_owner=NULL, lease_expires=NULL,
                        heartbeat_at=NULL, not_before=0.0
                    WHERE cells.state != 'done'
                    """,
                    (workload_id, repeat, seq),
                )
                if cursor.rowcount:
                    changed += 1
                    self._event(
                        "cell_reconciled", (workload_id, repeat),
                        "cache holds this cell's result",
                    )
        return changed

    def record_external(self, cell: Cell, payload: dict | None, detail: str) -> None:
        """Mark ``cell`` ``done`` with a result produced outside the
        fleet (the coordinator's serial fallback for parked cells)."""
        with self._tx():
            row = self._con.execute("SELECT MAX(seq) FROM cells").fetchone()
            seq = (row[0] if row[0] is not None else 0) + 1
            self._con.execute(
                """
                INSERT INTO cells (workload, repeat, seed, state, result, seq)
                VALUES (?, ?, 0, 'done', ?, ?)
                ON CONFLICT(workload, repeat) DO UPDATE SET
                    state='done', result=excluded.result, error=NULL,
                    lease_owner=NULL, lease_expires=NULL, heartbeat_at=NULL
                """,
                (cell[0], cell[1],
                 None if payload is None else json.dumps(payload), seq),
            )
            self._event("cell_done", cell, detail)

    def close(self) -> None:
        """Close the connection (the file and its state are durable)."""
        self._con.close()

    def __enter__(self) -> WorkQueue:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- worker side -----------------------------------------------------------


class _HeartbeatPump(threading.Thread):
    """Refreshes one lease in the background until stopped or lost.

    Owns its own database connection (SQLite connections are
    single-thread); a heartbeat that comes back False (the lease
    expired under us and the cell moved on) stops the pump and raises
    the ``lost`` flag so the worker discards its in-flight result.
    """

    def __init__(self, path: Path, lease: Lease, interval_s: float) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{lease.owner}")
        self._path = path
        self._lease = lease
        self._interval_s = interval_s
        # Not named ``_stop``: threading.Thread owns that internally.
        self._halt = threading.Event()
        self.lost = threading.Event()

    def run(self) -> None:
        queue = WorkQueue.attach(self._path)
        try:
            while not self._halt.wait(self._interval_s):
                if not queue.heartbeat(self._lease.cell, self._lease.owner):
                    self.lost.set()
                    return
        finally:
            queue.close()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=10.0)


def default_owner() -> str:
    """A collision-resistant worker identity: host, pid, random token."""
    return f"{os.uname().nodename}-{os.getpid()}-{secrets.token_hex(3)}"


def queue_worker_loop(
    queue: WorkQueue,
    run_lease: LeaseFn,
    *,
    owner: str | None = None,
    poll_interval_s: float = 0.2,
    exit_when_drained: bool = True,
    heartbeat_interval_s: float | None = None,
    requeue_policy: RetryPolicy | None = None,
    requeue_seed: int = 0,
    max_cells: int | None = None,
    should_stop: Callable[[], bool] | None = None,
) -> int:
    """The pull-loop a queue worker runs; returns cells completed.

    Claim a lease → heartbeat in a background thread → execute the cell
    (deterministically, from the lease's stored seed) → record the
    result and mark ``done`` in one guarded transaction.  An
    application error requeues the cell with
    :class:`~repro.faults.retry.RetryPolicy` backoff+jitter (seeded —
    schedules are reproducible) until the queue's ``max_attempts``.
    The loop never dies for cell-side reasons; only ``SIGKILL``-class
    events stop it, and those are exactly what lease expiry recovers.

    Args:
        queue: an attached :class:`WorkQueue`.
        run_lease: executes one leased cell to a
            :class:`~repro.core.result.SearchResult`.
        owner: worker identity (default: host-pid-token).
        poll_interval_s: idle sleep between claim attempts.
        exit_when_drained: return once no cell is pending or leased
            (False = keep polling until ``should_stop`` or killed).
        heartbeat_interval_s: lease-refresh period (default: a quarter
            of the lease duration).
        requeue_policy: backoff schedule for application-error requeues
            (default: :data:`DEFAULT_REQUEUE_POLICY`).
        requeue_seed: seed of the backoff-jitter stream.
        max_cells: stop after completing/failing this many cells
            (``None`` = unbounded); tests and drain scripts use it.
        should_stop: optional callable polled between cells.
    """
    # Imported here: runner imports the parallel package lazily, and the
    # payload helpers live beside the cache code they must match.
    from repro.analysis.runner import result_to_payload

    owner = owner if owner is not None else default_owner()
    policy = requeue_policy if requeue_policy is not None else DEFAULT_REQUEUE_POLICY
    rng = np.random.default_rng(requeue_seed)
    interval = (
        heartbeat_interval_s
        if heartbeat_interval_s is not None
        else max(0.05, queue.lease_duration_s / 4.0)
    )
    processed = 0
    while max_cells is None or processed < max_cells:
        if should_stop is not None and should_stop():
            break
        lease = queue.claim(owner)
        if lease is None:
            if exit_when_drained and queue.drained():
                break
            time.sleep(poll_interval_s)
            continue
        pump = _HeartbeatPump(queue.path, lease, interval)
        pump.start()
        try:
            result = run_lease(lease)
        except BaseException as error:  # noqa: BLE001 - report, keep pulling
            pump.stop()
            delay = policy.delay_for(min(lease.attempts, policy.max_attempts), rng)
            queue.fail(
                lease.cell, owner,
                f"{type(error).__name__}: {error}", requeue_delay_s=delay,
            )
        else:
            pump.stop()
            # A lost lease means the cell was requeued and may be (or
            # have been) run elsewhere; complete()'s guard would refuse
            # anyway, but skipping the call keeps the event log honest.
            if not pump.lost.is_set():
                queue.complete(lease.cell, owner, result_to_payload(result))
        processed += 1
    return processed


def _local_worker_main(
    path: str,
    run_cell: CellFn,
    owner: str,
    poll_interval_s: float,
) -> None:
    """Entry point of a coordinator-forked local pull-worker.

    ``run_cell`` (the engine's ``_execute_cell``) arrives through fork
    inheritance, exactly like fork-pool workers — the queue only ever
    stores cells and JSON payloads, never closures.
    """
    queue = WorkQueue.attach(path)
    try:
        queue_worker_loop(
            queue,
            lambda lease: run_cell(lease.cell),
            owner=owner,
            poll_interval_s=poll_interval_s,
            exit_when_drained=True,
        )
    finally:
        queue.close()


# -- coordinator side ------------------------------------------------------


@dataclass(frozen=True)
class QueueConfig:
    """Where and how a grid's durable queue runs.

    Attributes:
        path: the queue database file (``None`` lets the runner derive
            ``<cache>.queue`` next to its cache file).
        cache_key: grid identity recorded in the queue's ``meta`` table
            (``None`` lets the runner supply its cache stem).
        workers: local pull-workers the coordinator forks (``None`` =
            the engine's planned worker count; ``0`` = none — an
            external fleet started with ``arrow queue-worker`` does the
            work).
        lease_duration_s: heartbeat-free lease lifetime.
        max_attempts: attempts per cell before parking it.
        stall_timeout_s: coordinator watchdog — with work outstanding
            but no live leases, no live local workers, and no queue
            activity for this long, the coordinator presumes the fleet
            gone and reports the stranded cells as crashes, which
            supervision completes serially.  ``None`` disables (wait
            for a fleet forever).
        poll_tick_s: coordinator sweep/poll granularity.
        pricing: pricing mode stamped into the queue's ``meta`` table
            (``"on-demand"`` or ``"spot"``).
    """

    path: str | Path | None = None
    cache_key: str | None = None
    workers: int | None = None
    lease_duration_s: float = DEFAULT_LEASE_S
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    stall_timeout_s: float | None = 60.0
    poll_tick_s: float = 0.05
    pricing: str = "on-demand"

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.stall_timeout_s is not None and self.stall_timeout_s <= 0:
            raise ValueError(
                f"stall_timeout_s must be positive, got {self.stall_timeout_s}"
            )


class QueueExecutor:
    """Grid dispatch over a durable :class:`WorkQueue`.

    Implements the four-method :class:`~repro.parallel.executors.
    CellExecutor` protocol, so the :class:`~repro.parallel.supervisor.
    Supervisor` and everything above it (journal, cache, resume) treat
    a crash-surviving multi-process fleet exactly like the in-process
    backends.  ``supports_cancel`` is falsy — a remote worker cannot be
    killed through a database file; stragglers are bounded by lease
    expiry instead of coordinator deadlines.

    ``poll`` is the coordinator heartbeat: it respawns dead local
    workers (expiring their leases immediately rather than waiting out
    the deadline), sweeps expired leases, forwards fleet transitions
    from the durable events table to ``on_event``, and returns terminal
    cells — ``done`` rows as results (deserialised from the stored
    canonical payload), ``failed`` rows as application errors,
    ``poisoned`` rows as crashes.

    Args:
        path: the queue database file.
        cache_key: grid identity recorded in the queue.
        run_cell: executes one cell (forked local workers inherit it).
        objective: deserialisation context for stored result payloads.
        seed_fn: maps a cell to the deterministic seed stored at
            enqueue time.
        workers: local pull-workers to fork (0 = external fleet only).
        on_event: optional :class:`~repro.parallel.events.CellEvent`
            sink for queue transitions.
        lease_duration_s / max_attempts / stall_timeout_s / poll_tick_s:
            see :class:`QueueConfig`.
    """

    supports_cancel = False

    def __init__(
        self,
        path: str | Path,
        cache_key: str,
        run_cell: CellFn,
        objective: Objective,
        seed_fn: Callable[[str, int], int],
        *,
        workers: int = 0,
        lease_duration_s: float = DEFAULT_LEASE_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        stall_timeout_s: float | None = 60.0,
        poll_tick_s: float = 0.05,
        pricing: str = "on-demand",
        on_event: Callable[[CellEvent], None] | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.queue = WorkQueue(
            path, cache_key,
            max_attempts=max_attempts, lease_duration_s=lease_duration_s,
            pricing=pricing,
        )
        self._run_cell = run_cell
        self._objective = objective
        self._seed_fn = seed_fn
        self._target = workers
        self._poll_tick_s = poll_tick_s
        self._stall_timeout_s = stall_timeout_s
        self._on_event = on_event
        self._submitted: list[Cell] = []
        self._delivered: set[Cell] = set()
        self._workers: dict[str, multiprocessing.process.BaseProcess] = {}
        self._worker_serial = 0
        # Only *new* queue activity is forwarded; a resumed campaign's
        # history stays in the file, not in this run's event stream.
        self._seen_event_id = self.queue.last_event_id()
        self._last_activity = time.monotonic()
        self._stalled = False
        if workers > 0 and "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError("local queue workers require the fork start method")
        self._ctx = multiprocessing.get_context("fork") if workers > 0 else None

    # -- local fleet ------------------------------------------------------

    def _spawn_worker(self) -> None:
        self._worker_serial += 1
        owner = f"local-{os.getpid()}-{self._worker_serial}"
        process = self._ctx.Process(
            target=_local_worker_main,
            args=(str(self.queue.path), self._run_cell, owner, self._poll_tick_s),
            daemon=True,
        )
        process.start()
        self._workers[owner] = process

    def _tend_fleet(self) -> None:
        """Reap dead local workers (expiring their leases now) and
        respawn up to target while claimable work remains."""
        for owner, process in list(self._workers.items()):
            if process.is_alive():
                continue
            process.join(timeout=1.0)
            process.close()
            del self._workers[owner]
            for (cell, state, attempts, _owner) in self.queue.expire_owner(owner):
                self._note_activity()
        if self._target and not self.queue.drained():
            while len(self._workers) < self._target:
                self._spawn_worker()

    # -- events -----------------------------------------------------------

    def _note_activity(self) -> None:
        self._last_activity = time.monotonic()

    def _forward_events(self) -> None:
        """Mirror new queue transitions into the coordinator's event
        stream (covers local *and* external workers — the durable table
        is the one channel everyone writes)."""
        rows = self.queue.events_since(self._seen_event_id)
        if rows:
            self._note_activity()
        for event_id, kind, cell, detail in rows:
            self._seen_event_id = event_id
            if self._on_event is None or cell is None:
                continue
            if kind in ("lease_claimed", "lease_expired", "worker_lost",
                        "cell_requeued"):
                self._on_event(CellEvent.for_cell(kind, cell, detail))

    # -- protocol ---------------------------------------------------------

    def submit(self, cell: Cell, front: bool = False) -> None:
        workload_id, repeat = cell
        self.queue.enqueue(
            [((workload_id, repeat), self._seed_fn(workload_id, repeat))],
            front=front,
        )
        if cell not in self._submitted:
            self._submitted.append(cell)
        # A resubmission expects a fresh outcome.
        self._delivered.discard(cell)
        self._note_activity()

    def _collect(self) -> list[CellOutcome]:
        wanted = [c for c in self._submitted if c not in self._delivered]
        if not wanted:
            return []
        terminal = {
            cell: (state, payload, error)
            for cell, state, payload, error, _attempts in self.queue.terminal_cells()
        }
        outcomes: list[CellOutcome] = []
        for cell in wanted:
            row = terminal.get(cell)
            if row is None:
                continue
            state, payload, error = row
            self._delivered.add(cell)
            if state == "done":
                if payload is None:
                    outcomes.append(CellOutcome(
                        cell=cell,
                        error="QueuePayloadError: done row without a payload",
                    ))
                    continue
                from repro.analysis.runner import result_from_payload

                try:
                    result = result_from_payload(payload, self._objective, cell[0])
                except (KeyError, TypeError, ValueError) as exc:
                    outcomes.append(CellOutcome(
                        cell=cell, error=f"QueuePayloadError: {exc}",
                    ))
                    continue
                outcomes.append(CellOutcome(cell=cell, result=result))
            elif state == "failed":
                outcomes.append(CellOutcome(cell=cell, error=error or "failed"))
            else:  # poisoned
                outcomes.append(CellOutcome(cell=cell, crashed=True))
        return outcomes

    def _stall_check(self) -> list[CellOutcome]:
        """The fleet-vanished watchdog: with work outstanding but no
        sign of life for ``stall_timeout_s``, report every undelivered
        cell as crashed so supervision can finish the grid serially.
        The durable rows stay put — ``resolve_serial`` marks them done
        as the coordinator completes each one."""
        if self._stall_timeout_s is None or self._stalled:
            return []
        if any(p.is_alive() for p in self._workers.values()):
            return []
        if self.queue.leases():
            self._note_activity()
            return []
        if time.monotonic() - self._last_activity < self._stall_timeout_s:
            return []
        self._stalled = True
        if self._on_event is not None:
            self._on_event(CellEvent.for_grid(
                "queue_stalled",
                f"no queue activity for {self._stall_timeout_s:.0f}s and no "
                "live workers; completing remaining cells in the coordinator",
            ))
        outcomes = []
        for cell in self._submitted:
            if cell not in self._delivered:
                self._delivered.add(cell)
                outcomes.append(CellOutcome(cell=cell, crashed=True))
        return outcomes

    def poll(self, timeout: float | None = None) -> list[CellOutcome]:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self._tend_fleet()
            if self.queue.sweep_expired():
                self._note_activity()
            self._forward_events()
            outcomes = self._collect()
            if outcomes:
                self._note_activity()
                return outcomes
            outcomes = self._stall_check()
            if outcomes:
                return outcomes
            if deadline is not None and time.monotonic() >= deadline:
                return []
            remaining = (
                self._poll_tick_s
                if deadline is None
                else min(self._poll_tick_s, max(0.0, deadline - time.monotonic()))
            )
            time.sleep(remaining)

    def cancel(self, cell: Cell) -> bool:
        # Withdrawing a *pending* row is possible; a leased cell belongs
        # to a worker no database write can interrupt.
        cursor = self.queue._con.execute(
            "UPDATE cells SET state='failed', error='cancelled by coordinator' "
            "WHERE workload=? AND repeat=? AND state='pending'",
            cell,
        )
        return cursor.rowcount == 1

    def started_at(self, cell: Cell) -> float | None:
        # Lease timestamps are wall-clock across machines; the
        # coordinator's monotonic deadline math cannot use them.
        return None

    def resolve_serial(self, cell: Cell, result: SearchResult) -> None:
        """Supervision hook: the coordinator completed ``cell`` itself
        (poisoned/parked path); persist that into the queue so its
        durable record matches the cache."""
        from repro.analysis.runner import result_to_payload

        self._delivered.add(cell)
        self.queue.record_external(
            cell, result_to_payload(result), "coordinator-serial"
        )

    def shutdown(self) -> None:
        for process in self._workers.values():
            if process.is_alive():
                process.terminate()
        for process in self._workers.values():
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - stuck after SIGTERM
                process.kill()
                process.join(timeout=5.0)
            process.close()
        self._workers.clear()
        self.queue.close()

    @property
    def capacity(self) -> int:
        """The local pull-worker target (external workers add to it)."""
        return self._target
