"""Cross-search vectorized grid stepping.

The serial executor runs each ``(workload, repeat)`` cell's search to
completion before the next one starts.  :class:`VectorizedGridDriver`
instead advances *every* live search one acquisition round per pass and
batches the per-round linear algebra across them:

* tree-surrogate searches (Augmented BO, the late phase of Hybrid BO)
  have their Extra-Trees ensembles grown in **one** level-synchronous
  frontier (:func:`repro.ml.extra_trees.fit_ensembles_stacked`) and
  their candidate rows evaluated in **one** packed traversal across all
  ensembles (:func:`repro.ml.tree.predict_packed_many`);
* GP searches (Naive BO, the early phase of Hybrid BO) have their
  conditioning matrices built in one stacked kernel evaluation
  (:func:`repro.ml.gp.fit_gps_stacked`) and their EI computed in one
  row-wise pass (:func:`repro.core.acquisition.
  expected_improvement_stacked`).

Each search is still driven through its own
:class:`~repro.core.smbo.SearchState` round split (``begin_round`` /
``complete_round``), consuming its own random streams in exactly the
serial order, and every batched kernel is bit-identical per slice to
its per-search counterpart — so the yielded results (and therefore any
cache built from them) are **byte-identical** to the serial executor's.
This is a dispatch-amortisation play, not an approximation.

Desync is the normal case, not an error: searches stop at different
step counts (stopping rules, exhausted budgets), switch surrogates at
different times (Hybrid BO), or are simply not batchable (random
search, PI/LCB/MES acquisitions, warm-refit ensembles, numeric-gradient
GPs, ``batch_size > 1`` fan-out rounds).  Every pass regroups whatever
*is* batchable that round; everything else falls back to the classic
per-cell step — same code the serial loop runs — so a heterogeneous
grid degrades smoothly toward serial performance rather than breaking.

When the win shows up: the stacked builders amortise *dispatch*, so
they pay off in the small-``m`` regime where per-level numpy call
overhead dominates — exactly where the paper's searches live (the
prediction-delta stopping rule ends most searches within ~5–9
measurements).  Long fixed-depth searches drift into the
compute/memory-bound regime where batching converges to ~1x.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from time import perf_counter

import numpy as np

from repro.core.acquisition import expected_improvement_stacked
from repro.core.augmented_bo import PairwiseTreeScorer
from repro.core.naive_bo import GPScorer
from repro.core.objectives import Objective
from repro.core.result import SearchResult
from repro.core.smbo import AcquisitionScores, SearchState
from repro.ml.extra_trees import fit_ensembles_stacked
from repro.ml.gp import fit_gps_stacked
from repro.ml.tree import predict_packed_many
from repro.parallel.events import CellEvent
from repro.trace.dataset import BenchmarkTrace

Cell = tuple[str, int]


class _LiveCell:
    """One grid cell's in-flight search and its per-round scratch."""

    __slots__ = ("cell", "state", "candidates", "pending", "scorer")

    def __init__(self, cell: Cell, state: SearchState) -> None:
        self.cell = cell
        self.state = state
        self.candidates: list[int] | None = None
        self.pending = None
        self.scorer = None

    @property
    def optimizer(self):
        return self.state.optimizer


class VectorizedGridDriver:
    """Advance all grid cells in lock-step, batching surrogate rounds.

    Args:
        trace: the ground-truth trace to replay against.
        factory: builds the optimiser for each cell (same factory the
            serial engine uses).
        objective: what to minimise.
        cells: the ``(workload_id, repeat)`` pairs to run.
        seed_fn: maps a cell to its optimiser seed.
        on_event: optional :class:`~repro.parallel.events.CellEvent`
            sink (``cell_scheduled`` / ``cell_finished`` per cell, one
            grid-scoped ``vector_planned`` up front).

    :meth:`run` yields ``(cell, result)`` in submission order with
    results bit-identical to the serial executor's; an exception in any
    cell's search propagates (there is no in-process retry — the
    supervisor machinery belongs to the process-isolating backends).
    """

    def __init__(
        self,
        trace: BenchmarkTrace,
        factory: Callable,
        objective: Objective,
        cells: list[Cell],
        seed_fn: Callable[[str, int], int],
        on_event: Callable[[CellEvent], None] | None = None,
    ) -> None:
        self._trace = trace
        self._factory = factory
        self._objective = objective
        self._cells = list(cells)
        self._seed_fn = seed_fn
        self._on_event = on_event
        self.rounds = 0
        self.stacked_tree_fits = 0
        self.stacked_gp_fits = 0
        self.fallback_rounds = 0

    def _emit(self, event: CellEvent) -> None:
        if self._on_event is not None:
            self._on_event(event)

    # -- batched round helpers ----------------------------------------------

    def _tree_group_key(self, live: _LiveCell) -> tuple:
        pending = live.pending
        model = pending.model
        return (
            "tree",
            pending.X_scaled.shape[1],
            model.min_samples_split,
            model.max_depth,
        )

    def _run_tree_group(self, group: list[_LiveCell]) -> None:
        """One stacked ensemble fit + one packed traversal for the group."""
        t_fit = perf_counter()
        try:
            fit_ensembles_stacked(
                [live.pending.model for live in group],
                [(live.pending.X_scaled, live.pending.y_train) for live in group],
            )
        except ValueError:
            # The group could not share a frontier after all (e.g. a
            # factory mixing growth limits) — finish each cell exactly
            # as PairwiseTreeScorer.score would, from the same pending.
            self.fallback_rounds += 1
            for live in group:
                pending = live.pending
                t_one = perf_counter()
                pending.model.fit(pending.X_scaled, pending.y_train)
                fit_s = pending.fit_prep_s + (perf_counter() - t_one)
                self._commit(live, live.scorer.score_commit(pending, fit_s))
            return
        self.stacked_tree_fits += 1
        fit_share = (perf_counter() - t_fit) / len(group)
        rows = [live.scorer.query_rows(live.pending) for live in group]
        predictions = predict_packed_many(
            [live.pending.model._packed for live in group], rows
        )
        for live, tree_predictions in zip(group, predictions):
            acquisition = live.scorer.score_commit(
                live.pending,
                live.pending.fit_prep_s + fit_share,
                tree_predictions=tree_predictions,
            )
            self._commit(live, acquisition)

    def _gp_group_key(self, live: _LiveCell) -> tuple:
        opt = live.optimizer
        return (
            "gp",
            len(opt.measured_indices),
            len(live.candidates),
        )

    def _run_gp_group(self, group: list[_LiveCell]) -> None:
        """One stacked conditioning + one stacked EI for the group."""
        fit_args = []
        for live in group:
            opt = live.optimizer
            X, y, geometry = live.scorer.fit_inputs(
                opt.measured_indices, opt.measured_values
            )
            fit_args.append((X, y, geometry))
        fit_gps_stacked(
            [live.scorer._gp for live in group],
            [X for X, _, _ in fit_args],
            [y for _, y, _ in fit_args],
            [geometry for _, _, geometry in fit_args],
        )
        self.stacked_gp_fits += 1
        means, stds, incumbents = [], [], []
        for live in group:
            opt = live.optimizer
            mean, std = live.scorer.posterior(opt.measured_indices, live.candidates)
            means.append(mean)
            stds.append(std)
            incumbents.append(float(opt.measured_values.min()))
        ei = expected_improvement_stacked(
            np.stack(means), np.stack(stds), np.array(incumbents)
        )
        for index, live in enumerate(group):
            acquisition = AcquisitionScores(
                scores=ei[index],
                predicted=means[index],
                expected_improvements=ei[index],
            )
            self._commit(live, acquisition)

    def _commit(self, live: _LiveCell, acquisition: AcquisitionScores) -> None:
        live.state.complete_round(live.candidates, acquisition)
        live.candidates = None
        live.pending = None
        live.scorer = None

    # -- the lock-step loop --------------------------------------------------

    def _round_bucket(self, live: _LiveCell) -> tuple | None:
        """The batch group for this cell's open round, or ``None``.

        ``None`` means "score classically this round": the optimiser has
        no round scorer, the scorer isn't stackable in its current
        configuration, or (Hybrid BO) it is mid-switch into a phase the
        driver cannot batch.
        """
        scorer = live.optimizer._round_scorer()
        if scorer is None:
            return None
        if isinstance(scorer, PairwiseTreeScorer):
            if not scorer.stackable:
                return None
            opt = live.optimizer
            live.scorer = scorer
            live.pending = scorer.score_begin(
                opt.measured_indices,
                opt.measured_values,
                opt.measured_measurements,
                live.candidates,
            )
            return self._tree_group_key(live)
        if isinstance(scorer, GPScorer):
            if not scorer.stackable:
                return None
            live.scorer = scorer
            return self._gp_group_key(live)
        return None

    def run(self) -> Iterator[tuple[Cell, SearchResult]]:
        """Drive every cell to completion; yield in submission order."""
        self._emit(
            CellEvent.for_grid(
                "vector_planned", f"cells={len(self._cells)} lock-step rounds"
            )
        )
        live_cells: list[_LiveCell] = []
        for cell in self._cells:
            workload_id, repeat = cell
            environment = self._trace.environment(workload_id)
            optimizer = self._factory(
                environment, self._objective, self._seed_fn(workload_id, repeat)
            )
            self._emit(CellEvent.for_cell("cell_scheduled", cell))
            live_cells.append(_LiveCell(cell, optimizer.start()))

        active = list(live_cells)
        while active:
            self.rounds += 1
            groups: dict[tuple, list[_LiveCell]] = {}
            for live in active:
                state = live.state
                # Init observations and batched (q > 1) rounds are
                # per-cell by nature; the round split only covers the
                # sequential search phase.
                if state.phase == "init" or live.optimizer.batch_size != 1:
                    state.step()
                    continue
                candidates = state.begin_round()
                if candidates is None:
                    continue
                live.candidates = candidates
                bucket = self._round_bucket(live)
                if bucket is None:
                    acquisition = live.optimizer._score_candidates(candidates)
                    self._commit(live, acquisition)
                else:
                    groups.setdefault(bucket, []).append(live)
            for bucket, group in groups.items():
                if bucket[0] == "tree":
                    self._run_tree_group(group)
                else:
                    self._run_gp_group(group)
            still_active = []
            for live in active:
                if live.state.done:
                    self._emit(CellEvent.for_cell("cell_finished", live.cell))
                else:
                    still_active.append(live)
            active = still_active

        for live in live_cells:
            yield live.cell, live.state.result()
