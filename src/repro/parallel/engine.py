"""Supervised execution of experiment grid cells.

The engine runs ``(workload, repeat)`` cells of a
:class:`~repro.analysis.runner.RunGrid` through the execution plane:
cells are dispatched via the :class:`~repro.parallel.executors.
CellExecutor` protocol (:class:`~repro.parallel.executors.
SerialExecutor` in-process, :class:`~repro.parallel.executors.
ForkPoolExecutor` across forked workers — remote or async backends can
plug in behind the same four methods) and supervised by
:class:`~repro.parallel.supervisor.Supervisor`, which owns deadlines,
retries, pool self-healing, and degradation policy.

Properties that make this a drop-in for the serial loop:

* **Determinism** — each cell's optimiser is built from a deterministic
  seed (``seed_fn(workload_id, repeat)``, by default
  :func:`~repro.analysis.runner.run_seed`), so a cell's result does not
  depend on which worker ran it, in what order, or how many times
  supervision had to re-run it.  Results are yielded in submission
  order, so downstream cache assembly is byte-identical to the serial
  path.
* **Fork-based context sharing and a zero-copy data plane** — optimiser
  factories are arbitrary closures and therefore not picklable.  The
  engine stores the cell context (trace, factory, objective, seed
  function) in a module global *before* the pool forks; workers inherit
  it through copy-on-write memory, and only the tiny
  ``(workload_id, repeat)`` tuples and the picklable
  :class:`~repro.core.result.SearchResult` objects ever cross the
  process boundary.  The trace's bulk arrays additionally ride in one
  ``multiprocessing.shared_memory`` segment
  (:class:`~repro.parallel.dataplane.TraceShare`), so every worker reads
  the same physical bytes instead of copy-on-write page duplicates.
  When fork is unavailable (or ``workers <= 1``, or the grid has a
  single cell) the engine runs serially in-process — same code path per
  cell, no pool.
* **Worker clamping** — a requested worker count is only a ceiling: the
  engine clamps it to ``min(workers, os.cpu_count(), n_cells)`` and
  skips the pool entirely for grids under :data:`POOL_MIN_CELLS` cells
  (:func:`plan_workers`), where fork + warm-up overhead exceeds the
  work.  The decision is observable as a ``pool_planned`` event;
  ``auto_clamp=False`` restores the literal request for tests that
  need a pool regardless of the host machine.
* **Crash containment and self-healing** — an application error in a
  worker is retried (``cell_retries`` pool attempts under
  :class:`~repro.faults.retry.RetryPolicy` backoff, then one serial
  attempt in the parent), so a deterministic failure surfaces exactly
  as it would have serially.  A worker killed mid-cell costs only that
  worker: the pool heals and the cell is re-submitted, up to
  ``pool_restarts`` deaths per grid (``pool_restarted`` events), after
  which the engine emits ``pool_degraded`` once, drains every finished
  result, and completes only the result-less cells serially.  A cell
  that kills its worker twice is a *poison cell* and is pinned to
  serial execution rather than re-breaking a fresh worker.  A cell
  exceeding ``cell_timeout`` seconds of execution is cancelled (its
  worker alone is killed) and completed serially, so one straggler
  never stalls the grid.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Iterable, Iterator

from repro.analysis.runner import OptimizerFactory, run_seed
from repro.core.objectives import Objective
from repro.core.result import SearchResult
from repro.faults.retry import RetryPolicy
from repro.parallel.dataplane import TraceShare
from repro.parallel.events import CellEvent
from repro.parallel.executors import (
    Cell,
    CellExecutor,
    ForkPoolExecutor,
    SerialExecutor,
)
from repro.parallel.queue import QueueConfig, QueueExecutor
from repro.parallel.supervisor import SupervisionConfig, Supervisor
from repro.trace.dataset import BenchmarkTrace

#: Executor backends selectable by name: ``auto`` picks serial or fork
#: pool from the planned worker count (the historical behaviour);
#: ``queue`` dispatches through the durable work queue
#: (:mod:`repro.parallel.queue`); ``vector`` advances every cell's
#: search in lock-step, batching per-round surrogate linear algebra
#: across searches (:mod:`repro.parallel.vector`) — in-process, one
#: worker, bit-identical results.
EXECUTOR_CHOICES: tuple[str, ...] = ("auto", "serial", "pool", "queue", "vector")

#: Maps a cell to its optimiser seed.
SeedFn = Callable[[str, int], int]

#: Optional progress-event sink.
EventSink = Callable[[CellEvent], None] | None

#: Below this many cells a pool never pays for itself: per-worker fork +
#: interpreter warm-up costs hundreds of milliseconds, while a grid this
#: small finishes in about that time serially.
POOL_MIN_CELLS = 4

#: Default worker-death budget per grid before serial degradation.
DEFAULT_POOL_RESTARTS = 2


def plan_workers(
    workers: int, n_cells: int, cpu_count: int | None = None
) -> int:
    """Effective worker count for a grid of ``n_cells`` cells.

    Clamps the request to the machine (``os.cpu_count()``) and to the
    work available (``n_cells`` — extra workers would only idle), and
    degrades to serial (1) for grids under :data:`POOL_MIN_CELLS`,
    where pool spin-up exceeds the work itself.

    This is also the single validation site for worker counts: every
    entry point (:func:`run_cells`, the runner, the CLI) funnels
    through it.

    Raises:
        ValueError: if ``workers`` is less than 1.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if n_cells < POOL_MIN_CELLS:
        return 1
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return max(1, min(workers, cores, n_cells))


class _CellContext:
    """Everything a worker needs to execute one cell."""

    __slots__ = ("trace", "factory", "objective", "seed_fn", "share")

    def __init__(
        self,
        trace: BenchmarkTrace,
        factory: OptimizerFactory,
        objective: Objective,
        seed_fn: SeedFn,
        share: TraceShare | None = None,
    ) -> None:
        self.trace = trace
        self.factory = factory
        self.objective = objective
        self.seed_fn = seed_fn
        self.share = share


# Set in the parent before the pool forks; workers inherit it.  This is
# the only channel for the (unpicklable) factory and trace.
_CELL_CONTEXT: _CellContext | None = None


def _execute_cell(cell: Cell) -> SearchResult:
    """Run one cell's search using the process-inherited context."""
    context = _CELL_CONTEXT
    if context is None:
        raise RuntimeError("cell context is not initialised in this process")
    workload_id, repeat = cell
    # Pool runs read the trace from the shared-memory data plane (one
    # physical copy across all workers); serial runs use it directly.
    trace = context.trace if context.share is None else context.share.trace()
    environment = trace.environment(workload_id)
    optimizer = context.factory(
        environment, context.objective, context.seed_fn(workload_id, repeat)
    )
    return optimizer.run()


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def build_executor(workers: int) -> CellExecutor:
    """The default executor for ``workers`` slots: serial or fork pool."""
    if workers <= 1 or not _fork_available():
        return SerialExecutor(_execute_cell)
    return ForkPoolExecutor(workers=workers, run_cell=_execute_cell)


def run_cells(
    trace: BenchmarkTrace,
    factory: OptimizerFactory,
    objective: Objective,
    cells: Iterable[Cell],
    workers: int = 1,
    on_event: EventSink = None,
    seed_fn: SeedFn = run_seed,
    auto_clamp: bool = True,
    cell_timeout: float | None = None,
    cell_retries: int = 0,
    pool_restarts: int = DEFAULT_POOL_RESTARTS,
    retry_policy: RetryPolicy | None = None,
    executor: str = "auto",
    queue: QueueConfig | None = None,
) -> Iterator[tuple[Cell, SearchResult]]:
    """Execute grid cells, yielding ``(cell, result)`` in submission order.

    Args:
        trace: the ground-truth trace to replay against.
        factory: builds the optimiser for each cell.
        objective: what to minimise.
        cells: the ``(workload_id, repeat)`` pairs to run.
        workers: pool size; ``<= 1`` runs serially in-process.
        on_event: optional sink for :class:`~repro.parallel.events.CellEvent`
            progress events.
        seed_fn: maps a cell to its optimiser seed (default
            :func:`~repro.analysis.runner.run_seed`).
        auto_clamp: when true (default), the requested ``workers`` is
            reduced to what can help — ``min(workers, cpu_count,
            n_cells)``, serial for tiny grids (:func:`plan_workers`) —
            and the decision is reported via a ``pool_planned`` event.
            ``False`` takes the request literally (for tests exercising
            pool behaviour regardless of the host machine).
        cell_timeout: wall-clock deadline in seconds per cell execution
            on a pool; a straggler past it is cancelled and completed
            serially.  ``None`` (default) disables deadlines.
        cell_retries: extra *pool* attempts for a cell that raises an
            application error in a worker, before the final serial
            attempt in the parent (0 = straight to serial, the
            historical behaviour).
        pool_restarts: worker deaths survived (pool healed, cell
            re-submitted, ``pool_restarted`` emitted) before the engine
            degrades the rest of the grid to serial execution.
        retry_policy: full backoff schedule for cell retries; defaults
            to ``RetryPolicy.from_retries(cell_retries)``.  When given,
            it overrides ``cell_retries``.
        executor: backend selection (:data:`EXECUTOR_CHOICES`).
            ``"auto"`` (default) picks serial or fork pool from the
            planned worker count; ``"serial"`` / ``"pool"`` force those
            backends; ``"queue"`` dispatches through the durable
            :class:`~repro.parallel.queue.WorkQueue` (crash-surviving,
            external workers welcome) and requires ``queue``;
            ``"vector"`` runs every cell in-process via the lock-step
            :class:`~repro.parallel.vector.VectorizedGridDriver`,
            batching surrogate rounds across searches with results
            bit-identical to ``"serial"`` (worker/pool knobs are
            ignored — there is exactly one worker).
        queue: the :class:`~repro.parallel.queue.QueueConfig` for
            ``executor="queue"`` — must carry an explicit ``path`` and
            is ignored by the other backends.

    Raises:
        ValueError: if ``workers`` is less than 1, if ``executor`` is
            unknown, or if ``executor="queue"`` lacks a usable
            ``queue`` config.
    """
    if executor not in EXECUTOR_CHOICES:
        raise ValueError(
            f"unknown executor {executor!r}; choose from {EXECUTOR_CHOICES}"
        )
    if executor == "queue" and (queue is None or queue.path is None):
        raise ValueError('executor="queue" requires a QueueConfig with a path')
    cells = list(cells)
    if executor == "vector":
        # The vectorized driver is its own execution plane: in-process,
        # single-worker, no supervisor (an application error propagates
        # exactly as the serial path's final attempt would).  It yields
        # in submission order, so downstream cache assembly stays
        # byte-identical to the serial executor.
        from repro.parallel.vector import VectorizedGridDriver

        plan_workers(workers, len(cells))  # validate the request
        driver = VectorizedGridDriver(
            trace, factory, objective, cells, seed_fn=seed_fn, on_event=on_event
        )
        yield from driver.run()
        return
    # plan_workers validates the request (single site) even when the
    # clamp itself is disabled.
    planned = plan_workers(workers, len(cells))
    effective = planned if auto_clamp else workers
    if auto_clamp and on_event is not None:
        on_event(
            CellEvent.for_grid(
                "pool_planned",
                f"workers requested={workers} effective={effective} "
                f"cells={len(cells)} cpus={os.cpu_count() or 1}",
            )
        )
    if retry_policy is None:
        retry_policy = RetryPolicy.from_retries(cell_retries)
    if executor == "queue":
        # Queue crashes are final verdicts, not transient pool deaths: a
        # poisoned row already burned max_attempts worker leases, and a
        # stall takeover means the fleet is gone.  Pin such cells to the
        # coordinator's serial path on the first report.
        config = SupervisionConfig(
            retry_policy=retry_policy,
            pool_restarts=pool_restarts,
            poison_threshold=1,
        )
    else:
        config = SupervisionConfig(
            cell_timeout_s=cell_timeout,
            retry_policy=retry_policy,
            pool_restarts=pool_restarts,
        )

    if executor == "serial":
        serial = True
    elif executor == "pool":
        serial = not _fork_available()
    elif executor == "queue":
        serial = False
    else:
        serial = effective <= 1 or len(cells) <= 1 or not _fork_available()

    local_queue_workers = 0
    if executor == "queue":
        local_queue_workers = (
            queue.workers if queue.workers is not None else effective
        )
        if not _fork_available():  # pragma: no cover - platform-dependent
            local_queue_workers = 0  # external fleet (or stall takeover) only

    global _CELL_CONTEXT
    previous = _CELL_CONTEXT
    # The shared-memory data plane only pays off when workers fork.  If
    # the platform can't provide a segment (e.g. no /dev/shm), workers
    # simply fall back to the fork-inherited copy of the trace.
    share = None
    forks_workers = (not serial and executor != "queue") or local_queue_workers > 0
    if forks_workers:
        try:
            share = TraceShare.export(trace)
        except OSError:  # pragma: no cover - platform-dependent
            share = None
    _CELL_CONTEXT = _CellContext(
        trace=trace,
        factory=factory,
        objective=objective,
        seed_fn=seed_fn,
        share=share,
    )
    try:
        if executor == "queue":
            backend: CellExecutor = QueueExecutor(
                queue.path,
                queue.cache_key if queue.cache_key is not None else "grid",
                _execute_cell,
                objective,
                seed_fn,
                workers=local_queue_workers,
                lease_duration_s=queue.lease_duration_s,
                max_attempts=queue.max_attempts,
                stall_timeout_s=queue.stall_timeout_s,
                poll_tick_s=queue.poll_tick_s,
                pricing=queue.pricing,
                on_event=on_event,
            )
        else:
            backend = build_executor(1 if serial else min(effective, len(cells)))
        supervisor = Supervisor(
            backend, _execute_cell, config=config, on_event=on_event
        )
        yield from supervisor.run(cells)
    finally:
        _CELL_CONTEXT = previous
        if share is not None:
            share.close()
