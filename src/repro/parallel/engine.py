"""Process-pool execution of experiment grid cells.

The engine runs ``(workload, repeat)`` cells of a
:class:`~repro.analysis.runner.RunGrid` across a pool of worker
processes.  Three properties make it safe to drop in for the serial
loop:

* **Determinism** — each cell's optimiser is built from a deterministic
  seed (``seed_fn(workload_id, repeat)``, by default
  :func:`~repro.analysis.runner.run_seed`), so a cell's result does not
  depend on which worker ran it or in what order.  Results are yielded
  in submission order, so downstream cache assembly is byte-identical
  to the serial path.
* **Fork-based context sharing and a zero-copy data plane** — optimiser
  factories are arbitrary closures and therefore not picklable.  The
  engine stores the cell context (trace, factory, objective, seed
  function) in a module global *before* the pool forks; workers inherit
  it through copy-on-write memory, and only the tiny
  ``(workload_id, repeat)`` tuples and the picklable
  :class:`~repro.core.result.SearchResult` objects ever cross the
  process boundary.  The trace's bulk arrays additionally ride in one
  ``multiprocessing.shared_memory`` segment
  (:class:`~repro.parallel.dataplane.TraceShare`), so every worker reads
  the same physical bytes instead of copy-on-write page duplicates.
  When fork is unavailable (or ``workers <= 1``, or the grid has a
  single cell) the engine runs serially in-process — same code path per
  cell, no pool.
* **Worker clamping** — a requested worker count is only a ceiling: the
  engine clamps it to ``min(workers, os.cpu_count(), n_cells)`` and
  skips the pool entirely for grids under :data:`POOL_MIN_CELLS` cells
  (:func:`plan_workers`), where fork + warm-up overhead exceeds the
  work.  The decision is observable as a ``pool_planned`` event;
  ``auto_clamp=False`` restores the literal request for tests that
  need a pool regardless of the host machine.
* **Crash containment** — a cell that raises an application error in a
  worker is retried serially in the parent (quarantine the cell, not
  the run); a deterministic failure then surfaces exactly as it would
  have serially.  If the pool itself dies (a worker was OOM-killed or
  crashed hard), the engine emits a ``pool_degraded`` event and falls
  back to serial execution for every cell not yet yielded.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.analysis.runner import OptimizerFactory, run_seed
from repro.core.objectives import Objective
from repro.core.result import SearchResult
from repro.parallel.dataplane import TraceShare
from repro.parallel.events import CellEvent
from repro.trace.dataset import BenchmarkTrace

#: One grid cell: (workload_id, repeat).
Cell = tuple[str, int]

#: Maps a cell to its optimiser seed.
SeedFn = Callable[[str, int], int]

#: Optional progress-event sink.
EventSink = Callable[[CellEvent], None] | None

#: Below this many cells a pool never pays for itself: per-worker fork +
#: interpreter warm-up costs hundreds of milliseconds, while a grid this
#: small finishes in about that time serially.
POOL_MIN_CELLS = 4


def plan_workers(
    workers: int, n_cells: int, cpu_count: int | None = None
) -> int:
    """Effective worker count for a grid of ``n_cells`` cells.

    Clamps the request to the machine (``os.cpu_count()``) and to the
    work available (``n_cells`` — extra workers would only idle), and
    degrades to serial (1) for grids under :data:`POOL_MIN_CELLS`,
    where pool spin-up exceeds the work itself.

    Raises:
        ValueError: if ``workers`` is less than 1.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if n_cells < POOL_MIN_CELLS:
        return 1
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    return max(1, min(workers, cores, n_cells))


@dataclass
class _CellContext:
    """Everything a worker needs to execute one cell."""

    trace: BenchmarkTrace
    factory: OptimizerFactory
    objective: Objective
    seed_fn: SeedFn
    share: TraceShare | None = None


# Set in the parent before the pool forks; workers inherit it.  This is
# the only channel for the (unpicklable) factory and trace.
_CELL_CONTEXT: _CellContext | None = None


def _execute_cell(cell: Cell) -> SearchResult:
    """Run one cell's search using the process-inherited context."""
    context = _CELL_CONTEXT
    if context is None:
        raise RuntimeError("cell context is not initialised in this process")
    workload_id, repeat = cell
    # Pool runs read the trace from the shared-memory data plane (one
    # physical copy across all workers); serial runs use it directly.
    trace = context.trace if context.share is None else context.share.trace()
    environment = trace.environment(workload_id)
    optimizer = context.factory(
        environment, context.objective, context.seed_fn(workload_id, repeat)
    )
    return optimizer.run()


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _emit(on_event: EventSink, kind: str, cell: Cell | None, detail: str = "") -> None:
    if on_event is None:
        return
    workload_id, repeat = cell if cell is not None else (None, None)
    on_event(CellEvent(kind=kind, workload_id=workload_id, repeat=repeat, detail=detail))


def _run_serial(
    cells: list[Cell], on_event: EventSink
) -> Iterator[tuple[Cell, SearchResult]]:
    for cell in cells:
        _emit(on_event, "cell_scheduled", cell)
        result = _execute_cell(cell)
        _emit(on_event, "cell_finished", cell)
        yield cell, result


def _run_pool(
    cells: list[Cell], workers: int, on_event: EventSink
) -> Iterator[tuple[Cell, SearchResult]]:
    executor = ProcessPoolExecutor(
        max_workers=workers, mp_context=multiprocessing.get_context("fork")
    )
    try:
        futures = []
        for cell in cells:
            futures.append((cell, executor.submit(_execute_cell, cell)))
            _emit(on_event, "cell_scheduled", cell)
        for position, (cell, future) in enumerate(futures):
            try:
                result = future.result()
            except BrokenProcessPool:
                _emit(
                    on_event,
                    "pool_degraded",
                    None,
                    "worker pool died; finishing remaining cells serially",
                )
                # Cells are deterministic, so recomputing everything not
                # yet yielded (including any whose result is stranded in
                # the dead pool) gives identical output.
                yield from _run_serial([c for c, _ in futures[position:]], on_event)
                return
            except Exception as error:  # noqa: BLE001 - worker errors are diverse
                _emit(
                    on_event,
                    "cell_failed",
                    cell,
                    f"{type(error).__name__}: {error}",
                )
                # Quarantine the cell, not the run: retry serially in the
                # parent.  A deterministic failure re-raises here exactly
                # as the serial path would have.
                result = _execute_cell(cell)
            _emit(on_event, "cell_finished", cell)
            yield cell, result
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def run_cells(
    trace: BenchmarkTrace,
    factory: OptimizerFactory,
    objective: Objective,
    cells: Iterable[Cell],
    workers: int = 1,
    on_event: EventSink = None,
    seed_fn: SeedFn = run_seed,
    auto_clamp: bool = True,
) -> Iterator[tuple[Cell, SearchResult]]:
    """Execute grid cells, yielding ``(cell, result)`` in submission order.

    Args:
        trace: the ground-truth trace to replay against.
        factory: builds the optimiser for each cell.
        objective: what to minimise.
        cells: the ``(workload_id, repeat)`` pairs to run.
        workers: pool size; ``<= 1`` runs serially in-process.
        on_event: optional sink for :class:`~repro.parallel.events.CellEvent`
            progress events.
        seed_fn: maps a cell to its optimiser seed (default
            :func:`~repro.analysis.runner.run_seed`).
        auto_clamp: when true (default), the requested ``workers`` is
            reduced to what can help — ``min(workers, cpu_count,
            n_cells)``, serial for tiny grids (:func:`plan_workers`) —
            and the decision is reported via a ``pool_planned`` event.
            ``False`` takes the request literally (for tests exercising
            pool behaviour regardless of the host machine).

    Raises:
        ValueError: if ``workers`` is less than 1.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cells = list(cells)
    effective = plan_workers(workers, len(cells)) if auto_clamp else workers
    if auto_clamp and on_event is not None:
        _emit(
            on_event,
            "pool_planned",
            None,
            f"workers requested={workers} effective={effective} "
            f"cells={len(cells)} cpus={os.cpu_count() or 1}",
        )
    global _CELL_CONTEXT
    previous = _CELL_CONTEXT
    serial = effective <= 1 or len(cells) <= 1 or not _fork_available()
    # The shared-memory data plane only pays off when a pool forks.  If
    # the platform can't provide a segment (e.g. no /dev/shm), workers
    # simply fall back to the fork-inherited copy of the trace.
    share = None
    if not serial:
        try:
            share = TraceShare.export(trace)
        except OSError:  # pragma: no cover - platform-dependent
            share = None
    _CELL_CONTEXT = _CellContext(
        trace=trace,
        factory=factory,
        objective=objective,
        seed_fn=seed_fn,
        share=share,
    )
    try:
        if serial:
            yield from _run_serial(cells, on_event)
        else:
            yield from _run_pool(cells, min(effective, len(cells)), on_event)
    finally:
        _CELL_CONTEXT = previous
        if share is not None:
            share.close()
