"""Pluggable cell executors: the dispatch layer of the execution plane.

A :class:`CellExecutor` turns grid cells into
:class:`~repro.core.result.SearchResult` objects, one at a time, behind
a four-method protocol (``submit`` / ``poll`` / ``cancel`` /
``shutdown``).  The engine and its :class:`~repro.parallel.supervisor.
Supervisor` only ever talk to the protocol, so remote or async backends
can plug in without touching supervision logic.

Two implementations ship here:

* :class:`SerialExecutor` — runs cells synchronously in the calling
  process, one per :meth:`~SerialExecutor.poll`.  It is *transparent*:
  application exceptions propagate to the caller, nothing can crash or
  straggle, so supervision features (deadlines, retries, healing) are
  structurally no-ops on top of it.
* :class:`ForkPoolExecutor` — a fork-based process pool with one duplex
  pipe per worker.  Unlike ``concurrent.futures.ProcessPoolExecutor``,
  worker death is contained to the victim worker (reported as a
  ``crashed`` :class:`CellOutcome`, not a broken pool), a *single*
  running cell can be cancelled by terminating exactly its worker, and
  results already sitting in other workers' pipes are always drained —
  nothing finished is ever thrown away because a sibling died.

A third lives in :mod:`repro.parallel.queue`:
:class:`~repro.parallel.queue.QueueExecutor` dispatches through a
durable SQLite-backed work queue with leased cells, surviving
coordinator *and* worker crashes and admitting external worker
processes (``arrow queue-worker``) — the proof that this protocol is
the plug point the remote backends were promised.

Outcome semantics: ``poll`` never raises for worker-side problems.  A
cell that completed returns ``result``; one that raised an application
error returns ``error`` (the ``"ErrorType: message"`` string); one whose
worker died mid-execution returns ``crashed=True``.  Policy — retry,
restart, quarantine, degrade — belongs to the supervisor.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from multiprocessing import connection
from typing import Protocol, runtime_checkable

from repro.core.result import SearchResult

#: One grid cell: (workload_id, repeat).
Cell = tuple[str, int]

#: Executes one cell to a result (the engine's ``_execute_cell``).
CellFn = Callable[[Cell], SearchResult]


@dataclass(frozen=True, slots=True)
class CellOutcome:
    """What became of one submitted cell.

    Exactly one of three states holds:

    * ``result is not None`` — the cell completed;
    * ``error is not None`` — the cell raised an application error
      (``"ErrorType: message"``);
    * ``crashed`` — the worker process died without reporting (killed,
      OOM, ``os._exit``); the cell's work is lost.
    """

    cell: Cell
    result: SearchResult | None = None
    error: str | None = None
    crashed: bool = False

    @property
    def ok(self) -> bool:
        """Whether the cell completed with a result."""
        return self.result is not None


@runtime_checkable
class CellExecutor(Protocol):
    """The execution-plane dispatch protocol.

    Implementations may queue an unbounded backlog; ``submit`` never
    blocks.  ``front=True`` queues the cell ahead of the existing
    backlog — the supervisor uses it for retried/resubmitted cells,
    which are by definition the *oldest* in flight: appending them
    behind the whole backlog would head-of-line-block every completed
    sibling (results are yielded in submission order) until the grid
    ends.  ``poll`` returns every outcome that became available,
    waiting up to ``timeout`` seconds for at least one (``None`` = wait
    as long as the implementation needs; serial implementations may
    ignore the timeout entirely).  ``cancel`` is best-effort and
    returns whether the cell was actually withdrawn.  ``shutdown``
    releases all resources; pending and running cells are dropped.

    Two optional introspection hooks refine supervision when present:
    ``supports_cancel`` (class attribute, default falsy) advertises that
    running cells can really be withdrawn — deadline enforcement is
    pointless without it — and ``started_at(cell)`` returns the
    ``time.monotonic()`` instant the cell began executing (``None``
    while still queued), so deadlines measure execution time, not queue
    time.
    """

    def submit(self, cell: Cell, front: bool = False) -> None: ...

    def poll(self, timeout: float | None = None) -> list[CellOutcome]: ...

    def cancel(self, cell: Cell) -> bool: ...

    def shutdown(self) -> None: ...


class SerialExecutor:
    """Runs cells synchronously in the calling process.

    ``poll`` executes the oldest queued cell to completion and returns
    its outcome.  Application exceptions propagate to the caller —
    exactly what the serial grid path has always done — so a
    deterministic failure surfaces unchanged instead of being
    retried into the same failure.
    """

    supports_cancel = False

    def __init__(self, run_cell: CellFn) -> None:
        self._run_cell = run_cell
        self._backlog: deque[Cell] = deque()

    def submit(self, cell: Cell, front: bool = False) -> None:
        if front:
            self._backlog.appendleft(cell)
        else:
            self._backlog.append(cell)

    def poll(self, timeout: float | None = None) -> list[CellOutcome]:
        if not self._backlog:
            return []
        cell = self._backlog.popleft()
        return [CellOutcome(cell=cell, result=self._run_cell(cell))]

    def cancel(self, cell: Cell) -> bool:
        try:
            self._backlog.remove(cell)
        except ValueError:
            return False
        return True

    def started_at(self, cell: Cell) -> float | None:
        return None

    def shutdown(self) -> None:
        self._backlog.clear()


def _worker_main(conn: connection.Connection, run_cell: CellFn) -> None:
    """Worker loop: receive a cell, run it, send the outcome; repeat.

    Runs in a forked child.  ``None`` is the shutdown sentinel.  An
    application error is stringified and sent back — never raised — so
    the worker survives to take the next cell.
    """
    while True:
        try:
            cell = conn.recv()
        except (EOFError, OSError):
            return
        if cell is None:
            return
        try:
            result = run_cell(cell)
        except BaseException as error:  # noqa: BLE001 - report, don't die
            payload = ("error", f"{type(error).__name__}: {error}")
        else:
            payload = ("ok", result)
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """One forked worker process and its parent-side pipe end."""

    __slots__ = ("conn", "process", "cell", "started")

    def __init__(self, ctx, run_cell: CellFn) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child_conn, run_cell), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.cell: Cell | None = None
        self.started: float | None = None

    def assign(self, cell: Cell) -> None:
        self.conn.send(cell)
        self.cell = cell
        self.started = time.monotonic()

    def release(self) -> None:
        self.cell = None
        self.started = None

    def reap(self, terminate: bool = False) -> None:
        """Close the pipe and collect the process (optionally killing it)."""
        if terminate and self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck after SIGTERM
            self.process.kill()
            self.process.join(timeout=5.0)
        self.conn.close()
        self.process.close()


class ForkPoolExecutor:
    """A fork-based process pool with per-worker pipes.

    The cell context (trace, optimiser factory, objective) reaches
    workers through fork-inherited memory — ``run_cell`` is typically
    the engine's ``_execute_cell`` reading the module-global context —
    and only cells and picklable results cross the pipes.

    Capacity self-heals: a worker lost to a crash or a ``cancel`` is
    replaced by a fresh fork the next time there is backlog to place.
    Whether a crashed cell is *resubmitted* is the supervisor's call,
    so restart budgets live in one place.

    Args:
        workers: pool capacity (fixed; respawns restore it).
        run_cell: executes one cell inside a worker.

    Raises:
        RuntimeError: if the platform cannot fork.
    """

    supports_cancel = True

    def __init__(self, workers: int, run_cell: CellFn) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError("ForkPoolExecutor requires the fork start method")
        self._ctx = multiprocessing.get_context("fork")
        self._target = workers
        self._run_cell = run_cell
        self._workers: list[_Worker] = []
        self._backlog: deque[Cell] = deque()

    # -- dispatch ---------------------------------------------------------

    def _dispatch(self) -> None:
        """Place backlog cells on idle workers, forking up to capacity."""
        while self._backlog:
            worker = next((w for w in self._workers if w.cell is None), None)
            if worker is None:
                if len(self._workers) >= self._target:
                    return
                worker = _Worker(self._ctx, self._run_cell)
                self._workers.append(worker)
            cell = self._backlog.popleft()
            try:
                worker.assign(cell)
            except (BrokenPipeError, OSError):
                # The idle worker died quietly; replace it and re-place
                # the cell on the next iteration.
                self._workers.remove(worker)
                worker.reap()
                self._backlog.appendleft(cell)

    # -- protocol ---------------------------------------------------------

    def submit(self, cell: Cell, front: bool = False) -> None:
        if front:
            self._backlog.appendleft(cell)
        else:
            self._backlog.append(cell)
        self._dispatch()

    def poll(self, timeout: float | None = None) -> list[CellOutcome]:
        self._dispatch()
        busy = [w for w in self._workers if w.cell is not None]
        if not busy:
            return []
        # Wait on result pipes *and* process sentinels so a worker that
        # dies without reporting wakes the poll immediately.
        sentinels = {w.process.sentinel: w for w in busy}
        ready = connection.wait(
            [w.conn for w in busy] + list(sentinels), timeout
        )
        ready_set = set(ready)
        outcomes: list[CellOutcome] = []
        for worker in busy:
            # Drain the pipe first: a worker that sent its result and
            # then exited still counts as finished work.
            if worker.conn in ready_set or worker.conn.poll(0):
                try:
                    kind, payload = worker.conn.recv()
                except (EOFError, OSError):
                    outcomes.append(self._crash(worker))
                    continue
                cell = worker.cell
                worker.release()
                if kind == "ok":
                    outcomes.append(CellOutcome(cell=cell, result=payload))
                else:
                    outcomes.append(CellOutcome(cell=cell, error=payload))
            elif worker.process.sentinel in ready_set:
                outcomes.append(self._crash(worker))
        self._dispatch()
        return outcomes

    def _crash(self, worker: _Worker) -> CellOutcome:
        """Record a worker death: reap it and report the lost cell."""
        cell = worker.cell
        self._workers.remove(worker)
        worker.reap()
        return CellOutcome(cell=cell, crashed=True)

    def cancel(self, cell: Cell) -> bool:
        try:
            self._backlog.remove(cell)
        except ValueError:
            pass
        else:
            return True
        for worker in self._workers:
            if worker.cell == cell:
                # Killing exactly this worker withdraws the straggler
                # without disturbing its siblings; capacity is restored
                # by the next dispatch.
                self._workers.remove(worker)
                worker.reap(terminate=True)
                return True
        return False

    def started_at(self, cell: Cell) -> float | None:
        for worker in self._workers:
            if worker.cell == cell:
                return worker.started
        return None

    def shutdown(self) -> None:
        self._backlog.clear()
        for worker in self._workers:
            if worker.cell is None and worker.process.is_alive():
                # Idle workers get a graceful sentinel; busy ones are
                # terminated (their cells are abandoned by definition).
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in self._workers:
            worker.reap(terminate=worker.cell is not None)
        self._workers.clear()

    @property
    def capacity(self) -> int:
        """The pool's target worker count."""
        return self._target
