"""Zero-copy trace sharing for the parallel experiment engine.

A :class:`~repro.trace.dataset.BenchmarkTrace` is dominated by three
numpy arrays (``times``, ``costs``, ``metrics``); everything else
(registry, catalog, seed) is a few kilobytes of plain objects.  The
engine's fork-based pool already avoids per-cell pickling by letting
workers inherit the parent's trace through copy-on-write memory, but
CPython reference counting dirties inherited pages over time, silently
re-copying them per worker.  :class:`TraceShare` pins the bulk data in
one explicitly shared segment instead:

* :meth:`TraceShare.export` concatenates the trace's arrays into a
  single ``multiprocessing.shared_memory`` block (one allocation, one
  copy, ever);
* :meth:`TraceShare.trace` — called in any process — maps that block
  and rebuilds the ``BenchmarkTrace`` around read-only numpy *views* of
  it: no copy, no pickle, one physical instance of the data regardless
  of worker count.  The rebuilt trace is cached per process, so a
  worker attaches exactly once no matter how many cells it runs;
* the parent (the only process that created the segment) calls
  :meth:`close` when the pool is done, unlinking the segment.

The share object itself is tiny (segment name, shapes, and the small
picklable registry/catalog objects), so shipping it through fork
inheritance — or even pickling it, should a spawn-based pool ever
exist — costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.cloud.vmtypes import VMType
from repro.trace.dataset import BenchmarkTrace
from repro.workloads.registry import WorkloadRegistry

#: Process-local cache of attached traces, keyed by segment name: each
#: worker process maps the segment and rebuilds the trace exactly once.
_ATTACHED: dict[str, BenchmarkTrace] = {}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without adopting ownership of it.

    Python registers every opened segment with its ``resource_tracker``,
    which would unlink the segment when the *worker* exits — destroying
    it while the parent and sibling workers still need it.  Only the
    creating process owns cleanup here, so de-register the attachment.
    """
    segment = shared_memory.SharedMemory(name=name)
    try:
        resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
    except Exception:  # pragma: no cover - tracker API is platform-dependent
        pass
    return segment


@dataclass
class TraceShare:
    """A trace exported once into shared memory, attachable anywhere.

    Build with :meth:`export`; call :meth:`trace` in any process to get
    the zero-copy reconstruction; the exporting process calls
    :meth:`close` when all consumers are done.
    """

    segment_name: str
    times_shape: tuple[int, ...]
    costs_shape: tuple[int, ...]
    metrics_shape: tuple[int, ...]
    registry: WorkloadRegistry
    catalog: tuple[VMType, ...]
    seed: int
    _owned: shared_memory.SharedMemory | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def export(cls, trace: BenchmarkTrace) -> TraceShare:
        """Copy ``trace``'s arrays into one new shared-memory segment."""
        times = np.ascontiguousarray(trace.times, dtype=np.float64)
        costs = np.ascontiguousarray(trace.costs, dtype=np.float64)
        metrics = np.ascontiguousarray(trace.metrics, dtype=np.float64)
        total = times.nbytes + costs.nbytes + metrics.nbytes
        segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
        offset = 0
        for array in (times, costs, metrics):
            view = np.ndarray(array.shape, dtype=np.float64, buffer=segment.buf, offset=offset)
            view[...] = array
            offset += array.nbytes
        return cls(
            segment_name=segment.name,
            times_shape=times.shape,
            costs_shape=costs.shape,
            metrics_shape=metrics.shape,
            registry=trace.registry,
            catalog=trace.catalog,
            seed=trace.seed,
            _owned=segment,
        )

    def trace(self) -> BenchmarkTrace:
        """The shared trace, rebuilt around views of the segment.

        Safe to call from any process; the result is cached per process
        so repeated calls (one per grid cell) map the segment once.
        """
        cached = _ATTACHED.get(self.segment_name)
        if cached is not None:
            return cached
        segment = (
            self._owned
            if self._owned is not None
            else _attach_segment(self.segment_name)
        )
        arrays = []
        offset = 0
        for shape in (self.times_shape, self.costs_shape, self.metrics_shape):
            view = np.ndarray(shape, dtype=np.float64, buffer=segment.buf, offset=offset)
            view.flags.writeable = False
            arrays.append(view)
            offset += view.nbytes
        times, costs, metrics = arrays
        rebuilt = BenchmarkTrace(
            registry=self.registry,
            catalog=self.catalog,
            times=times,
            costs=costs,
            metrics=metrics,
            seed=self.seed,
        )
        # Keep the mapping alive for as long as the views are in use.
        rebuilt.__dict__["_dataplane_segment"] = segment
        _ATTACHED[self.segment_name] = rebuilt
        return rebuilt

    def close(self) -> None:
        """Tear the segment down (exporting process only).

        Workers that attached keep their mappings until process exit;
        the segment's backing memory is freed once the last mapping
        closes.
        """
        _ATTACHED.pop(self.segment_name, None)
        if self._owned is None:
            return
        try:
            self._owned.close()
            self._owned.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._owned = None
