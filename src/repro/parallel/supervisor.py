"""Supervised execution of grid cells over any :class:`CellExecutor`.

The :class:`Supervisor` is the policy layer of the execution plane: it
owns *what happens when things go wrong*, while executors own *how cells
run*.  Wrapping any executor it provides, per submitted cell:

* **Deadlines** — a cell that executes longer than
  ``cell_timeout_s`` wall-clock seconds is cancelled (the fork pool
  kills exactly that worker) and completed serially in the parent, so
  one straggler never stalls the grid.  Deadlines measure *execution*
  time (via the executor's ``started_at`` hook), not queue time, and
  only apply to executors that can actually cancel
  (``supports_cancel``).
* **Bounded retries** — an application error in a worker re-submits the
  cell up to ``retry_policy.max_attempts`` total pool attempts
  (:class:`~repro.faults.retry.RetryPolicy`: exponential backoff with
  seeded jitter — the one retry implementation in the codebase), then
  falls back to one serial attempt in the parent.  A failure that is
  deterministic therefore surfaces exactly as the serial path would
  have raised it.  Every retry is emitted as a ``cell_retried``
  :class:`~repro.parallel.events.CellEvent` *and* mirrored into the
  resulting :class:`~repro.core.result.SearchResult.events` stream, so
  the persisted record shows the cell was not a first-try success.
* **Pool self-healing** — a worker death (crash, OOM-kill,
  ``os._exit``) loses only its own cell; the supervisor re-submits the
  cell to the healed pool up to ``pool_restarts`` times across the
  grid, emitting ``pool_restarted`` each time.  When the budget is
  exhausted it emits ``pool_degraded`` once, drains every outcome the
  surviving workers already produced (finished work is never
  recomputed), and runs the remaining cells serially.
* **Poison-cell quarantine** — a cell whose execution has killed a
  worker ``poison_threshold`` times is pinned to serial execution
  (``cell_pinned``) instead of re-breaking a fresh worker, so one
  poisonous cell cannot eat the whole restart budget.

Results are yielded in submission order regardless of completion order,
which keeps downstream cache assembly byte-identical to serial runs.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.events import SearchEvent
from repro.core.result import SearchResult
from repro.faults.retry import RetryPolicy
from repro.parallel.events import CellEvent
from repro.parallel.executors import Cell, CellExecutor, CellFn, CellOutcome

#: Optional progress-event sink.
EventSink = Callable[[CellEvent], None] | None


@dataclass(frozen=True)
class SupervisionConfig:
    """Tunables of the supervision policy.

    Attributes:
        cell_timeout_s: wall-clock deadline per cell execution; ``None``
            disables deadlines.  Only enforced on executors that
            support cancellation.
        retry_policy: pool-attempt budget and backoff schedule for
            cells that raise application errors in workers.  The
            default (``max_attempts=1``) goes straight to the serial
            fallback, preserving the engine's historical behaviour.
        pool_restarts: total worker deaths survived (pool healed and
            the lost cell re-submitted) before the supervisor degrades
            the rest of the grid to serial execution.
        poison_threshold: worker deaths attributable to one cell before
            that cell is pinned to serial execution.
        poll_tick_s: supervision loop granularity while deadlines are
            armed; also bounds how stale a deadline check can be.
        retry_seed: seed of the backoff-jitter stream (kept separate
            from cell seeds so supervision never perturbs results).
    """

    cell_timeout_s: float | None = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    pool_restarts: int = 2
    poison_threshold: int = 2
    poll_tick_s: float = 0.05
    retry_seed: int = 0

    def __post_init__(self) -> None:
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError(
                f"cell_timeout_s must be positive, got {self.cell_timeout_s}"
            )
        if self.pool_restarts < 0:
            raise ValueError(
                f"pool_restarts must be >= 0, got {self.pool_restarts}"
            )
        if self.poison_threshold < 1:
            raise ValueError(
                f"poison_threshold must be >= 1, got {self.poison_threshold}"
            )
        if self.poll_tick_s <= 0:
            raise ValueError(f"poll_tick_s must be positive, got {self.poll_tick_s}")


class Supervisor:
    """Drives one grid of cells through an executor under a policy.

    Args:
        executor: the dispatch backend (serial, fork pool, or any other
            :class:`~repro.parallel.executors.CellExecutor`).
        serial_run: executes one cell in the supervisor's own process —
            the fallback path for timeouts, exhausted retries, poison
            cells, and degradation.
        config: the supervision policy.
        on_event: optional :class:`~repro.parallel.events.CellEvent`
            sink.
    """

    def __init__(
        self,
        executor: CellExecutor,
        serial_run: CellFn,
        config: SupervisionConfig | None = None,
        on_event: EventSink = None,
    ) -> None:
        self.executor = executor
        self.serial_run = serial_run
        self.config = config if config is not None else SupervisionConfig()
        self.on_event = on_event
        self.restarts_used = 0
        self._rng = np.random.default_rng(self.config.retry_seed)

    # -- event helpers ----------------------------------------------------

    def _emit(self, event: CellEvent) -> None:
        if self.on_event is not None:
            self.on_event(event)

    # -- supervision ------------------------------------------------------

    def run(self, cells: Sequence[Cell]) -> Iterator[tuple[Cell, SearchResult]]:
        """Execute ``cells``, yielding ``(cell, result)`` in submission order."""
        order = list(cells)
        results: dict[Cell, SearchResult] = {}
        pending: set[Cell] = set(order)
        in_pool: set[Cell] = set()
        attempts: dict[Cell, int] = {}
        crashes: dict[Cell, int] = {}
        mirrors: dict[Cell, list[SearchEvent]] = {}
        degraded = False
        emitted = 0

        deadline_armed = (
            self.config.cell_timeout_s is not None
            and getattr(self.executor, "supports_cancel", False)
        )

        def finish(cell: Cell, result: SearchResult) -> None:
            if mirrors.get(cell):
                # The persisted record shows the cell's retries: mirror
                # events precede the (re-run) search's own stream.
                result = dataclasses.replace(
                    result, events=tuple(mirrors[cell]) + result.events
                )
            results[cell] = result
            pending.discard(cell)
            self._emit(CellEvent.for_cell("cell_finished", cell))

        resolve_serial = getattr(self.executor, "resolve_serial", None)

        def run_serially(cell: Cell) -> None:
            in_pool.discard(cell)
            result = self.serial_run(cell)
            if resolve_serial is not None:
                # Durable executors persist results outside this process
                # (e.g. the work queue's database); telling them about a
                # coordinator-side completion keeps that record matching
                # the cache.
                resolve_serial(cell, result)
            finish(cell, result)

        def resubmit(cell: Cell) -> None:
            # A resubmitted cell is by definition the oldest in flight;
            # jumping the backlog keeps it from head-of-line-blocking
            # the in-order yield of every completed sibling.
            self.executor.submit(cell, front=True)
            in_pool.add(cell)

        try:
            for cell in order:
                self._emit(CellEvent.for_cell("cell_scheduled", cell))
                attempts[cell] = 1
                self.executor.submit(cell)
                in_pool.add(cell)

            while pending and not degraded:
                tick = self.config.poll_tick_s if deadline_armed else None
                outcomes = self.executor.poll(tick)
                for outcome in outcomes:
                    if outcome.cell not in pending:
                        continue  # late result for a cell already handled
                    in_pool.discard(outcome.cell)
                    if outcome.ok:
                        finish(outcome.cell, outcome.result)
                    elif outcome.crashed:
                        # Keep processing the rest of the batch even when
                        # this crash exhausts the budget: sibling results
                        # in the same poll are finished work.
                        if not degraded:
                            degraded = self._handle_crash(
                                outcome.cell, crashes, run_serially, resubmit
                            )
                    else:
                        self._handle_error(
                            outcome, attempts, mirrors, run_serially, resubmit
                        )
                if deadline_armed and not degraded:
                    self._enforce_deadlines(pending, in_pool, run_serially)
                if not degraded and pending and not in_pool:
                    # Nothing is in flight yet cells remain (an executor
                    # lost track of work): fail safe, run them serially.
                    degraded = True
                while emitted < len(order) and order[emitted] in results:
                    yield order[emitted], results[order[emitted]]
                    emitted += 1

            if pending:
                # Degraded: drain whatever the surviving workers already
                # finished — completed work is never recomputed — then
                # run only the result-less cells serially, in order.
                for outcome in self.executor.poll(0):
                    if outcome.ok and outcome.cell in pending:
                        in_pool.discard(outcome.cell)
                        finish(outcome.cell, outcome.result)
                self.executor.shutdown()
                for cell in order:
                    if cell in pending:
                        run_serially(cell)
                while emitted < len(order):
                    yield order[emitted], results[order[emitted]]
                    emitted += 1
        finally:
            self.executor.shutdown()

    # -- failure handling -------------------------------------------------

    def _handle_error(
        self,
        outcome: CellOutcome,
        attempts: dict[Cell, int],
        mirrors: dict[Cell, list[SearchEvent]],
        run_serially: Callable[[Cell], None],
        resubmit: Callable[[Cell], None],
    ) -> None:
        """An application error in a worker: retry, then serial fallback."""
        cell = outcome.cell
        self._emit(CellEvent.for_cell("cell_failed", cell, outcome.error or ""))
        used = attempts[cell]
        policy = self.config.retry_policy
        if used < policy.max_attempts:
            attempts[cell] = used + 1
            delay = policy.wait(used, self._rng)
            detail = (
                f"pool attempt {used + 1}/{policy.max_attempts} "
                f"after {outcome.error} (backoff {delay:.2f}s)"
            )
            resubmit(cell)
        else:
            detail = f"serial fallback after {outcome.error}"
        self._emit(CellEvent.for_cell("cell_retried", cell, detail))
        mirrors.setdefault(cell, []).append(
            SearchEvent(kind="cell_retried", step=1, detail=detail)
        )
        if used >= policy.max_attempts:
            # The last resort runs in the parent; a deterministic
            # failure raises here exactly as the serial path would.
            run_serially(cell)

    def _handle_crash(
        self,
        cell: Cell,
        crashes: dict[Cell, int],
        run_serially: Callable[[Cell], None],
        resubmit: Callable[[Cell], None],
    ) -> bool:
        """A worker died running ``cell``; returns True to degrade."""
        count = crashes.get(cell, 0) + 1
        crashes[cell] = count
        if count >= self.config.poison_threshold:
            self._emit(
                CellEvent.for_cell(
                    "cell_pinned",
                    cell,
                    f"killed its worker {count}x; pinned to serial execution",
                )
            )
            run_serially(cell)
            return False
        if self.restarts_used < self.config.pool_restarts:
            self.restarts_used += 1
            self._emit(
                CellEvent.for_grid(
                    "pool_restarted",
                    f"worker died running {cell}; restart "
                    f"{self.restarts_used}/{self.config.pool_restarts}",
                )
            )
            resubmit(cell)
            return False
        self._emit(
            CellEvent.for_grid(
                "pool_degraded",
                "pool restart budget exhausted; finishing remaining "
                "cells serially",
            )
        )
        return True

    def _enforce_deadlines(
        self,
        pending: set[Cell],
        in_pool: set[Cell],
        run_serially: Callable[[Cell], None],
    ) -> None:
        """Cancel and serially complete cells past their deadline."""
        timeout = self.config.cell_timeout_s
        now = time.monotonic()
        started_at = getattr(self.executor, "started_at", None)
        for cell in sorted(in_pool & pending):
            started = started_at(cell) if started_at is not None else None
            if started is None or now - started < timeout:
                continue
            if self.executor.cancel(cell):
                self._emit(
                    CellEvent.for_cell(
                        "cell_timeout",
                        cell,
                        f"exceeded {timeout:.1f}s deadline; cancelled, "
                        "completing serially",
                    )
                )
                run_serially(cell)
