"""Parallel experiment engine.

Shards :class:`~repro.analysis.runner.RunGrid` cells across a process
pool with deterministic per-cell seeding, so grid results are identical
(bit for bit, caches included) no matter how many workers ran them.
"""

from repro.parallel.engine import run_cells
from repro.parallel.events import CELL_EVENT_KINDS, CellEvent

__all__ = ["CELL_EVENT_KINDS", "CellEvent", "run_cells"]
