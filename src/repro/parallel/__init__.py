"""Parallel experiment engine.

Shards :class:`~repro.analysis.runner.RunGrid` cells across a process
pool with deterministic per-cell seeding, so grid results are identical
(bit for bit, caches included) no matter how many workers ran them.
Worker counts are clamped to what the machine and grid can use
(:func:`~repro.parallel.engine.plan_workers`), and the trace's bulk
arrays reach workers through one shared-memory segment
(:class:`~repro.parallel.dataplane.TraceShare`) instead of per-worker
copies.
"""

from repro.parallel.dataplane import TraceShare
from repro.parallel.engine import POOL_MIN_CELLS, plan_workers, run_cells
from repro.parallel.events import CELL_EVENT_KINDS, CellEvent

__all__ = [
    "CELL_EVENT_KINDS",
    "CellEvent",
    "POOL_MIN_CELLS",
    "TraceShare",
    "plan_workers",
    "run_cells",
]
