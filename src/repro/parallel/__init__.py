"""Supervised parallel experiment engine.

Shards :class:`~repro.analysis.runner.RunGrid` cells across a process
pool with deterministic per-cell seeding, so grid results are identical
(bit for bit, caches included) no matter how many workers ran them.
Cells are dispatched through the pluggable
:class:`~repro.parallel.executors.CellExecutor` protocol
(``submit/poll/cancel/shutdown``) and supervised by
:class:`~repro.parallel.supervisor.Supervisor` — per-cell deadlines,
bounded retries, pool self-healing with a restart budget, poison-cell
quarantine.  Worker counts are clamped to what the machine and grid can
use (:func:`~repro.parallel.engine.plan_workers`), the trace's bulk
arrays reach workers through one shared-memory segment
(:class:`~repro.parallel.dataplane.TraceShare`) instead of per-worker
copies, and completed cells are journaled crash-safely by
:class:`~repro.parallel.checkpoint.GridCheckpoint` so interrupted grids
resume instead of recomputing.

For campaigns that must survive more than worker deaths, the durable
work queue (:mod:`repro.parallel.queue`) moves grid state into a SQLite
file next to the cache: leased cells, heartbeats, at-least-once
requeue of cells whose worker died, and an external worker fleet via
``arrow queue-worker`` — all behind the same executor protocol
(:class:`~repro.parallel.queue.QueueExecutor`).

On the other axis entirely, ``executor="vector"``
(:class:`~repro.parallel.vector.VectorizedGridDriver`) trades process
parallelism for batched linear algebra: every cell's search advances in
lock-step and the per-round surrogate work — ensemble growth, packed
tree traversal, GP conditioning, EI — is computed once across all live
searches, bit-identical per search to the serial loop.
"""

from repro.parallel.batch import BATCH_BACKENDS, MeasurementFanout
from repro.parallel.checkpoint import GridCheckpoint, flush_on_signal
from repro.parallel.dataplane import TraceShare
from repro.parallel.engine import (
    DEFAULT_POOL_RESTARTS,
    EXECUTOR_CHOICES,
    POOL_MIN_CELLS,
    build_executor,
    plan_workers,
    run_cells,
)
from repro.parallel.events import CELL_EVENT_KINDS, GRID_EVENT_KINDS, CellEvent
from repro.parallel.executors import (
    CellExecutor,
    CellOutcome,
    ForkPoolExecutor,
    SerialExecutor,
)
from repro.parallel.queue import (
    Lease,
    QueueConfig,
    QueueExecutor,
    WorkQueue,
    queue_worker_loop,
)
from repro.parallel.supervisor import SupervisionConfig, Supervisor
from repro.parallel.vector import VectorizedGridDriver

__all__ = [
    "BATCH_BACKENDS",
    "CELL_EVENT_KINDS",
    "CellEvent",
    "CellExecutor",
    "CellOutcome",
    "DEFAULT_POOL_RESTARTS",
    "EXECUTOR_CHOICES",
    "ForkPoolExecutor",
    "GRID_EVENT_KINDS",
    "GridCheckpoint",
    "Lease",
    "MeasurementFanout",
    "POOL_MIN_CELLS",
    "QueueConfig",
    "QueueExecutor",
    "SerialExecutor",
    "SupervisionConfig",
    "Supervisor",
    "TraceShare",
    "VectorizedGridDriver",
    "WorkQueue",
    "build_executor",
    "flush_on_signal",
    "plan_workers",
    "queue_worker_loop",
    "run_cells",
]
