"""Trace persistence: JSON round-trip.

Traces are saved as a single self-describing JSON document (workload ids,
VM names, metric names, the three value arrays, and the generation seed).
Loading validates the ids against the in-process registry and catalog, so
a trace file produced by a different registry version fails loudly rather
than silently misaligning rows.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.cloud.catalog import DEFAULT_CATALOG_NAME, get_catalog
from repro.simulator.lowlevel import METRIC_NAMES
from repro.trace.dataset import BenchmarkTrace
from repro.workloads.registry import WorkloadRegistry, default_registry

_FORMAT_VERSION = 1


def save_trace(trace: BenchmarkTrace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` as JSON (parent dirs must exist)."""
    document = {
        "format_version": _FORMAT_VERSION,
        "seed": trace.seed,
        "catalog": trace.catalog_name,
        "workloads": [w.workload_id for w in trace.registry],
        "vms": [vm.name for vm in trace.catalog],
        "metric_names": list(METRIC_NAMES),
        "times": trace.times.tolist(),
        "costs": trace.costs.tolist(),
        "metrics": trace.metrics.tolist(),
    }
    Path(path).write_text(json.dumps(document))


def load_trace(path: str | Path, registry: WorkloadRegistry | None = None) -> BenchmarkTrace:
    """Load a trace written by :func:`save_trace`.

    Raises:
        ValueError: if the file's format version, workload ids, VM names
            or metric names do not match the in-process definitions.
    """
    document = json.loads(Path(path).read_text())

    version = document.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")

    registry = registry if registry is not None else default_registry()
    # Pre-catalog files carry no "catalog" key; they were always written
    # against the paper's 18 types.
    catalog_name = document.get("catalog", DEFAULT_CATALOG_NAME)
    try:
        catalog = get_catalog(catalog_name)
    except ValueError as error:
        raise ValueError(f"trace references an unknown catalog: {error}") from None

    expected_workloads = [w.workload_id for w in registry]
    if document["workloads"] != expected_workloads:
        raise ValueError("trace workload ids do not match the current registry")
    expected_vms = [vm.name for vm in catalog.vms]
    if document["vms"] != expected_vms:
        raise ValueError(
            f"trace VM names do not match catalog {catalog_name!r}"
        )
    if document["metric_names"] != list(METRIC_NAMES):
        raise ValueError("trace metric names do not match the current metric set")

    return BenchmarkTrace(
        registry=registry,
        catalog=catalog.vms,
        times=np.array(document["times"], dtype=float),
        costs=np.array(document["costs"], dtype=float),
        metrics=np.array(document["metrics"], dtype=float),
        seed=int(document["seed"]),
        catalog_name=catalog_name,
    )
