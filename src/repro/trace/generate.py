"""Deterministic trace generation.

``generate_trace(seed)`` sweeps every workload across every VM through the
simulator, with each workload's interference-noise stream seeded from the
trace seed and the workload id — so the canonical trace is bit-identical
across processes and machines.  ``default_trace()`` memoises the canonical
``seed=2018`` trace used by all experiments.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict

import numpy as np

from repro.cloud.catalog import DEFAULT_CATALOG_NAME, Catalog, get_catalog
from repro.cloud.pricing import PriceList, default_price_list
from repro.cloud.vmtypes import VMType, default_catalog
from repro.simulator.cluster import SimulatedCloud
from repro.simulator.lowlevel import METRIC_NAMES
from repro.simulator.noise import InterferenceModel
from repro.trace.dataset import BenchmarkTrace
from repro.workloads.registry import WorkloadRegistry, default_registry

#: Seed of the canonical trace (the paper's data was collected in 2017-18).
DEFAULT_TRACE_SEED = 2018


def generate_trace(
    seed: int = DEFAULT_TRACE_SEED,
    registry: WorkloadRegistry | None = None,
    catalog: Catalog | tuple[VMType, ...] | None = None,
    prices: PriceList | None = None,
    time_sigma: float | None = None,
    metric_sigma: float | None = None,
) -> BenchmarkTrace:
    """Measure every workload on every VM once and record the results.

    Args:
        seed: master seed; each workload's noise stream is derived from it.
        registry: workloads to sweep (defaults to the canonical 107).
        catalog: VM types to sweep — a named :class:`Catalog` (which also
            supplies prices) or a plain tuple (defaults to the canonical 18).
        prices: price list for deployment costs.
        time_sigma: override the interference noise on execution time
            (``None`` keeps the model default; ``0.0`` gives a noise-free
            trace, useful in tests).
        metric_sigma: override the noise on low-level metrics, likewise.
    """
    registry = registry if registry is not None else default_registry()
    if isinstance(catalog, Catalog):
        catalog_name = catalog.name
        if prices is None:
            prices = catalog.prices
        catalog = catalog.vms
    else:
        catalog = catalog if catalog is not None else default_catalog()
        # A plain tuple only gets the default name when it *is* the
        # default catalog; ad-hoc tuples are recorded as "custom".
        catalog_name = (
            DEFAULT_CATALOG_NAME if catalog == default_catalog() else "custom"
        )
    prices = prices if prices is not None else default_price_list()

    n_w, n_v = len(registry), len(catalog)
    times = np.empty((n_w, n_v))
    costs = np.empty((n_w, n_v))
    metrics = np.empty((n_w, n_v, len(METRIC_NAMES)))

    noise_kwargs = {}
    if time_sigma is not None:
        noise_kwargs["time_sigma"] = time_sigma
    if metric_sigma is not None:
        noise_kwargs["metric_sigma"] = metric_sigma

    for row, workload in enumerate(registry):
        workload_seed = seed ^ zlib.crc32(workload.workload_id.encode())
        cloud = SimulatedCloud(
            workload,
            catalog=catalog,
            prices=prices,
            noise=InterferenceModel(seed=workload_seed, **noise_kwargs),
        )
        for col, vm in enumerate(catalog):
            measurement = cloud.measure(vm)
            times[row, col] = measurement.execution_time_s
            costs[row, col] = measurement.cost_usd
            metrics[row, col] = measurement.metrics.to_vector()

    return BenchmarkTrace(
        registry=registry,
        catalog=catalog,
        times=times,
        costs=costs,
        metrics=metrics,
        seed=seed,
        catalog_name=catalog_name,
    )


# Bounded LRU memo for canonical traces.  A trace's bulk arrays scale
# with the catalog (107 workloads x up to ~390 types x metrics), and
# user-registered catalogs make the name space open-ended — an unbounded
# memo would pin every catalog a long-lived process ever touched.  Four
# slots comfortably cover the built-in catalogs plus one custom.
_CANONICAL_TRACES: OrderedDict[str, BenchmarkTrace] = OrderedDict()
_CANONICAL_TRACES_MAX = 4


def canonical_trace(catalog_name: str = DEFAULT_CATALOG_NAME) -> BenchmarkTrace:
    """The canonical trace (seed 2018) for a named catalog, memoised.

    ``canonical_trace()`` is the paper's dataset; other names sweep the
    same 107 workloads over that catalog's types with the same seeding
    scheme, so large-catalog searches replay deterministic data too.
    The memo is a small LRU (:data:`_CANONICAL_TRACES_MAX` entries):
    traces are deterministic, so evicting one only costs regeneration
    time, never correctness.
    """
    if catalog_name in _CANONICAL_TRACES:
        _CANONICAL_TRACES.move_to_end(catalog_name)
        return _CANONICAL_TRACES[catalog_name]
    trace = generate_trace(DEFAULT_TRACE_SEED, catalog=get_catalog(catalog_name))
    _CANONICAL_TRACES[catalog_name] = trace
    while len(_CANONICAL_TRACES) > _CANONICAL_TRACES_MAX:
        _CANONICAL_TRACES.popitem(last=False)
    return trace


def default_trace() -> BenchmarkTrace:
    """The canonical trace (seed 2018), generated once per process."""
    return canonical_trace(DEFAULT_CATALOG_NAME)
