"""Benchmark traces: the recorded 107-workload x catalog measurement matrix.

The canonical trace sweeps the paper's 18-VM ``aws-2017`` catalog;
:func:`~repro.trace.generate.canonical_trace` builds the same
deterministic dataset for any registered catalog (210/390 types).

The paper first collects one large dataset (execution time, deployment
cost and low-level metrics for every workload on every VM) and then
*replays* the optimisers against it, so that 100 repeats with different
initial points compare methods on identical ground truth.  This package
provides the trace container, its deterministic generation from the
simulator, a replay environment, and file round-trip.
"""

from repro.trace.dataset import BenchmarkTrace, TraceEnvironment
from repro.trace.generate import (
    DEFAULT_TRACE_SEED,
    canonical_trace,
    default_trace,
    generate_trace,
)
from repro.trace.io import load_trace, save_trace

__all__ = [
    "BenchmarkTrace",
    "TraceEnvironment",
    "DEFAULT_TRACE_SEED",
    "canonical_trace",
    "default_trace",
    "generate_trace",
    "load_trace",
    "save_trace",
]
