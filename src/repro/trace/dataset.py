"""Trace container and replay environment.

:class:`BenchmarkTrace` is the study's dataset: for each (workload, VM)
pair it records execution time, deployment cost, and the six low-level
metrics.  :class:`TraceEnvironment` adapts one workload's row of the trace
to the :class:`~repro.simulator.cluster.MeasurementEnvironment` protocol,
so optimisers replay against fixed recorded values — the paper's
evaluation semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.vmtypes import VMType, default_catalog
from repro.simulator.cluster import Measurement
from repro.simulator.lowlevel import METRIC_NAMES, LowLevelMetrics
from repro.workloads.registry import WorkloadRegistry, default_registry
from repro.workloads.spec import Workload


@dataclass(frozen=True)
class BenchmarkTrace:
    """Measurements of every workload on every VM type.

    Attributes:
        registry: the workloads, in row order.
        catalog: the VM types, in column order.
        times: ``(n_workloads, n_vms)`` execution times in seconds.
        costs: ``(n_workloads, n_vms)`` deployment costs in USD.
        metrics: ``(n_workloads, n_vms, n_metrics)`` low-level metrics in
            :data:`~repro.simulator.lowlevel.METRIC_NAMES` order.
        seed: the generation seed, recorded for provenance.
        catalog_name: name of the registered catalog the columns came
            from (``"aws-2017"`` for the paper's types), recorded so
            saved traces can be validated against the right catalog.
    """

    registry: WorkloadRegistry
    catalog: tuple[VMType, ...]
    times: np.ndarray
    costs: np.ndarray
    metrics: np.ndarray
    seed: int
    catalog_name: str = "aws-2017"
    _row_by_id: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        n_w, n_v = len(self.registry), len(self.catalog)
        expected = {
            "times": (n_w, n_v),
            "costs": (n_w, n_v),
            "metrics": (n_w, n_v, len(METRIC_NAMES)),
        }
        for name, shape in expected.items():
            actual = getattr(self, name).shape
            if actual != shape:
                raise ValueError(f"{name} has shape {actual}, expected {shape}")
        if np.any(self.times <= 0) or np.any(self.costs <= 0):
            raise ValueError("trace contains non-positive times or costs")
        object.__setattr__(
            self,
            "_row_by_id",
            {w.workload_id: i for i, w in enumerate(self.registry)},
        )

    # -- lookup ----------------------------------------------------------

    def row_of(self, workload: Workload | str) -> int:
        """Row index of ``workload`` (a :class:`Workload` or workload id)."""
        workload_id = workload.workload_id if isinstance(workload, Workload) else workload
        try:
            return self._row_by_id[workload_id]
        except KeyError:
            raise KeyError(f"workload {workload_id!r} is not in this trace") from None

    def column_of(self, vm: VMType | str) -> int:
        """Column index of ``vm`` (a :class:`VMType` or name)."""
        name = vm.name if isinstance(vm, VMType) else vm
        for i, candidate in enumerate(self.catalog):
            if candidate.name == name:
                return i
        raise KeyError(f"VM type {name!r} is not in this trace")

    def times_for(self, workload: Workload | str) -> np.ndarray:
        """Execution times of ``workload`` across the catalog (copy)."""
        return self.times[self.row_of(workload)].copy()

    def costs_for(self, workload: Workload | str) -> np.ndarray:
        """Deployment costs of ``workload`` across the catalog (copy)."""
        return self.costs[self.row_of(workload)].copy()

    def metrics_for(self, workload: Workload | str, vm: VMType | str) -> LowLevelMetrics:
        """Recorded low-level metrics of one (workload, VM) run."""
        return LowLevelMetrics.from_vector(
            self.metrics[self.row_of(workload), self.column_of(vm)]
        )

    def measurement(self, workload: Workload | str, vm: VMType | str) -> Measurement:
        """The full recorded measurement of one (workload, VM) pair."""
        row, col = self.row_of(workload), self.column_of(vm)
        return Measurement(
            vm=self.catalog[col],
            execution_time_s=float(self.times[row, col]),
            cost_usd=float(self.costs[row, col]),
            metrics=LowLevelMetrics.from_vector(self.metrics[row, col]),
        )

    # -- summaries ---------------------------------------------------------

    def objective_values(self, workload: Workload | str, objective: str) -> np.ndarray:
        """Raw objective row: ``"time"``, ``"cost"`` or ``"product"``."""
        row = self.row_of(workload)
        if objective == "time":
            return self.times[row].copy()
        if objective == "cost":
            return self.costs[row].copy()
        if objective == "product":
            return (self.times[row] * self.costs[row]).copy()
        raise ValueError(f"unknown objective {objective!r}; use 'time', 'cost' or 'product'")

    def best_vm(self, workload: Workload | str, objective: str = "time") -> VMType:
        """The optimal VM type for ``workload`` under ``objective``."""
        values = self.objective_values(workload, objective)
        return self.catalog[int(np.argmin(values))]

    def normalised(self, workload: Workload | str, objective: str = "time") -> np.ndarray:
        """Objective row divided by its minimum (1.0 = the optimal VM)."""
        values = self.objective_values(workload, objective)
        return values / values.min()

    def spread(self, workload: Workload | str, objective: str = "time") -> float:
        """Worst/best ratio of the objective for ``workload`` (Figure 3)."""
        values = self.objective_values(workload, objective)
        return float(values.max() / values.min())

    def environment(self, workload: Workload | str) -> TraceEnvironment:
        """A replay environment for one workload of this trace."""
        workload_obj = (
            workload
            if isinstance(workload, Workload)
            else self.registry.get(workload)
        )
        return TraceEnvironment(self, workload_obj)


class TraceEnvironment:
    """Replay one workload's recorded measurements, charging per call.

    Conforms to :class:`~repro.simulator.cluster.MeasurementEnvironment`.
    Re-measuring the same VM returns the identical recorded values but is
    charged again — optimisers are expected not to repeat measurements.
    """

    def __init__(self, trace: BenchmarkTrace, workload: Workload) -> None:
        self._trace = trace
        self._workload = workload
        self._count = 0

    @property
    def catalog(self) -> tuple[VMType, ...]:
        return self._trace.catalog

    @property
    def workload(self) -> Workload:
        """The workload this environment replays."""
        return self._workload

    @property
    def measurement_count(self) -> int:
        return self._count

    def measure(self, vm: VMType) -> Measurement:
        self._count += 1
        return self._trace.measurement(self._workload, vm)

    def reset(self) -> None:
        self._count = 0
