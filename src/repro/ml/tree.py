"""Regression trees with extremely-randomised splits.

Building block for the Extra-Trees ensemble (Geurts, Ernst & Wehenkel,
2006) that Augmented BO uses as its surrogate: at every node a random
subset of features is considered and, for each, a *uniformly random*
threshold between the node's min and max — the split with the best
variance reduction wins.  Randomised thresholds are what distinguish
Extra-Trees from random forests and make single trees cheap to grow.

The implementation is tuned for the surrogate's inner loop (the ensemble
is refitted after every measurement): split search uses running-sum SSE
instead of repeated variance calls, and prediction is a vectorised batch
traversal over flat node arrays.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


def coerce_training_data(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce ``(X, y)`` once, for a whole ensemble.

    Every tree grower in this package accepts the result without
    re-validating, so an ensemble fit pays the (cheap, but per-tree
    repeated) checks exactly once.

    Raises:
        ValueError: on empty or mismatched inputs.
    """
    X = np.ascontiguousarray(X, dtype=float)
    y = np.ascontiguousarray(y, dtype=float).reshape(-1)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if X.shape[0] == 0:
        raise ValueError("cannot fit a tree on zero observations")
    return X, y


@dataclass(frozen=True)
class PackedTrees:
    """A whole ensemble flattened into one set of node arrays.

    Every fitted tree in this package stores its nodes as flat arrays
    (``feature``, ``threshold``, ``left``, ``right``, ``value``; leaves
    have ``feature == -1``).  Packing concatenates those arrays across
    trees, offsetting child indices, so the *entire ensemble* can be
    evaluated with one vectorised traversal over ``n_trees x n_rows``
    cursor states instead of one Python-level traversal per tree — the
    ensemble predict becomes a single flat-array walk.

    Attributes:
        feature: split feature per node (-1 for leaves), all trees.
        threshold: split threshold per node.
        left: absolute (packed) index of the left child, -1 for leaves.
        right: absolute (packed) index of the right child, -1 for leaves.
        value: node mean, used at leaves.
        roots: packed index of each tree's root, one per tree.
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray
    roots: np.ndarray

    @property
    def n_trees(self) -> int:
        """Number of trees packed together."""
        return int(self.roots.size)

    @property
    def node_count(self) -> int:
        """Total number of nodes across all packed trees."""
        return int(self.feature.size)


def pack_trees(trees: Sequence) -> PackedTrees:
    """Pack fitted trees (any class using the flat node layout) together.

    Raises:
        ValueError: on an empty sequence or an unfitted tree.
    """
    if not trees:
        raise ValueError("cannot pack an empty tree sequence")
    features, thresholds, lefts, rights, values, roots = [], [], [], [], [], []
    offset = 0
    for tree in trees:
        if tree._feature is None:
            raise ValueError("all trees must be fitted before packing")
        features.append(tree._feature)
        thresholds.append(tree._threshold)
        # Child pointers become absolute packed indices; leaves stay -1.
        lefts.append(np.where(tree._left >= 0, tree._left + offset, -1))
        rights.append(np.where(tree._right >= 0, tree._right + offset, -1))
        values.append(tree._value)
        roots.append(offset)
        offset += tree._feature.size
    return PackedTrees(
        feature=np.concatenate(features),
        threshold=np.concatenate(thresholds),
        left=np.concatenate(lefts),
        right=np.concatenate(rights),
        value=np.concatenate(values),
        roots=np.array(roots, dtype=np.int64),
    )


#: Row-chunk size for :func:`predict_packed`.  Bounds the transient
#: ``n_trees * chunk`` cursor arrays when scoring hundreds of candidates
#: against many sources (u * m query rows grows quadratically over a
#: search); rows traverse independently, so chunking is bit-identical.
PREDICT_CHUNK_ROWS = 16384


def _predict_packed_block(packed: PackedTrees, X: np.ndarray) -> np.ndarray:
    """One unchunked flat traversal over ``X`` (see :func:`predict_packed`)."""
    n_rows = X.shape[0]
    node = np.repeat(packed.roots, n_rows)
    cols = np.tile(np.arange(n_rows), packed.n_trees)
    active = packed.feature[node] >= 0
    while active.any():
        current = node[active]
        feats = packed.feature[current]
        go_left = X[cols[active], feats] <= packed.threshold[current]
        node[active] = np.where(go_left, packed.left[current], packed.right[current])
        active = packed.feature[node] >= 0
    return packed.value[node].reshape(packed.n_trees, n_rows)


def predict_packed(
    packed: PackedTrees, X: np.ndarray, chunk_rows: int | None = None
) -> np.ndarray:
    """Per-tree predictions for ``X`` in flat traversals.

    All ``n_trees * n_rows`` cursors descend simultaneously; the loop
    runs for the depth of the deepest tree rather than once per tree.
    Inputs wider than ``chunk_rows`` rows (default
    :data:`PREDICT_CHUNK_ROWS`) are traversed in row chunks so the
    cursor arrays stay cache-sized at large candidate counts — each row
    descends independently, so the result is the same bit for bit.
    Returns an ``(n_trees, n_rows)`` array identical to stacking each
    tree's own :meth:`RegressionTree.predict`.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    n_rows = X.shape[0]
    chunk = PREDICT_CHUNK_ROWS if chunk_rows is None else int(chunk_rows)
    if chunk < 1:
        raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
    if n_rows <= chunk:
        return _predict_packed_block(packed, X)
    out = np.empty((packed.n_trees, n_rows))
    for start in range(0, n_rows, chunk):
        stop = min(start + chunk, n_rows)
        out[:, start:stop] = _predict_packed_block(packed, X[start:stop])
    return out


def predict_packed_many(
    packeds: Sequence[PackedTrees], Xs: Sequence[np.ndarray]
) -> list[np.ndarray]:
    """Per-tree predictions for many (ensemble, query) pairs in one walk.

    Concatenates the ensembles' node arrays (child pointers rebased) and
    all query rows, then descends every ``(tree, row)`` cursor of every
    pair simultaneously — one traversal loop bounded by the deepest tree
    anywhere instead of one loop per ensemble.  Each cursor's descent is
    independent and compares exactly the operands the per-ensemble
    :func:`predict_packed` would, so result ``i`` is bit-identical to
    ``predict_packed(packeds[i], Xs[i])``.

    Intended for cross-search drivers batching modest per-search query
    sets; rows are not chunked, so keep the total cursor count
    (``sum(n_trees_i * n_rows_i)``) within cache-friendly bounds.

    Raises:
        ValueError: on length mismatch or an empty pair list.
    """
    if len(packeds) != len(Xs):
        raise ValueError(
            f"got {len(packeds)} ensembles but {len(Xs)} query sets"
        )
    if not packeds:
        raise ValueError("cannot batch-predict zero ensembles")
    queries = []
    for X in Xs:
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        queries.append(X)
    feature = np.concatenate([p.feature for p in packeds])
    threshold = np.concatenate([p.threshold for p in packeds])
    value = np.concatenate([p.value for p in packeds])
    node_counts = [p.node_count for p in packeds]
    node_offsets = np.concatenate([[0], np.cumsum(node_counts)[:-1]])
    left = np.concatenate(
        [np.where(p.left >= 0, p.left + off, -1)
         for p, off in zip(packeds, node_offsets)]
    )
    right = np.concatenate(
        [np.where(p.right >= 0, p.right + off, -1)
         for p, off in zip(packeds, node_offsets)]
    )
    row_counts = [X.shape[0] for X in queries]
    row_offsets = np.concatenate([[0], np.cumsum(row_counts)[:-1]])
    # Ragged feature widths are fine: each cursor only ever indexes its
    # own ensemble's query block.  Pad to the widest for one flat array.
    width = max(X.shape[1] for X in queries)
    X_all = np.zeros((sum(row_counts), width))
    for X, off in zip(queries, row_offsets):
        X_all[off : off + X.shape[0], : X.shape[1]] = X
    node = np.concatenate(
        [np.repeat(p.roots + noff, nrows)
         for p, noff, nrows in zip(packeds, node_offsets, row_counts)]
    )
    cols = np.concatenate(
        [np.tile(np.arange(nrows, dtype=np.int64), p.n_trees) + roff
         for p, roff, nrows in zip(packeds, row_offsets, row_counts)]
    )
    active = feature[node] >= 0
    while active.any():
        current = node[active]
        feats = feature[current]
        go_left = X_all[cols[active], feats] <= threshold[current]
        node[active] = np.where(go_left, left[current], right[current])
        active = feature[node] >= 0
    values = value[node]
    out = []
    pos = 0
    for p, nrows in zip(packeds, row_counts):
        n = p.n_trees * nrows
        out.append(values[pos : pos + n].reshape(p.n_trees, nrows))
        pos += n
    return out


def adopt_nodes(
    tree,
    feature: np.ndarray,
    threshold: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    value: np.ndarray,
    depths: np.ndarray,
) -> None:
    """Install flat node arrays into ``tree`` as its fitted state.

    Works for any tree class using this package's flat node layout
    (:class:`RegressionTree` and the CART tree in
    :mod:`repro.ml.random_forest`).  Child indices must be tree-local.

    Raises:
        ValueError: when the arrays disagree on the node count.
    """
    n = feature.shape[0]
    for name, array in (
        ("threshold", threshold), ("left", left), ("right", right),
        ("value", value), ("depths", depths),
    ):
        if array.shape[0] != n:
            raise ValueError(
                f"{name} has {array.shape[0]} nodes but feature has {n}"
            )
    tree._feature = np.ascontiguousarray(feature, dtype=np.int64)
    tree._threshold = np.ascontiguousarray(threshold, dtype=float)
    tree._left = np.ascontiguousarray(left, dtype=np.int64)
    tree._right = np.ascontiguousarray(right, dtype=np.int64)
    tree._value = np.ascontiguousarray(value, dtype=float)
    tree._depths = [int(depth) for depth in depths]


class RegressionTree:
    """A single extremely-randomised regression tree.

    Args:
        max_features: features considered per split; ``None`` means all
            (the Extra-Trees default for regression).
        min_samples_split: nodes smaller than this become leaves.
        max_depth: depth cap; ``None`` means unlimited.
        seed: seed (or Generator) for split randomisation.
    """

    def __init__(
        self,
        max_features: int | None = None,
        min_samples_split: int = 2,
        max_depth: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_features = max_features
        self.min_samples_split = min_samples_split
        self.max_depth = max_depth
        self._rng = np.random.default_rng(seed)
        # Flat node arrays (filled by fit): leaves have feature == -1.
        self._feature: np.ndarray | None = None
        self._threshold: np.ndarray | None = None
        self._left: np.ndarray | None = None
        self._right: np.ndarray | None = None
        self._value: np.ndarray | None = None
        self._depths: list[int] = []

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree (0 before fitting)."""
        return 0 if self._feature is None else int(self._feature.size)

    @classmethod
    def from_arrays(
        cls,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        value: np.ndarray,
        depths: np.ndarray,
        **params,
    ) -> RegressionTree:
        """A fitted tree adopting pre-grown flat node arrays.

        Used by the level-synchronous builder
        (:mod:`repro.ml.tree_builder`), which grows whole ensembles at
        once and hands each tree its slice of the packed node arrays.
        ``params`` are forwarded to the constructor so the shell reports
        the hyper-parameters it was grown with.
        """
        tree = cls(**params)
        adopt_nodes(tree, feature, threshold, left, right, value, depths)
        return tree

    def fit(self, X: np.ndarray, y: np.ndarray) -> RegressionTree:
        """Grow the tree on observations ``(X, y)``.

        Raises:
            ValueError: on empty or mismatched inputs.
        """
        X, y = coerce_training_data(X, y)

        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []
        self._depths = []

        y_sq = y * y

        def grow(indices: np.ndarray, depth: int) -> int:
            node = len(features)
            node_y = y[indices]
            features.append(-1)
            thresholds.append(0.0)
            lefts.append(-1)
            rights.append(-1)
            values.append(float(node_y.mean()))
            self._depths.append(depth)

            if (
                indices.size < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or node_y.min() == node_y.max()
            ):
                return node

            split = self._best_random_split(X, y, y_sq, indices)
            if split is None:
                return node

            feature, threshold, left_mask = split
            left_child = grow(indices[left_mask], depth + 1)
            right_child = grow(indices[~left_mask], depth + 1)
            features[node] = feature
            thresholds[node] = threshold
            lefts[node] = left_child
            rights[node] = right_child
            return node

        grow(np.arange(X.shape[0]), 0)
        self._feature = np.array(features, dtype=np.int64)
        self._threshold = np.array(thresholds, dtype=float)
        self._left = np.array(lefts, dtype=np.int64)
        self._right = np.array(rights, dtype=np.int64)
        self._value = np.array(values, dtype=float)
        return self

    def _best_random_split(
        self, X: np.ndarray, y: np.ndarray, y_sq: np.ndarray, indices: np.ndarray
    ) -> tuple[int, float, np.ndarray] | None:
        """Pick the best of one random threshold per candidate feature.

        The winner minimises the children's summed squared error, computed
        from running sums (``sse = sum(y^2) - sum(y)^2 / n``) rather than
        per-partition variance calls.  Returns ``None`` when no candidate
        feature varies within the node.
        """
        n_features = X.shape[1]
        k = self.max_features if self.max_features is not None else n_features
        k = min(max(k, 1), n_features)
        candidates = self._rng.choice(n_features, size=k, replace=False)

        node_X = X[np.ix_(indices, candidates)]
        node_y = y[indices]
        node_y_sq = y_sq[indices]
        total_sum = float(node_y.sum())
        total_sq = float(node_y_sq.sum())
        n_total = indices.size

        lows = node_X.min(axis=0)
        highs = node_X.max(axis=0)
        varying = lows < highs
        if not varying.any():
            return None
        thresholds = lows + self._rng.uniform(size=k) * (highs - lows)

        masks = node_X <= thresholds  # (n_total, k)
        n_left = masks.sum(axis=0)
        valid = varying & (n_left > 0) & (n_left < n_total)
        if not valid.any():
            return None

        left_sum = node_y @ masks
        left_sq = node_y_sq @ masks
        n_right = n_total - n_left
        with np.errstate(divide="ignore", invalid="ignore"):
            sse = (
                left_sq
                - left_sum**2 / n_left
                + (total_sq - left_sq)
                - (total_sum - left_sum) ** 2 / n_right
            )
        sse = np.where(valid, sse, np.inf)
        pick = int(np.argmin(sse))
        return int(candidates[pick]), float(thresholds[pick]), masks[:, pick]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted values for each row of ``X`` (vectorised traversal).

        Raises:
            RuntimeError: if called before :meth:`fit`.
        """
        if self._feature is None:
            raise RuntimeError("tree must be fitted before predict")
        assert self._threshold is not None and self._value is not None
        assert self._left is not None and self._right is not None
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)

        node = np.zeros(X.shape[0], dtype=np.int64)
        active = self._feature[node] >= 0
        rows = np.arange(X.shape[0])
        while active.any():
            current = node[active]
            feats = self._feature[current]
            go_left = X[rows[active], feats] <= self._threshold[current]
            node[active] = np.where(go_left, self._left[current], self._right[current])
            active = self._feature[node] >= 0
        return self._value[node]

    def depth(self) -> int:
        """Depth of the fitted tree (a root-only tree has depth 0)."""
        if self._feature is None:
            raise RuntimeError("tree must be fitted before depth")
        return max(self._depths)
