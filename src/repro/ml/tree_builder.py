"""Level-synchronous, vectorized construction of tree ensembles.

The classic growers in :mod:`repro.ml.tree` and
:mod:`repro.ml.random_forest` recurse node by node in Python, which
makes the surrogate refit — Arrow's inner loop, re-run after every
measurement — the dominant cost of every experiment grid.  This module
replaces the recursion with *breadth-first* growth: all frontier nodes
of **all trees of the ensemble** advance one depth level per iteration,
and each level's split search is a handful of batched numpy reductions
instead of thousands of tiny per-node calls.

Mechanics shared by both builders:

* the samples of every (tree, node) pair live in one flat ``rows``
  array, grouped contiguously by frontier node, so per-node sums, mins
  and maxima are single ``ufunc.reduceat`` calls over segment offsets;
* children are emitted in a deterministic node-major order, so parent
  child-pointers are assigned *before* the children exist and the whole
  forest materialises as flat node arrays in one pass;
* nodes are finally stably re-ordered tree-major, which *is* the packed
  flat-node-array layout of :class:`repro.ml.tree.PackedTrees` —
  ``predict_packed`` consumes the builder's output with no conversion.

Split search per level:

* **Extra-Trees** (:func:`build_extra_trees`): one uniform threshold per
  (frontier node, candidate feature), drawn as a single matrix; the
  children's summed squared error comes from masked running sums
  (``sse = sum(y^2) - sum(y)^2 / n`` on each side).
* **CART** (:func:`build_cart_forest`): exact best-split search using
  cumulative-sum SSE over feature columns sorted *within each frontier
  node* (one ``lexsort`` per feature per level), evaluating every
  boundary where the sorted feature value changes.

Equivalence to the classic growers: both builders implement the same
split *rules* (same SSE objective, same validity conditions, same
threshold formulas), but consume random draws in breadth-first rather
than depth-first order, so a seeded vectorized ensemble is
*statistically* equivalent — not bit-identical — to a seeded classic
one.  ``tests/test_ml_tree_builder.py`` pins the per-split equivalence
under injected RNG draws, and ``tests/test_builder_equivalence.py``
checks that seeded searches reach identical outcomes on the tier-1
grid.  The classic growers stay available behind
``tree_builder="classic"``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.ml.tree import PackedTrees

#: The tree-construction strategies ensembles accept.
TREE_BUILDERS = ("vectorized", "classic")

#: A level splitter: (rows, sizes, starts) for the splittable frontier
#: -> (found, best_feature, best_threshold, go_left) where ``go_left``
#: is per-row and the rest are per-node.
_SplitFn = Callable[
    [np.ndarray, np.ndarray, np.ndarray],
    tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
]


@dataclass(frozen=True)
class BuiltForest:
    """A whole ensemble grown in one pass, already packed.

    Attributes:
        packed: the ensemble in :class:`~repro.ml.tree.PackedTrees`
            layout (tree-major, absolute child indices).
        offsets: packed start offset of each tree (== ``packed.roots``).
        counts: node count of each tree.
        depths: per-node depth, aligned with the packed arrays.
    """

    packed: PackedTrees
    offsets: np.ndarray
    counts: np.ndarray
    depths: np.ndarray

    @property
    def n_trees(self) -> int:
        """Number of trees grown."""
        return int(self.offsets.size)

    def tree_arrays(
        self, index: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One tree's ``(feature, threshold, left, right, value, depths)``.

        Child indices are rebased to be tree-local, so the arrays can be
        adopted by a standalone tree (:func:`repro.ml.tree.adopt_nodes`).
        """
        start = int(self.offsets[index])
        stop = start + int(self.counts[index])
        sl = slice(start, stop)
        left = self.packed.left[sl]
        right = self.packed.right[sl]
        return (
            self.packed.feature[sl],
            self.packed.threshold[sl],
            np.where(left >= 0, left - start, -1),
            np.where(right >= 0, right - start, -1),
            self.packed.value[sl],
            self.depths[sl],
        )


def _resolve_k(max_features: int | None, n_features: int) -> int:
    """Per-split candidate count, clamped exactly like the classic growers."""
    k = max_features if max_features is not None else n_features
    return min(max(k, 1), n_features)


def _candidate_mask(rng: np.random.Generator, S: int, d: int, k: int) -> np.ndarray | None:
    """A random k-of-d feature subset per frontier node (None = all)."""
    if k >= d:
        return None
    # Rank d iid uniforms per node; the k smallest form a uniformly
    # random k-subset — the batched equivalent of per-node rng.choice.
    ranks = rng.random((S, d)).argsort(axis=1).argsort(axis=1)
    return ranks < k


def _grow(
    y: np.ndarray,
    rows: np.ndarray,
    sizes: np.ndarray,
    n_trees: int,
    min_samples_split: int,
    max_depth: int | None,
    split_fn: _SplitFn,
) -> BuiltForest:
    """Breadth-first forest growth over a pre-partitioned root frontier.

    ``rows`` holds sample indices grouped contiguously per root (one
    root per tree); ``sizes`` the per-root group lengths.
    """
    level_feature: list[np.ndarray] = []
    level_threshold: list[np.ndarray] = []
    level_left: list[np.ndarray] = []
    level_right: list[np.ndarray] = []
    level_value: list[np.ndarray] = []
    level_tree: list[np.ndarray] = []
    level_depth: list[np.ndarray] = []

    tree_ids = np.arange(n_trees, dtype=np.int64)
    total_nodes = 0
    depth = 0
    while sizes.size:
        F = sizes.size
        starts = np.zeros(F + 1, dtype=np.int64)
        np.cumsum(sizes, out=starts[1:])
        yl = y[rows]
        sum_y = np.add.reduceat(yl, starts[:-1])
        values = sum_y / sizes
        ymin = np.minimum.reduceat(yl, starts[:-1])
        ymax = np.maximum.reduceat(yl, starts[:-1])
        splittable = (sizes >= min_samples_split) & (ymin < ymax)
        if max_depth is not None and depth >= max_depth:
            splittable[:] = False

        feature = np.full(F, -1, dtype=np.int64)
        threshold = np.zeros(F)
        left = np.full(F, -1, dtype=np.int64)
        right = np.full(F, -1, dtype=np.int64)
        next_rows = rows[:0]
        next_sizes = sizes[:0]
        next_tree = tree_ids[:0]

        if splittable.any():
            sidx = np.flatnonzero(splittable)
            r2 = rows[np.repeat(splittable, sizes)]
            sizes2 = sizes[sidx]
            starts2 = np.zeros(sizes2.size + 1, dtype=np.int64)
            np.cumsum(sizes2, out=starts2[1:])
            found, best_feature, best_threshold, go_left = split_fn(
                r2, sizes2, starts2
            )
            fidx = sidx[found]
            n_found = fidx.size
            if n_found:
                feature[fidx] = best_feature[found]
                threshold[fidx] = best_threshold[found]
                # Children are emitted next level in node-major order
                # (left before right), so their ids are known now.
                child_base = total_nodes + F + 2 * np.arange(n_found, dtype=np.int64)
                left[fidx] = child_base
                right[fidx] = child_base + 1

                node_of_row = np.repeat(np.arange(sizes2.size), sizes2)
                left_n = np.add.reduceat(go_left.astype(np.int64), starts2[:-1])
                keep = found[node_of_row]
                # Stable sort by (node, side) groups each split node's
                # rows into its left then right child, preserving order.
                key = node_of_row[keep] * 2 + (1 - go_left[keep])
                next_rows = r2[keep][np.argsort(key, kind="stable")]
                next_sizes = np.empty(2 * n_found, dtype=np.int64)
                next_sizes[0::2] = left_n[found]
                next_sizes[1::2] = sizes2[found] - left_n[found]
                next_tree = np.repeat(tree_ids[fidx], 2)

        level_feature.append(feature)
        level_threshold.append(threshold)
        level_left.append(left)
        level_right.append(right)
        level_value.append(values)
        level_tree.append(tree_ids)
        level_depth.append(np.full(F, depth, dtype=np.int64))
        total_nodes += F
        rows, sizes, tree_ids = next_rows, next_sizes, next_tree
        depth += 1

    g_tree = np.concatenate(level_tree)
    g_left = np.concatenate(level_left)
    g_right = np.concatenate(level_right)
    # Re-order breadth-first interleaved nodes tree-major (stable, so
    # each tree's nodes stay in its own breadth-first order) — this is
    # exactly the packed layout, so no further conversion is needed.
    order = np.argsort(g_tree, kind="stable")
    perm = np.empty(total_nodes, dtype=np.int64)
    perm[order] = np.arange(total_nodes, dtype=np.int64)
    g_left = np.where(g_left >= 0, perm[g_left], -1)[order]
    g_right = np.where(g_right >= 0, perm[g_right], -1)[order]
    counts = np.bincount(g_tree, minlength=n_trees).astype(np.int64)
    # A tree's first breadth-first node is its root, emitted in level 0.
    roots = perm[:n_trees]
    packed = PackedTrees(
        feature=np.concatenate(level_feature)[order],
        threshold=np.concatenate(level_threshold)[order],
        left=g_left,
        right=g_right,
        value=np.concatenate(level_value)[order],
        roots=roots,
    )
    return BuiltForest(
        packed=packed,
        offsets=roots,
        counts=counts,
        depths=np.concatenate(level_depth)[order],
    )


def build_extra_trees(
    X: np.ndarray,
    y: np.ndarray,
    n_trees: int,
    *,
    max_features: int | None = None,
    min_samples_split: int = 2,
    max_depth: int | None = None,
    rng: np.random.Generator,
) -> BuiltForest:
    """Grow a whole Extra-Trees ensemble level-synchronously.

    All trees train on the full ``(X, y)`` sample (classic Extra-Trees,
    no bootstrap); each level draws one uniform threshold per (frontier
    node, candidate feature) and keeps the SSE-minimising split.

    ``X``/``y`` must already be coerced
    (:func:`repro.ml.tree.coerce_training_data`).
    """
    n, d = X.shape
    k = _resolve_k(max_features, d)

    def split(
        r2: np.ndarray, sizes2: np.ndarray, starts2: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        S = sizes2.size
        if d == 0:
            none = np.zeros(S, dtype=bool)
            return none, np.full(S, -1), np.zeros(S), np.zeros(r2.size, dtype=bool)
        Xr = X[r2]
        yr = y[r2]
        node_of_row = np.repeat(np.arange(S), sizes2)
        fmin = np.minimum.reduceat(Xr, starts2[:-1], axis=0)
        fmax = np.maximum.reduceat(Xr, starts2[:-1], axis=0)
        candidates = _candidate_mask(rng, S, d, k)
        thresholds = fmin + rng.uniform(size=(S, d)) * (fmax - fmin)
        go = Xr <= thresholds[node_of_row]
        go_f = go.astype(float)
        left_n = np.add.reduceat(go_f, starts2[:-1], axis=0)
        left_sum = np.add.reduceat(go_f * yr[:, None], starts2[:-1], axis=0)
        left_sq = np.add.reduceat(go_f * (yr * yr)[:, None], starts2[:-1], axis=0)
        total_sum = np.add.reduceat(yr, starts2[:-1])
        total_sq = np.add.reduceat(yr * yr, starts2[:-1])
        n_node = sizes2[:, None].astype(float)
        valid = (fmin < fmax) & (left_n > 0) & (left_n < n_node)
        if candidates is not None:
            valid &= candidates
        with np.errstate(divide="ignore", invalid="ignore"):
            sse = (
                left_sq
                - left_sum**2 / left_n
                + (total_sq[:, None] - left_sq)
                - (total_sum[:, None] - left_sum) ** 2 / (n_node - left_n)
            )
        sse = np.where(valid, sse, np.inf)
        best = np.argmin(sse, axis=1)
        node_index = np.arange(S)
        found = np.isfinite(sse[node_index, best])
        best_threshold = thresholds[node_index, best]
        go_left = go[np.arange(r2.size), best[node_of_row]]
        return found, best, best_threshold, go_left

    rows = np.tile(np.arange(n, dtype=np.int64), n_trees)
    sizes = np.full(n_trees, n, dtype=np.int64)
    return _grow(y, rows, sizes, n_trees, min_samples_split, max_depth, split)


def build_cart_forest(
    X: np.ndarray,
    y: np.ndarray,
    n_trees: int,
    *,
    max_features: int | None = None,
    min_samples_split: int = 2,
    max_depth: int | None = None,
    rng: np.random.Generator,
    sample_indices: np.ndarray | None = None,
) -> BuiltForest:
    """Grow a CART forest level-synchronously with exact best splits.

    Args:
        sample_indices: optional ``(n_trees, m)`` row multisets (the
            bootstrap resamples of a random forest); ``None`` trains
            every tree on the full sample.

    ``X``/``y`` must already be coerced
    (:func:`repro.ml.tree.coerce_training_data`).
    """
    n, d = X.shape
    k = _resolve_k(max_features, d)

    def split(
        r2: np.ndarray, sizes2: np.ndarray, starts2: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        S = sizes2.size
        R = r2.size
        if d == 0:
            none = np.zeros(S, dtype=bool)
            return none, np.full(S, -1), np.zeros(S), np.zeros(R, dtype=bool)
        Xr = X[r2]
        yr = y[r2]
        node_of_row = np.repeat(np.arange(S), sizes2)
        candidates = _candidate_mask(rng, S, d, k)
        position = np.arange(R) - np.repeat(starts2[:-1], sizes2)
        total = np.add.reduceat(yr, starts2[:-1])
        total_row = np.repeat(total, sizes2)
        size_row = np.repeat(sizes2, sizes2).astype(float)
        segment_offset = np.concatenate([[0.0], np.cumsum(total)[:-1]])

        best_score = np.full(S, np.inf)
        best_feature = np.full(S, -1, dtype=np.int64)
        best_threshold = np.zeros(S)
        row_index = np.arange(R)
        for j in range(d):
            if candidates is not None and not candidates[:, j].any():
                continue
            column = Xr[:, j]
            # Sort rows by feature value *within* each frontier node.
            order = np.lexsort((column, node_of_row))
            sorted_col = column[order]
            sorted_y = yr[order]
            prefix = np.cumsum(sorted_y) - np.repeat(segment_offset, sizes2)
            # Cutting before sorted position p leaves `position` rows on
            # the left with sum `prefix - sorted_y` (prefix excluding p).
            left_sum = prefix - sorted_y
            previous = np.empty_like(sorted_col)
            previous[0] = np.inf
            previous[1:] = sorted_col[:-1]
            valid = (position >= 1) & (previous < sorted_col)
            if candidates is not None:
                valid &= candidates[node_of_row, j]
            with np.errstate(divide="ignore", invalid="ignore"):
                score = (
                    -(left_sum**2) / position
                    - (total_row - left_sum) ** 2 / (size_row - position)
                )
            score = np.where(valid, score, np.inf)
            segment_min = np.minimum.reduceat(score, starts2[:-1])
            has_cut = np.isfinite(segment_min)
            if not has_cut.any():
                continue
            # First position attaining the per-node minimum.
            at_min = score == np.repeat(segment_min, sizes2)
            first = np.minimum.reduceat(
                np.where(at_min, row_index, R), starts2[:-1]
            )
            first = np.clip(first, 1, R - 1)
            threshold_j = 0.5 * (sorted_col[first - 1] + sorted_col[first])
            better = has_cut & (segment_min < best_score)
            best_score = np.where(better, segment_min, best_score)
            best_feature = np.where(better, j, best_feature)
            best_threshold = np.where(better, threshold_j, best_threshold)
        found = best_feature >= 0
        go_left = (
            Xr[row_index, np.maximum(best_feature, 0)[node_of_row]]
            <= best_threshold[node_of_row]
        )
        return found, best_feature, best_threshold, go_left

    if sample_indices is None:
        rows = np.tile(np.arange(n, dtype=np.int64), n_trees)
        sizes = np.full(n_trees, n, dtype=np.int64)
    else:
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        if sample_indices.ndim != 2 or sample_indices.shape[0] != n_trees:
            raise ValueError(
                f"sample_indices must be ({n_trees}, m), "
                f"got shape {sample_indices.shape}"
            )
        rows = sample_indices.reshape(-1)
        sizes = np.full(n_trees, sample_indices.shape[1], dtype=np.int64)
    return _grow(y, rows, sizes, n_trees, min_samples_split, max_depth, split)
