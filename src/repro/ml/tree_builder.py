"""Level-synchronous, vectorized construction of tree ensembles.

The classic growers in :mod:`repro.ml.tree` and
:mod:`repro.ml.random_forest` recurse node by node in Python, which
makes the surrogate refit — Arrow's inner loop, re-run after every
measurement — the dominant cost of every experiment grid.  This module
replaces the recursion with *breadth-first* growth: all frontier nodes
of **all trees of the ensemble** advance one depth level per iteration,
and each level's split search is a handful of batched numpy reductions
instead of thousands of tiny per-node calls.

Mechanics shared by both builders:

* the samples of every (tree, node) pair live in one flat ``rows``
  array, grouped contiguously by frontier node, so per-node sums, mins
  and maxima are single ``ufunc.reduceat`` calls over segment offsets;
* children are emitted in a deterministic node-major order, so parent
  child-pointers are assigned *before* the children exist and the whole
  forest materialises as flat node arrays in one pass;
* nodes are finally stably re-ordered tree-major, which *is* the packed
  flat-node-array layout of :class:`repro.ml.tree.PackedTrees` —
  ``predict_packed`` consumes the builder's output with no conversion.

Split search per level:

* **Extra-Trees** (:func:`build_extra_trees`): one uniform threshold per
  (frontier node, candidate feature), drawn as a single matrix; the
  children's summed squared error comes from masked running sums
  (``sse = sum(y^2) - sum(y)^2 / n`` on each side).
* **CART** (:func:`build_cart_forest`): exact best-split search using
  cumulative-sum SSE over feature columns sorted *within each frontier
  node* (one ``lexsort`` per feature per level), evaluating every
  boundary where the sorted feature value changes.

Equivalence to the classic growers: both builders implement the same
split *rules* (same SSE objective, same validity conditions, same
threshold formulas), but consume random draws in breadth-first rather
than depth-first order, so a seeded vectorized ensemble is
*statistically* equivalent — not bit-identical — to a seeded classic
one.  ``tests/test_ml_tree_builder.py`` pins the per-split equivalence
under injected RNG draws, and ``tests/test_builder_equivalence.py``
checks that seeded searches reach identical outcomes on the tier-1
grid.  The classic growers stay available behind
``tree_builder="classic"``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.ml.tree import PackedTrees

#: The tree-construction strategies ensembles accept.
TREE_BUILDERS = ("vectorized", "classic")

#: A level splitter: (rows, sizes, starts, tree ids) for the splittable
#: frontier -> (found, best_feature, best_threshold, go_left) where
#: ``go_left`` is per-row and the rest are per-node.  The tree ids let
#: multi-ensemble splitters (the stacked builder) route random draws to
#: the right per-ensemble generator; single-ensemble splitters ignore
#: them.
_SplitFn = Callable[
    [np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
]


@dataclass(frozen=True)
class BuiltForest:
    """A whole ensemble grown in one pass, already packed.

    Attributes:
        packed: the ensemble in :class:`~repro.ml.tree.PackedTrees`
            layout (tree-major, absolute child indices).
        offsets: packed start offset of each tree (== ``packed.roots``).
        counts: node count of each tree.
        depths: per-node depth, aligned with the packed arrays.
    """

    packed: PackedTrees
    offsets: np.ndarray
    counts: np.ndarray
    depths: np.ndarray

    @property
    def n_trees(self) -> int:
        """Number of trees grown."""
        return int(self.offsets.size)

    def tree_arrays(
        self, index: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One tree's ``(feature, threshold, left, right, value, depths)``.

        Child indices are rebased to be tree-local, so the arrays can be
        adopted by a standalone tree (:func:`repro.ml.tree.adopt_nodes`).
        """
        start = int(self.offsets[index])
        stop = start + int(self.counts[index])
        sl = slice(start, stop)
        left = self.packed.left[sl]
        right = self.packed.right[sl]
        return (
            self.packed.feature[sl],
            self.packed.threshold[sl],
            np.where(left >= 0, left - start, -1),
            np.where(right >= 0, right - start, -1),
            self.packed.value[sl],
            self.depths[sl],
        )


def _resolve_k(max_features: int | None, n_features: int) -> int:
    """Per-split candidate count, clamped exactly like the classic growers."""
    k = max_features if max_features is not None else n_features
    return min(max(k, 1), n_features)


def _candidate_mask(rng: np.random.Generator, S: int, d: int, k: int) -> np.ndarray | None:
    """A random k-of-d feature subset per frontier node (None = all)."""
    if k >= d:
        return None
    # Rank d iid uniforms per node; the k smallest form a uniformly
    # random k-subset — the batched equivalent of per-node rng.choice.
    ranks = rng.random((S, d)).argsort(axis=1).argsort(axis=1)
    return ranks < k


def _grow(
    y: np.ndarray,
    rows: np.ndarray,
    sizes: np.ndarray,
    n_trees: int,
    min_samples_split: int,
    max_depth: int | None,
    split_fn: _SplitFn,
) -> BuiltForest:
    """Breadth-first forest growth over a pre-partitioned root frontier.

    ``rows`` holds sample indices grouped contiguously per root (one
    root per tree); ``sizes`` the per-root group lengths.
    """
    level_feature: list[np.ndarray] = []
    level_threshold: list[np.ndarray] = []
    level_left: list[np.ndarray] = []
    level_right: list[np.ndarray] = []
    level_value: list[np.ndarray] = []
    level_tree: list[np.ndarray] = []
    level_depth: list[np.ndarray] = []

    tree_ids = np.arange(n_trees, dtype=np.int64)
    total_nodes = 0
    depth = 0
    while sizes.size:
        F = sizes.size
        starts = np.zeros(F + 1, dtype=np.int64)
        np.cumsum(sizes, out=starts[1:])
        yl = y[rows]
        sum_y = np.add.reduceat(yl, starts[:-1])
        values = sum_y / sizes
        ymin = np.minimum.reduceat(yl, starts[:-1])
        ymax = np.maximum.reduceat(yl, starts[:-1])
        splittable = (sizes >= min_samples_split) & (ymin < ymax)
        if max_depth is not None and depth >= max_depth:
            splittable[:] = False

        feature = np.full(F, -1, dtype=np.int64)
        threshold = np.zeros(F)
        left = np.full(F, -1, dtype=np.int64)
        right = np.full(F, -1, dtype=np.int64)
        next_rows = rows[:0]
        next_sizes = sizes[:0]
        next_tree = tree_ids[:0]

        if splittable.any():
            sidx = np.flatnonzero(splittable)
            r2 = rows[np.repeat(splittable, sizes)]
            sizes2 = sizes[sidx]
            starts2 = np.zeros(sizes2.size + 1, dtype=np.int64)
            np.cumsum(sizes2, out=starts2[1:])
            found, best_feature, best_threshold, go_left = split_fn(
                r2, sizes2, starts2, tree_ids[sidx]
            )
            fidx = sidx[found]
            n_found = fidx.size
            if n_found:
                feature[fidx] = best_feature[found]
                threshold[fidx] = best_threshold[found]
                # Children are emitted next level in node-major order
                # (left before right), so their ids are known now.
                child_base = total_nodes + F + 2 * np.arange(n_found, dtype=np.int64)
                left[fidx] = child_base
                right[fidx] = child_base + 1

                node_of_row = np.repeat(np.arange(sizes2.size), sizes2)
                left_n = np.add.reduceat(go_left.astype(np.int64), starts2[:-1])
                keep = found[node_of_row]
                # Stable sort by (node, side) groups each split node's
                # rows into its left then right child, preserving order.
                key = node_of_row[keep] * 2 + (1 - go_left[keep])
                next_rows = r2[keep][np.argsort(key, kind="stable")]
                next_sizes = np.empty(2 * n_found, dtype=np.int64)
                next_sizes[0::2] = left_n[found]
                next_sizes[1::2] = sizes2[found] - left_n[found]
                next_tree = np.repeat(tree_ids[fidx], 2)

        level_feature.append(feature)
        level_threshold.append(threshold)
        level_left.append(left)
        level_right.append(right)
        level_value.append(values)
        level_tree.append(tree_ids)
        level_depth.append(np.full(F, depth, dtype=np.int64))
        total_nodes += F
        rows, sizes, tree_ids = next_rows, next_sizes, next_tree
        depth += 1

    g_tree = np.concatenate(level_tree)
    g_left = np.concatenate(level_left)
    g_right = np.concatenate(level_right)
    # Re-order breadth-first interleaved nodes tree-major (stable, so
    # each tree's nodes stay in its own breadth-first order) — this is
    # exactly the packed layout, so no further conversion is needed.
    order = np.argsort(g_tree, kind="stable")
    perm = np.empty(total_nodes, dtype=np.int64)
    perm[order] = np.arange(total_nodes, dtype=np.int64)
    g_left = np.where(g_left >= 0, perm[g_left], -1)[order]
    g_right = np.where(g_right >= 0, perm[g_right], -1)[order]
    counts = np.bincount(g_tree, minlength=n_trees).astype(np.int64)
    # A tree's first breadth-first node is its root, emitted in level 0.
    roots = perm[:n_trees]
    packed = PackedTrees(
        feature=np.concatenate(level_feature)[order],
        threshold=np.concatenate(level_threshold)[order],
        left=g_left,
        right=g_right,
        value=np.concatenate(level_value)[order],
        roots=roots,
    )
    return BuiltForest(
        packed=packed,
        offsets=roots,
        counts=counts,
        depths=np.concatenate(level_depth)[order],
    )


def build_extra_trees(
    X: np.ndarray,
    y: np.ndarray,
    n_trees: int,
    *,
    max_features: int | None = None,
    min_samples_split: int = 2,
    max_depth: int | None = None,
    rng: np.random.Generator,
) -> BuiltForest:
    """Grow a whole Extra-Trees ensemble level-synchronously.

    All trees train on the full ``(X, y)`` sample (classic Extra-Trees,
    no bootstrap); each level draws one uniform threshold per (frontier
    node, candidate feature) and keeps the SSE-minimising split.

    ``X``/``y`` must already be coerced
    (:func:`repro.ml.tree.coerce_training_data`).
    """
    n, d = X.shape
    k = _resolve_k(max_features, d)

    def split(
        r2: np.ndarray, sizes2: np.ndarray, starts2: np.ndarray, tree2: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        S = sizes2.size
        if d == 0:
            none = np.zeros(S, dtype=bool)
            return none, np.full(S, -1), np.zeros(S), np.zeros(r2.size, dtype=bool)
        Xr = X[r2]
        yr = y[r2]
        node_of_row = np.repeat(np.arange(S), sizes2)
        fmin = np.minimum.reduceat(Xr, starts2[:-1], axis=0)
        fmax = np.maximum.reduceat(Xr, starts2[:-1], axis=0)
        candidates = _candidate_mask(rng, S, d, k)
        thresholds = fmin + rng.uniform(size=(S, d)) * (fmax - fmin)
        go = Xr <= thresholds[node_of_row]
        go_f = go.astype(float)
        left_n = np.add.reduceat(go_f, starts2[:-1], axis=0)
        left_sum = np.add.reduceat(go_f * yr[:, None], starts2[:-1], axis=0)
        left_sq = np.add.reduceat(go_f * (yr * yr)[:, None], starts2[:-1], axis=0)
        total_sum = np.add.reduceat(yr, starts2[:-1])
        total_sq = np.add.reduceat(yr * yr, starts2[:-1])
        n_node = sizes2[:, None].astype(float)
        valid = (fmin < fmax) & (left_n > 0) & (left_n < n_node)
        if candidates is not None:
            valid &= candidates
        with np.errstate(divide="ignore", invalid="ignore"):
            sse = (
                left_sq
                - left_sum**2 / left_n
                + (total_sq[:, None] - left_sq)
                - (total_sum[:, None] - left_sum) ** 2 / (n_node - left_n)
            )
        sse = np.where(valid, sse, np.inf)
        best = np.argmin(sse, axis=1)
        node_index = np.arange(S)
        found = np.isfinite(sse[node_index, best])
        best_threshold = thresholds[node_index, best]
        go_left = go[np.arange(r2.size), best[node_of_row]]
        return found, best, best_threshold, go_left

    rows = np.tile(np.arange(n, dtype=np.int64), n_trees)
    sizes = np.full(n_trees, n, dtype=np.int64)
    return _grow(y, rows, sizes, n_trees, min_samples_split, max_depth, split)


def build_cart_forest(
    X: np.ndarray,
    y: np.ndarray,
    n_trees: int,
    *,
    max_features: int | None = None,
    min_samples_split: int = 2,
    max_depth: int | None = None,
    rng: np.random.Generator,
    sample_indices: np.ndarray | None = None,
) -> BuiltForest:
    """Grow a CART forest level-synchronously with exact best splits.

    Args:
        sample_indices: optional ``(n_trees, m)`` row multisets (the
            bootstrap resamples of a random forest); ``None`` trains
            every tree on the full sample.

    ``X``/``y`` must already be coerced
    (:func:`repro.ml.tree.coerce_training_data`).
    """
    n, d = X.shape
    k = _resolve_k(max_features, d)

    def split(
        r2: np.ndarray, sizes2: np.ndarray, starts2: np.ndarray, tree2: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        S = sizes2.size
        R = r2.size
        if d == 0:
            none = np.zeros(S, dtype=bool)
            return none, np.full(S, -1), np.zeros(S), np.zeros(R, dtype=bool)
        Xr = X[r2]
        yr = y[r2]
        node_of_row = np.repeat(np.arange(S), sizes2)
        candidates = _candidate_mask(rng, S, d, k)
        position = np.arange(R) - np.repeat(starts2[:-1], sizes2)
        total = np.add.reduceat(yr, starts2[:-1])
        total_row = np.repeat(total, sizes2)
        size_row = np.repeat(sizes2, sizes2).astype(float)
        segment_offset = np.concatenate([[0.0], np.cumsum(total)[:-1]])

        best_score = np.full(S, np.inf)
        best_feature = np.full(S, -1, dtype=np.int64)
        best_threshold = np.zeros(S)
        row_index = np.arange(R)
        for j in range(d):
            if candidates is not None and not candidates[:, j].any():
                continue
            column = Xr[:, j]
            # Sort rows by feature value *within* each frontier node.
            order = np.lexsort((column, node_of_row))
            sorted_col = column[order]
            sorted_y = yr[order]
            prefix = np.cumsum(sorted_y) - np.repeat(segment_offset, sizes2)
            # Cutting before sorted position p leaves `position` rows on
            # the left with sum `prefix - sorted_y` (prefix excluding p).
            left_sum = prefix - sorted_y
            previous = np.empty_like(sorted_col)
            previous[0] = np.inf
            previous[1:] = sorted_col[:-1]
            valid = (position >= 1) & (previous < sorted_col)
            if candidates is not None:
                valid &= candidates[node_of_row, j]
            with np.errstate(divide="ignore", invalid="ignore"):
                score = (
                    -(left_sum**2) / position
                    - (total_row - left_sum) ** 2 / (size_row - position)
                )
            score = np.where(valid, score, np.inf)
            segment_min = np.minimum.reduceat(score, starts2[:-1])
            has_cut = np.isfinite(segment_min)
            if not has_cut.any():
                continue
            # First position attaining the per-node minimum.
            at_min = score == np.repeat(segment_min, sizes2)
            first = np.minimum.reduceat(
                np.where(at_min, row_index, R), starts2[:-1]
            )
            first = np.clip(first, 1, R - 1)
            threshold_j = 0.5 * (sorted_col[first - 1] + sorted_col[first])
            better = has_cut & (segment_min < best_score)
            best_score = np.where(better, segment_min, best_score)
            best_feature = np.where(better, j, best_feature)
            best_threshold = np.where(better, threshold_j, best_threshold)
        found = best_feature >= 0
        go_left = (
            Xr[row_index, np.maximum(best_feature, 0)[node_of_row]]
            <= best_threshold[node_of_row]
        )
        return found, best_feature, best_threshold, go_left

    if sample_indices is None:
        rows = np.tile(np.arange(n, dtype=np.int64), n_trees)
        sizes = np.full(n_trees, n, dtype=np.int64)
    else:
        sample_indices = np.asarray(sample_indices, dtype=np.int64)
        if sample_indices.ndim != 2 or sample_indices.shape[0] != n_trees:
            raise ValueError(
                f"sample_indices must be ({n_trees}, m), "
                f"got shape {sample_indices.shape}"
            )
        rows = sample_indices.reshape(-1)
        sizes = np.full(n_trees, sample_indices.shape[1], dtype=np.int64)
    return _grow(y, rows, sizes, n_trees, min_samples_split, max_depth, split)


@dataclass(frozen=True)
class StackedGrowTask:
    """One ensemble's growth request for :func:`build_extra_trees_stacked`.

    ``X``/``y`` must already be coerced
    (:func:`repro.ml.tree.coerce_training_data`); ``rng`` is the
    ensemble's own generator — the stacked builder consumes from it
    exactly the draws (same sizes, same order) the per-ensemble
    :func:`build_extra_trees` would, which is what makes the stacked
    result bit-identical.
    """

    X: np.ndarray
    y: np.ndarray
    n_trees: int
    rng: np.random.Generator
    max_features: int | None = None
    min_samples_split: int = 2
    max_depth: int | None = None


def build_extra_trees_stacked(
    tasks: list[StackedGrowTask],
) -> list[BuiltForest]:
    """Grow many Extra-Trees ensembles in one level-synchronous pass.

    All tasks' frontiers are concatenated (task-major) into a single
    global frontier, so each depth level costs one batched numpy split
    search for *every* ensemble of *every* search instead of one per
    ensemble — the per-level dispatch overhead that dominates small-n
    fits is paid once, not S times.

    Bit-identity: every per-node quantity (reduceat segment sums,
    thresholds, SSE, child ordering) is segment-local, and each task's
    random draws come from its own ``rng`` in the exact per-level order
    the per-ensemble builder uses, so each returned
    :class:`BuiltForest` equals — bit for bit — what
    :func:`build_extra_trees` would have produced for that task alone.

    Constraints: all tasks must share the feature dimension,
    ``min_samples_split`` and ``max_depth`` (the lock-step levels apply
    those globally).  Raises ``ValueError`` otherwise — callers fall
    back to per-ensemble builds.
    """
    if not tasks:
        return []
    d = tasks[0].X.shape[1]
    min_samples_split = tasks[0].min_samples_split
    max_depth = tasks[0].max_depth
    for task in tasks:
        if task.X.shape[1] != d:
            raise ValueError(
                "stacked growth needs one shared feature dimension; "
                f"got {task.X.shape[1]} and {d}"
            )
        if (
            task.min_samples_split != min_samples_split
            or task.max_depth != max_depth
        ):
            raise ValueError(
                "stacked growth needs shared min_samples_split/max_depth"
            )
    # One global sample store; each task's rows are offset into it.  The
    # feature matrix is kept feature-major (d, n): the stacked frontier
    # is long enough that ``reduceat`` along the contiguous row axis is
    # measurably faster than the row-major axis-0 form, and every
    # reduction is still segment-local so the sums are bit-identical.
    X = np.ascontiguousarray(np.vstack([task.X for task in tasks]).T)
    y = np.concatenate([task.y for task in tasks])
    n_rows = np.array([task.X.shape[0] for task in tasks], dtype=np.int64)
    row_offsets = np.concatenate([[0], np.cumsum(n_rows)[:-1]])
    tree_counts = np.array([task.n_trees for task in tasks], dtype=np.int64)
    # Global tree ids are task-major: task t owns the contiguous id range
    # [tree_bounds[t], tree_bounds[t + 1]).
    tree_bounds = np.concatenate([[0], np.cumsum(tree_counts)])
    n_trees_total = int(tree_bounds[-1])
    ks = [_resolve_k(task.max_features, d) for task in tasks]

    def split(
        r2: np.ndarray, sizes2: np.ndarray, starts2: np.ndarray, tree2: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        S = sizes2.size
        if d == 0:
            none = np.zeros(S, dtype=bool)
            return none, np.full(S, -1), np.zeros(S), np.zeros(r2.size, dtype=bool)
        # All per-level matrices are feature-major (d, R) / (d, S): the
        # reductions run over the contiguous axis, which is what makes
        # the stacked level cheaper than S per-ensemble levels.  Every
        # value is the transpose of the per-ensemble builder's — the
        # comparisons and segment sums pair the same operands in the
        # same order, so the split decisions are bit-identical.
        Xr = X[:, r2]
        yr = y[r2]
        node_of_row = np.repeat(np.arange(S), sizes2)
        fmin = np.minimum.reduceat(Xr, starts2[:-1], axis=1)
        fmax = np.maximum.reduceat(Xr, starts2[:-1], axis=1)
        # Route the random draws per task, in task order.  Frontier tree
        # ids are nondecreasing (children inherit their parents' order),
        # so each task's splittable nodes form one contiguous block and
        # its rng sees exactly the per-level draw sequence the
        # per-ensemble builder consumes (node-major (S, d) draws,
        # transposed after the fact — same values, different layout).
        bounds = np.searchsorted(tree2, tree_bounds)
        candidates: np.ndarray | None = None
        uniform = np.empty((S, d))
        for t, task in enumerate(tasks):
            lo, hi = int(bounds[t]), int(bounds[t + 1])
            if lo == hi:
                continue
            mask = _candidate_mask(task.rng, hi - lo, d, ks[t])
            if mask is not None:
                if candidates is None:
                    candidates = np.ones((d, S), dtype=bool)
                candidates[:, lo:hi] = mask.T
            uniform[lo:hi] = task.rng.uniform(size=(hi - lo, d))
        thresholds = fmin + uniform.T * (fmax - fmin)
        go = Xr <= thresholds[:, node_of_row]
        # One segment reduction covers all three per-(node, feature)
        # sums: rows 0..d hold the left-side counts, d..2d the masked
        # y sums, 2d..3d the masked y^2 sums.  Rows reduce
        # independently, so each block equals its own reduceat (and the
        # bool -> float products equal the per-ensemble builder's
        # ``go_f * y`` values exactly).
        stacked = np.empty((3 * d, r2.size))
        stacked[:d] = go
        np.multiply(go, yr[None, :], out=stacked[d : 2 * d])
        np.multiply(go, (yr * yr)[None, :], out=stacked[2 * d :])
        sums = np.add.reduceat(stacked, starts2[:-1], axis=1)
        left_n = sums[:d]
        left_sum = sums[d : 2 * d]
        left_sq = sums[2 * d :]
        total_sum = np.add.reduceat(yr, starts2[:-1])
        total_sq = np.add.reduceat(yr * yr, starts2[:-1])
        n_node = sizes2[None, :].astype(float)
        valid = (fmin < fmax) & (left_n > 0) & (left_n < n_node)
        if candidates is not None:
            valid &= candidates
        with np.errstate(divide="ignore", invalid="ignore"):
            sse = (
                left_sq
                - left_sum**2 / left_n
                + (total_sq[None, :] - left_sq)
                - (total_sum[None, :] - left_sum) ** 2 / (n_node - left_n)
            )
        sse = np.where(valid, sse, np.inf)
        best = np.argmin(sse, axis=0)
        node_index = np.arange(S)
        found = np.isfinite(sse[best, node_index])
        best_threshold = thresholds[best, node_index]
        go_left = go[best[node_of_row], np.arange(r2.size)]
        return found, best, best_threshold, go_left

    rows = np.concatenate(
        [
            offset + np.tile(np.arange(n, dtype=np.int64), int(count))
            for offset, n, count in zip(row_offsets, n_rows, tree_counts)
        ]
    )
    sizes = np.repeat(n_rows, tree_counts)
    built = _grow(y, rows, sizes, n_trees_total, min_samples_split, max_depth, split)

    # Carve the global tree-major forest back into per-task forests.
    # Packed nodes are contiguous per task (task-major tree ids), so each
    # task is one slice with child pointers rebased to its start.
    results: list[BuiltForest] = []
    node_offset = 0
    for t in range(len(tasks)):
        lo_tree, hi_tree = int(tree_bounds[t]), int(tree_bounds[t + 1])
        counts = built.counts[lo_tree:hi_tree].copy()
        n_nodes = int(counts.sum())
        sl = slice(node_offset, node_offset + n_nodes)
        left = built.packed.left[sl]
        right = built.packed.right[sl]
        roots = built.offsets[lo_tree:hi_tree] - node_offset
        packed = PackedTrees(
            feature=built.packed.feature[sl].copy(),
            threshold=built.packed.threshold[sl].copy(),
            left=np.where(left >= 0, left - node_offset, -1),
            right=np.where(right >= 0, right - node_offset, -1),
            value=built.packed.value[sl].copy(),
            roots=roots.copy(),
        )
        results.append(
            BuiltForest(
                packed=packed,
                offsets=packed.roots,
                counts=counts,
                depths=built.depths[sl].copy(),
            )
        )
        node_offset += n_nodes
    return results
