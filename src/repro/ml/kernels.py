"""Covariance kernels for Gaussian Process regression.

The paper's Section III-B studies exactly four kernels — RBF and the
Matérn family with smoothness 1/2, 3/2 and 5/2 — and shows the choice
among them flips which workloads Naive BO handles well (Figure 7).
All four are implemented here with a shared (signal variance,
lengthscale) parameterisation, plus the sum/product algebra and a white
noise kernel used for composing priors.

Every kernel exposes its free hyperparameters in log space
(:meth:`Kernel.theta`) so the GP can optimise the marginal likelihood
with unconstrained L-BFGS.
"""

from __future__ import annotations

import abc
import math

import numpy as np


def _as_2d(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D design matrix, got shape {X.shape}")
    return X


def _sq_dists(X: np.ndarray, Y: np.ndarray, lengthscale: float | np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances of scaled inputs, clipped at 0.

    ``lengthscale`` may be a scalar (isotropic) or a per-dimension vector
    (ARD — automatic relevance determination).
    """
    Xs, Ys = X / lengthscale, Y / lengthscale
    sq = (
        np.sum(Xs**2, axis=1)[:, None]
        + np.sum(Ys**2, axis=1)[None, :]
        - 2.0 * Xs @ Ys.T
    )
    return np.maximum(sq, 0.0)


class Kernel(abc.ABC):
    """A positive semi-definite covariance function.

    Subclasses implement :meth:`__call__`; hyperparameters live in
    ``theta`` as log-transformed values so optimisation is unconstrained.
    """

    @abc.abstractmethod
    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        """Covariance matrix between rows of ``X`` and rows of ``Y`` (or ``X``)."""

    @property
    @abc.abstractmethod
    def theta(self) -> np.ndarray:
        """Free hyperparameters in log space."""

    @theta.setter
    @abc.abstractmethod
    def theta(self, value: np.ndarray) -> None: ...

    @property
    @abc.abstractmethod
    def bounds(self) -> np.ndarray:
        """``(n_params, 2)`` log-space bounds for optimisation."""

    @abc.abstractmethod
    def clone(self) -> Kernel:
        """An independent copy with the same hyperparameters."""

    def diag(self, X: np.ndarray) -> np.ndarray:
        """The diagonal of ``self(X, X)`` without forming the matrix."""
        X = _as_2d(X)
        return np.array([self(row.reshape(1, -1))[0, 0] for row in X])

    def __add__(self, other: Kernel) -> Kernel:
        return Sum(self, other)

    def __mul__(self, other: Kernel) -> Kernel:
        return Product(self, other)


class _Stationary(Kernel):
    """Shared machinery for stationary kernels with (variance, lengthscale).

    ``lengthscale`` may be a scalar (isotropic kernel, the default) or a
    per-dimension vector (ARD): with a vector, each input dimension gets
    its own learned scale, letting the GP discount irrelevant features.
    """

    def __init__(
        self,
        variance: float = 1.0,
        lengthscale: float | np.ndarray = 1.0,
        lengthscale_bounds: tuple[float, float] = (1e-2, 1e3),
        variance_bounds: tuple[float, float] = (1e-3, 1e3),
    ) -> None:
        lengthscale_arr = np.asarray(lengthscale, dtype=float)
        if variance <= 0 or np.any(lengthscale_arr <= 0):
            raise ValueError("variance and lengthscale must be positive")
        if lengthscale_arr.ndim > 1:
            raise ValueError("lengthscale must be a scalar or a 1-D vector")
        self.variance = float(variance)
        self.lengthscale: float | np.ndarray = (
            float(lengthscale_arr) if lengthscale_arr.ndim == 0 else lengthscale_arr
        )
        self._ls_bounds = lengthscale_bounds
        self._var_bounds = variance_bounds

    @property
    def is_ard(self) -> bool:
        """Whether this kernel carries per-dimension lengthscales."""
        return isinstance(self.lengthscale, np.ndarray)

    def _lengthscales(self) -> np.ndarray:
        return np.atleast_1d(np.asarray(self.lengthscale, dtype=float))

    @property
    def theta(self) -> np.ndarray:
        return np.log(np.concatenate([[self.variance], self._lengthscales()]))

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        expected = 1 + self._lengthscales().size
        if value.shape != (expected,):
            raise ValueError(
                f"expected {expected} log-parameters, got shape {value.shape}"
            )
        exp = np.exp(value)
        self.variance = float(exp[0])
        self.lengthscale = exp[1:] if self.is_ard else float(exp[1])

    @property
    def bounds(self) -> np.ndarray:
        ls_rows = [self._ls_bounds] * self._lengthscales().size
        return np.log([self._var_bounds, *ls_rows])

    def clone(self) -> Kernel:
        lengthscale = (
            self.lengthscale.copy() if self.is_ard else self.lengthscale
        )
        return type(self)(self.variance, lengthscale, self._ls_bounds, self._var_bounds)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(_as_2d(X).shape[0], self.variance)

    def __repr__(self) -> str:
        if self.is_ard:
            scales = np.array2string(self._lengthscales(), precision=3)
            return f"{type(self).__name__}(variance={self.variance:.4g}, ard={scales})"
        return (
            f"{type(self).__name__}(variance={self.variance:.4g}, "
            f"lengthscale={self.lengthscale:.4g})"
        )


class RBF(_Stationary):
    """Radial basis function (squared exponential) kernel.

    Infinitely smooth — the strongest smoothness prior of the four, which
    the paper notes "considers the effects of features on the covariance
    equally" and can be unrealistic for cloud performance.
    """

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        X = _as_2d(X)
        Y = X if Y is None else _as_2d(Y)
        return self.variance * np.exp(-0.5 * _sq_dists(X, Y, self.lengthscale))


class Matern12(_Stationary):
    """Matérn kernel with smoothness 1/2 (the exponential kernel).

    The roughest prior: sample paths are continuous but nowhere
    differentiable.
    """

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        X = _as_2d(X)
        Y = X if Y is None else _as_2d(Y)
        d = np.sqrt(_sq_dists(X, Y, self.lengthscale))
        return self.variance * np.exp(-d)


class Matern32(_Stationary):
    """Matérn kernel with smoothness 3/2 (once-differentiable paths)."""

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        X = _as_2d(X)
        Y = X if Y is None else _as_2d(Y)
        d = math.sqrt(3.0) * np.sqrt(_sq_dists(X, Y, self.lengthscale))
        return self.variance * (1.0 + d) * np.exp(-d)


class Matern52(_Stationary):
    """Matérn kernel with smoothness 5/2 — CherryPick's choice.

    Twice-differentiable sample paths: smooth enough for efficient
    optimisation but without RBF's unrealistically strong smoothness.
    """

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        X = _as_2d(X)
        Y = X if Y is None else _as_2d(Y)
        d = math.sqrt(5.0) * np.sqrt(_sq_dists(X, Y, self.lengthscale))
        return self.variance * (1.0 + d + d**2 / 3.0) * np.exp(-d)


class White(Kernel):
    """White noise kernel: adds ``noise`` to the diagonal of K(X, X)."""

    def __init__(
        self, noise: float = 1e-4, noise_bounds: tuple[float, float] = (1e-8, 1e1)
    ) -> None:
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.noise = float(noise)
        self._bounds = noise_bounds

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        X = _as_2d(X)
        if Y is None:
            return self.noise * np.eye(X.shape[0])
        return np.zeros((X.shape[0], _as_2d(Y).shape[0]))

    @property
    def theta(self) -> np.ndarray:
        return np.log([self.noise])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        if value.shape != (1,):
            raise ValueError(f"expected 1 log-parameter, got shape {value.shape}")
        self.noise = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        return np.log([self._bounds])

    def clone(self) -> Kernel:
        return White(self.noise, self._bounds)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(_as_2d(X).shape[0], self.noise)

    def __repr__(self) -> str:
        return f"White(noise={self.noise:.4g})"


class _Combination(Kernel):
    """Shared machinery for binary kernel combinations."""

    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.left.theta, self.right.theta])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        n_left = self.left.theta.size
        self.left.theta = value[:n_left]
        self.right.theta = value[n_left:]

    @property
    def bounds(self) -> np.ndarray:
        return np.vstack([self.left.bounds, self.right.bounds])

    def clone(self) -> Kernel:
        return type(self)(self.left.clone(), self.right.clone())


class Sum(_Combination):
    """Pointwise sum of two kernels."""

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        return self.left(X, Y) + self.right(X, Y)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) + self.right.diag(X)

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


class Product(_Combination):
    """Pointwise product of two kernels."""

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        return self.left(X, Y) * self.right(X, Y)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) * self.right.diag(X)

    def __repr__(self) -> str:
        return f"({self.left!r} * {self.right!r})"


_KERNELS_BY_NAME = {
    "rbf": RBF,
    "matern12": Matern12,
    "matern32": Matern32,
    "matern52": Matern52,
}


def kernel_by_name(name: str, **kwargs: float) -> Kernel:
    """Construct one of the paper's four kernels by name.

    Accepted names: ``"rbf"``, ``"matern12"``, ``"matern32"``,
    ``"matern52"`` (case-insensitive; ``"matern5/2"`` style also works).
    """
    key = name.lower().replace("/", "").replace("-", "").replace("_", "")
    try:
        return _KERNELS_BY_NAME[key](**kwargs)
    except KeyError:
        known = ", ".join(sorted(_KERNELS_BY_NAME))
        raise ValueError(f"unknown kernel {name!r}; known kernels: {known}") from None
