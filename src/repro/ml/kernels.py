"""Covariance kernels for Gaussian Process regression.

The paper's Section III-B studies exactly four kernels — RBF and the
Matérn family with smoothness 1/2, 3/2 and 5/2 — and shows the choice
among them flips which workloads Naive BO handles well (Figure 7).
All four are implemented here with a shared (signal variance,
lengthscale) parameterisation, plus the sum/product algebra and a white
noise kernel used for composing priors.

Every kernel exposes its free hyperparameters in log space
(:meth:`Kernel.theta`) so the GP can optimise the marginal likelihood
with unconstrained L-BFGS.
"""

from __future__ import annotations

import abc
import math

import numpy as np


def _as_2d(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D design matrix, got shape {X.shape}")
    return X


def _sq_dists(X: np.ndarray, Y: np.ndarray, lengthscale: float | np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances of scaled inputs, clipped at 0.

    ``lengthscale`` may be a scalar (isotropic) or a per-dimension vector
    (ARD — automatic relevance determination).
    """
    Xs, Ys = X / lengthscale, Y / lengthscale
    sq = (
        np.sum(Xs**2, axis=1)[:, None]
        + np.sum(Ys**2, axis=1)[None, :]
        - 2.0 * Xs @ Ys.T
    )
    return np.maximum(sq, 0.0)


class Geometry:
    """Cached *unscaled* pairwise squared-distance geometry of two row sets.

    The log-marginal-likelihood optimisation evaluates the kernel matrix
    at dozens of hyperparameter settings over the same design.  The
    design never changes during a fit, so the expensive part — pairwise
    squared distances — is computed once here and merely rescaled by
    ``1/lengthscale**2`` per evaluation (:meth:`scaled_sq`).

    ``total`` holds the summed squared distances (enough for isotropic
    kernels); the per-dimension stack ``dims`` — needed for ARD values
    and gradients — is materialised lazily on first use.
    """

    __slots__ = ("X", "Y", "self_pair", "_total", "_dims")

    def __init__(self, X: np.ndarray, Y: np.ndarray | None = None) -> None:
        self.X = _as_2d(X)
        #: Whether the two row sets are the same object (K(X, X)): white
        #: noise contributes to the diagonal only in that case.
        self.self_pair = Y is None
        self.Y = self.X if Y is None else _as_2d(Y)
        if self.X.shape[1] != self.Y.shape[1]:
            raise ValueError(
                f"row sets disagree on dimensionality: "
                f"{self.X.shape[1]} vs {self.Y.shape[1]}"
            )
        self._total: np.ndarray | None = None
        self._dims: np.ndarray | None = None

    @classmethod
    def from_blocks(
        cls, dims: np.ndarray, total: np.ndarray | None, self_pair: bool
    ) -> Geometry:
        """Wrap precomputed distance blocks (the incremental-scorer path).

        Args:
            dims: per-dimension squared differences, shape ``(d, n, m)``.
            total: their sum over dimensions ``(n, m)``; derived when None.
            self_pair: whether the blocks describe ``K(X, X)``.
        """
        dims = np.asarray(dims, dtype=float)
        if dims.ndim != 3:
            raise ValueError(f"dims must be (d, n, m), got shape {dims.shape}")
        geometry = cls.__new__(cls)
        geometry.X = None  # type: ignore[assignment]
        geometry.Y = None  # type: ignore[assignment]
        geometry.self_pair = self_pair
        geometry._dims = dims
        geometry._total = dims.sum(axis=0) if total is None else np.asarray(total, float)
        return geometry

    @property
    def shape(self) -> tuple[int, int]:
        """``(n, m)`` — rows of X by rows of Y."""
        if self._total is not None:
            return self._total.shape  # type: ignore[return-value]
        if self._dims is not None:
            return self._dims.shape[1:]  # type: ignore[return-value]
        return (self.X.shape[0], self.Y.shape[0])

    @property
    def total(self) -> np.ndarray:
        """Unscaled pairwise squared distances, shape ``(n, m)``."""
        if self._total is None:
            self._total = _sq_dists(self.X, self.Y, 1.0)
            if self.self_pair:
                # The quadratic-expansion formula leaves ~1e-15 residuals
                # where the exact distance is 0; pin the diagonal so
                # non-smooth kernels (Matérn 1/2) see exact zeros.
                self._total.flat[:: self._total.shape[0] + 1] = 0.0
        return self._total

    @property
    def dims(self) -> np.ndarray:
        """Per-dimension squared differences, shape ``(d, n, m)``."""
        if self._dims is None:
            diff = self.X[:, None, :] - self.Y[None, :, :]
            self._dims = np.ascontiguousarray(np.moveaxis(diff * diff, -1, 0))
        return self._dims

    def scaled_sq(self, lengthscale: float | np.ndarray) -> np.ndarray:
        """Squared distances of ``1/lengthscale``-scaled inputs.

        Scalar lengthscales rescale the cached total; ARD vectors
        contract the per-dimension stack with ``1/lengthscale**2``.
        """
        ls = np.asarray(lengthscale, dtype=float)
        if ls.ndim == 0:
            return self.total / float(ls) ** 2
        return np.tensordot(1.0 / ls**2, self.dims, axes=1)


class Kernel(abc.ABC):
    """A positive semi-definite covariance function.

    Subclasses implement :meth:`__call__`; hyperparameters live in
    ``theta`` as log-transformed values so optimisation is unconstrained.
    """

    @abc.abstractmethod
    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        """Covariance matrix between rows of ``X`` and rows of ``Y`` (or ``X``)."""

    @property
    @abc.abstractmethod
    def theta(self) -> np.ndarray:
        """Free hyperparameters in log space."""

    @theta.setter
    @abc.abstractmethod
    def theta(self, value: np.ndarray) -> None: ...

    @property
    @abc.abstractmethod
    def bounds(self) -> np.ndarray:
        """``(n_params, 2)`` log-space bounds for optimisation."""

    @abc.abstractmethod
    def clone(self) -> Kernel:
        """An independent copy with the same hyperparameters."""

    def value(self, geometry: Geometry) -> np.ndarray:
        """Covariance matrix evaluated from cached distance geometry.

        The generic fallback re-evaluates :meth:`__call__` on the raw row
        sets; built-in kernels override it to rescale the cached
        geometry instead of recomputing distances.
        """
        if geometry.X is None:
            raise NotImplementedError(
                f"{type(self).__name__} cannot evaluate block-built geometry"
            )
        return self(geometry.X, None if geometry.self_pair else geometry.Y)

    def value_and_grad(self, geometry: Geometry) -> tuple[np.ndarray, np.ndarray]:
        """``K`` and its analytic gradients w.r.t. the log hyperparameters.

        Returns:
            ``(K, dK)`` where ``dK`` has shape ``(theta.size, n, m)`` and
            ``dK[p]`` is the derivative of ``K`` w.r.t. ``theta[p]``
            (log-space, matching :attr:`theta`).

        Raises:
            NotImplementedError: for kernels without an analytic gradient
                (the GP then falls back to finite differences).
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no analytic gradient"
        )

    def diag(self, X: np.ndarray) -> np.ndarray:
        """The diagonal of ``self(X, X)``.

        Generic fallback: one vectorised kernel evaluation instead of a
        per-row Python loop.  Subclasses override with O(n) shortcuts
        that never form the matrix.
        """
        return np.diag(self(_as_2d(X))).copy()

    def __add__(self, other: Kernel) -> Kernel:
        return Sum(self, other)

    def __mul__(self, other: Kernel) -> Kernel:
        return Product(self, other)


class _Stationary(Kernel):
    """Shared machinery for stationary kernels with (variance, lengthscale).

    ``lengthscale`` may be a scalar (isotropic kernel, the default) or a
    per-dimension vector (ARD): with a vector, each input dimension gets
    its own learned scale, letting the GP discount irrelevant features.
    """

    def __init__(
        self,
        variance: float = 1.0,
        lengthscale: float | np.ndarray = 1.0,
        lengthscale_bounds: tuple[float, float] = (1e-2, 1e3),
        variance_bounds: tuple[float, float] = (1e-3, 1e3),
    ) -> None:
        lengthscale_arr = np.asarray(lengthscale, dtype=float)
        if variance <= 0 or np.any(lengthscale_arr <= 0):
            raise ValueError("variance and lengthscale must be positive")
        if lengthscale_arr.ndim > 1:
            raise ValueError("lengthscale must be a scalar or a 1-D vector")
        self.variance = float(variance)
        self.lengthscale: float | np.ndarray = (
            float(lengthscale_arr) if lengthscale_arr.ndim == 0 else lengthscale_arr
        )
        self._ls_bounds = lengthscale_bounds
        self._var_bounds = variance_bounds

    @property
    def is_ard(self) -> bool:
        """Whether this kernel carries per-dimension lengthscales."""
        return isinstance(self.lengthscale, np.ndarray)

    def _lengthscales(self) -> np.ndarray:
        return np.atleast_1d(np.asarray(self.lengthscale, dtype=float))

    @property
    def theta(self) -> np.ndarray:
        return np.log(np.concatenate([[self.variance], self._lengthscales()]))

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        expected = 1 + self._lengthscales().size
        if value.shape != (expected,):
            raise ValueError(
                f"expected {expected} log-parameters, got shape {value.shape}"
            )
        exp = np.exp(value)
        self.variance = float(exp[0])
        self.lengthscale = exp[1:] if self.is_ard else float(exp[1])

    @property
    def bounds(self) -> np.ndarray:
        ls_rows = [self._ls_bounds] * self._lengthscales().size
        return np.log([self._var_bounds, *ls_rows])

    def clone(self) -> Kernel:
        lengthscale = (
            self.lengthscale.copy() if self.is_ard else self.lengthscale
        )
        return type(self)(self.variance, lengthscale, self._ls_bounds, self._var_bounds)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(_as_2d(X).shape[0], self.variance)

    @abc.abstractmethod
    def _from_sq(self, sq: np.ndarray) -> np.ndarray:
        """Covariance from squared distances of already-scaled inputs."""

    @staticmethod
    def _stacked_from_sq(sq: np.ndarray, variance: np.ndarray) -> np.ndarray:
        """Batched :meth:`_from_sq` over an ``(S, n, m)`` distance stack.

        ``variance`` is broadcast per slice (shape ``(S, 1, 1)``).  Each
        concrete kernel mirrors its ``_from_sq`` expression exactly, so
        slice ``s`` is bit-identical to the per-kernel evaluation.
        """
        raise NotImplementedError

    @abc.abstractmethod
    def _value_and_dsq(self, sq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(K, dK/d sq)`` from scaled squared distances ``sq``."""

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        X = _as_2d(X)
        Y = X if Y is None else _as_2d(Y)
        return self._from_sq(_sq_dists(X, Y, self.lengthscale))

    def value(self, geometry: Geometry) -> np.ndarray:
        return self._from_sq(geometry.scaled_sq(self.lengthscale))

    def value_and_grad(self, geometry: Geometry) -> tuple[np.ndarray, np.ndarray]:
        """``K`` plus gradients w.r.t. ``log variance`` and log lengthscales.

        With ``sq`` the scaled squared distances, ``d sq / d log l = -2 sq``
        (isotropic) or ``-2 sq_d / l_d**2`` per dimension (ARD), and the
        gradient w.r.t. ``log variance`` is ``K`` itself.
        """
        sq = geometry.scaled_sq(self.lengthscale)
        K, dK_dsq = self._value_and_dsq(sq)
        lengthscales = self._lengthscales()
        grad = np.empty((1 + lengthscales.size, *K.shape))
        grad[0] = K
        if self.is_ard:
            dims = geometry.dims
            for axis, lengthscale in enumerate(lengthscales):
                grad[1 + axis] = dK_dsq * (-2.0 / lengthscale**2) * dims[axis]
        else:
            grad[1] = dK_dsq * (-2.0 * sq)
        return K, grad

    def __repr__(self) -> str:
        if self.is_ard:
            scales = np.array2string(self._lengthscales(), precision=3)
            return f"{type(self).__name__}(variance={self.variance:.4g}, ard={scales})"
        return (
            f"{type(self).__name__}(variance={self.variance:.4g}, "
            f"lengthscale={self.lengthscale:.4g})"
        )


class RBF(_Stationary):
    """Radial basis function (squared exponential) kernel.

    Infinitely smooth — the strongest smoothness prior of the four, which
    the paper notes "considers the effects of features on the covariance
    equally" and can be unrealistic for cloud performance.
    """

    def _from_sq(self, sq: np.ndarray) -> np.ndarray:
        return self.variance * np.exp(-0.5 * sq)

    @staticmethod
    def _stacked_from_sq(sq: np.ndarray, variance: np.ndarray) -> np.ndarray:
        return variance * np.exp(-0.5 * sq)

    def _value_and_dsq(self, sq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        K = self._from_sq(sq)
        return K, -0.5 * K


class Matern12(_Stationary):
    """Matérn kernel with smoothness 1/2 (the exponential kernel).

    The roughest prior: sample paths are continuous but nowhere
    differentiable.
    """

    def _from_sq(self, sq: np.ndarray) -> np.ndarray:
        d = np.sqrt(sq)
        return self.variance * np.exp(-d)

    @staticmethod
    def _stacked_from_sq(sq: np.ndarray, variance: np.ndarray) -> np.ndarray:
        d = np.sqrt(sq)
        return variance * np.exp(-d)

    def _value_and_dsq(self, sq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        d = np.sqrt(sq)
        K = self.variance * np.exp(-d)
        # dK/dsq = -K / (2 d); the kernel is not differentiable at d = 0
        # (the diagonal), where the distance gradient is 0 anyway — take
        # the subgradient 0 there.
        with np.errstate(divide="ignore", invalid="ignore"):
            dK_dsq = np.where(d > 0.0, -K / (2.0 * d), 0.0)
        return K, dK_dsq


class Matern32(_Stationary):
    """Matérn kernel with smoothness 3/2 (once-differentiable paths)."""

    def _from_sq(self, sq: np.ndarray) -> np.ndarray:
        d = math.sqrt(3.0) * np.sqrt(sq)
        return self.variance * (1.0 + d) * np.exp(-d)

    @staticmethod
    def _stacked_from_sq(sq: np.ndarray, variance: np.ndarray) -> np.ndarray:
        d = math.sqrt(3.0) * np.sqrt(sq)
        return variance * (1.0 + d) * np.exp(-d)

    def _value_and_dsq(self, sq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        d = math.sqrt(3.0) * np.sqrt(sq)
        exp_d = np.exp(-d)
        return self.variance * (1.0 + d) * exp_d, -1.5 * self.variance * exp_d


class Matern52(_Stationary):
    """Matérn kernel with smoothness 5/2 — CherryPick's choice.

    Twice-differentiable sample paths: smooth enough for efficient
    optimisation but without RBF's unrealistically strong smoothness.
    """

    def _from_sq(self, sq: np.ndarray) -> np.ndarray:
        d = math.sqrt(5.0) * np.sqrt(sq)
        return self.variance * (1.0 + d + d**2 / 3.0) * np.exp(-d)

    @staticmethod
    def _stacked_from_sq(sq: np.ndarray, variance: np.ndarray) -> np.ndarray:
        d = math.sqrt(5.0) * np.sqrt(sq)
        return variance * (1.0 + d + d**2 / 3.0) * np.exp(-d)

    def _value_and_dsq(self, sq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        d = math.sqrt(5.0) * np.sqrt(sq)
        exp_d = np.exp(-d)
        K = self.variance * (1.0 + d + d**2 / 3.0) * exp_d
        return K, -(5.0 / 6.0) * self.variance * (1.0 + d) * exp_d


def stacked_stationary_value(
    kernels: list[Kernel], geometries: list[Geometry]
) -> np.ndarray:
    """Evaluate many same-class isotropic stationary kernels in one pass.

    Stacks the cached distance totals of ``geometries`` into one
    ``(S, n, m)`` block and applies the shared covariance formula with
    per-slice lengthscale and variance broadcasts.  Slice ``s`` of the
    result is bit-identical to ``kernels[s].value(geometries[s])``: the
    scaling division, and every operation inside ``_stacked_from_sq``,
    runs elementwise on exactly the operands the per-kernel path uses.

    Raises:
        NotImplementedError: if the kernels are not all the same concrete
            ``_Stationary`` subclass with scalar (isotropic) lengthscales
            — ARD contractions and composite kernels keep the per-kernel
            path.
        ValueError: on empty/mismatched inputs or ragged geometry shapes.
    """
    if not kernels or len(kernels) != len(geometries):
        raise ValueError(
            f"got {len(kernels)} kernels but {len(geometries)} geometries"
        )
    cls = type(kernels[0])
    if cls not in (RBF, Matern12, Matern32, Matern52):
        raise NotImplementedError(
            f"stacked evaluation not supported for {cls.__name__}"
        )
    for kernel in kernels:
        if type(kernel) is not cls:
            raise NotImplementedError(
                "stacked evaluation requires one concrete kernel class, "
                f"got {cls.__name__} and {type(kernel).__name__}"
            )
        if kernel.is_ard:  # type: ignore[union-attr]
            raise NotImplementedError(
                "stacked evaluation supports isotropic lengthscales only"
            )
    shape = geometries[0].shape
    for geometry in geometries:
        if geometry.shape != shape:
            raise ValueError(
                f"ragged geometry shapes: {shape} vs {geometry.shape}"
            )
    totals = np.stack([geometry.total for geometry in geometries])
    lengthscales = np.array(
        [float(kernel.lengthscale) for kernel in kernels]  # type: ignore[union-attr]
    )
    variances = np.array([kernel.variance for kernel in kernels])  # type: ignore[union-attr]
    # `totals[s] / ls[s]**2` performs the same IEEE divide as
    # `Geometry.scaled_sq`'s `total / float(ls) ** 2` per slice.
    sq = totals / (lengthscales**2)[:, None, None]
    return cls._stacked_from_sq(sq, variances[:, None, None])


class White(Kernel):
    """White noise kernel: adds ``noise`` to the diagonal of K(X, X)."""

    def __init__(
        self, noise: float = 1e-4, noise_bounds: tuple[float, float] = (1e-8, 1e1)
    ) -> None:
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.noise = float(noise)
        self._bounds = noise_bounds

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        X = _as_2d(X)
        if Y is None:
            return self.noise * np.eye(X.shape[0])
        return np.zeros((X.shape[0], _as_2d(Y).shape[0]))

    @property
    def theta(self) -> np.ndarray:
        return np.log([self.noise])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        if value.shape != (1,):
            raise ValueError(f"expected 1 log-parameter, got shape {value.shape}")
        self.noise = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        return np.log([self._bounds])

    def clone(self) -> Kernel:
        return White(self.noise, self._bounds)

    def value(self, geometry: Geometry) -> np.ndarray:
        n, m = geometry.shape
        K = np.zeros((n, m))
        if geometry.self_pair:
            K.flat[:: m + 1] = self.noise
        return K

    def value_and_grad(self, geometry: Geometry) -> tuple[np.ndarray, np.ndarray]:
        # d(noise I)/d log noise = noise I = K itself.
        K = self.value(geometry)
        return K, K[None].copy()

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(_as_2d(X).shape[0], self.noise)

    def __repr__(self) -> str:
        return f"White(noise={self.noise:.4g})"


class _Combination(Kernel):
    """Shared machinery for binary kernel combinations."""

    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.left.theta, self.right.theta])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float)
        n_left = self.left.theta.size
        self.left.theta = value[:n_left]
        self.right.theta = value[n_left:]

    @property
    def bounds(self) -> np.ndarray:
        return np.vstack([self.left.bounds, self.right.bounds])

    def clone(self) -> Kernel:
        return type(self)(self.left.clone(), self.right.clone())


class Sum(_Combination):
    """Pointwise sum of two kernels."""

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        return self.left(X, Y) + self.right(X, Y)

    def value(self, geometry: Geometry) -> np.ndarray:
        return self.left.value(geometry) + self.right.value(geometry)

    def value_and_grad(self, geometry: Geometry) -> tuple[np.ndarray, np.ndarray]:
        K_left, grad_left = self.left.value_and_grad(geometry)
        K_right, grad_right = self.right.value_and_grad(geometry)
        return K_left + K_right, np.concatenate([grad_left, grad_right])

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) + self.right.diag(X)

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


class Product(_Combination):
    """Pointwise product of two kernels."""

    def __call__(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        return self.left(X, Y) * self.right(X, Y)

    def value(self, geometry: Geometry) -> np.ndarray:
        return self.left.value(geometry) * self.right.value(geometry)

    def value_and_grad(self, geometry: Geometry) -> tuple[np.ndarray, np.ndarray]:
        K_left, grad_left = self.left.value_and_grad(geometry)
        K_right, grad_right = self.right.value_and_grad(geometry)
        return (
            K_left * K_right,
            np.concatenate([grad_left * K_right, K_left * grad_right]),
        )

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) * self.right.diag(X)

    def __repr__(self) -> str:
        return f"({self.left!r} * {self.right!r})"


class DesignGeometry:
    """Incremental distance geometry over a fixed design matrix.

    A BO scorer fits its GP on the measured subset of a fixed design and
    predicts over the unmeasured rest at every step.  A column of
    squared differences depends only on the *design row* it is taken
    against — never on when that row was measured — so columns are
    cached by design index in preallocated ``(d, n, n)`` / ``(n, n)``
    buffers and computed at most once per row across the whole search.

    Caching by index (rather than by measurement order) is what lets
    the constant-liar q-EI path reuse candidate-side cross-covariance
    columns across fantasies *and* across rounds: a batched search
    commits measurements in catalog order while fantasies extend in
    pick order, and both simply gather the same cached columns instead
    of recomputing distances after every order change.

    :meth:`fit_geometry` and :meth:`cross_geometry` gather the cached
    columns into the :class:`Geometry` blocks kernels consume, so no
    pairwise distance is ever computed twice.
    """

    def __init__(self, design: np.ndarray) -> None:
        self.design = _as_2d(np.asarray(design, dtype=float))
        n, d = self.design.shape
        self._order: list[int] = []
        self._col_dims = np.empty((d, n, n))
        self._col_total = np.empty((n, n))
        self._have = np.zeros(n, dtype=bool)
        #: Observability counters: columns computed, and serve orders
        #: that diverged from a pure extension of the previous one
        #: (those used to force a full recompute; they are now served
        #: from the by-index cache like any other order).
        self.extensions = 0
        self.rebuilds = 0

    def _sync(self, measured: list[int]) -> None:
        """Compute any columns of ``measured`` not cached yet."""
        if measured[: len(self._order)] != self._order:
            self.rebuilds += 1
            self._order = list(measured)
        elif len(measured) > len(self._order):
            self._order = list(measured)
        for index in measured:
            if not self._have[index]:
                diff = self.design - self.design[index]
                square = diff * diff
                self._col_dims[:, :, index] = square.T
                self._col_total[:, index] = square.sum(axis=1)
                self._have[index] = True
                self.extensions += 1

    def fit_geometry(self, measured: list[int]) -> Geometry:
        """Geometry of the measured rows against themselves."""
        measured = list(measured)
        self._sync(measured)
        rows = np.asarray(measured, dtype=int)
        dims = np.arange(self.design.shape[1])
        return Geometry.from_blocks(
            self._col_dims[np.ix_(dims, rows, rows)],
            self._col_total[np.ix_(rows, rows)],
            self_pair=True,
        )

    def cross_geometry(self, rows: list[int], measured: list[int]) -> Geometry:
        """Geometry of arbitrary design rows against the measured set."""
        measured = list(measured)
        self._sync(measured)
        row_index = np.asarray(list(rows), dtype=int)
        cols = np.asarray(measured, dtype=int)
        dims = np.arange(self.design.shape[1])
        return Geometry.from_blocks(
            self._col_dims[np.ix_(dims, row_index, cols)],
            self._col_total[np.ix_(row_index, cols)],
            self_pair=False,
        )


_KERNELS_BY_NAME = {
    "rbf": RBF,
    "matern12": Matern12,
    "matern32": Matern32,
    "matern52": Matern52,
}


def kernel_by_name(name: str, **kwargs: float) -> Kernel:
    """Construct one of the paper's four kernels by name.

    Accepted names: ``"rbf"``, ``"matern12"``, ``"matern32"``,
    ``"matern52"`` (case-insensitive; ``"matern5/2"`` style also works).
    """
    key = name.lower().replace("/", "").replace("-", "").replace("_", "")
    try:
        return _KERNELS_BY_NAME[key](**kwargs)
    except KeyError:
        known = ", ".join(sorted(_KERNELS_BY_NAME))
        raise ValueError(f"unknown kernel {name!r}; known kernels: {known}") from None
