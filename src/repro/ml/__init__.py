"""Machine-learning substrate, implemented from scratch.

The paper's two surrogate families — Gaussian Process regression with
RBF/Matérn kernels (Naive BO, per CherryPick) and Extra-Trees ensembles
(Augmented BO) — plus the quasi-random initial design and feature scaling
both optimisers rely on.  No external ML library is used.
"""

from repro.ml.kernels import (
    RBF,
    Kernel,
    Matern12,
    Matern32,
    Matern52,
    Product,
    Sum,
    White,
    kernel_by_name,
)
from repro.ml.gp import GaussianProcessRegressor
from repro.ml.tree import RegressionTree
from repro.ml.extra_trees import ExtraTreesRegressor
from repro.ml.random_forest import CARTRegressionTree, RandomForestRegressor
from repro.ml.sampling import (
    SobolSequence,
    latin_hypercube,
    quasi_random_distinct,
)
from repro.ml.scaling import MinMaxScaler, StandardScaler

__all__ = [
    "Kernel",
    "RBF",
    "Matern12",
    "Matern32",
    "Matern52",
    "Sum",
    "Product",
    "White",
    "kernel_by_name",
    "GaussianProcessRegressor",
    "RegressionTree",
    "ExtraTreesRegressor",
    "CARTRegressionTree",
    "RandomForestRegressor",
    "SobolSequence",
    "latin_hypercube",
    "quasi_random_distinct",
    "MinMaxScaler",
    "StandardScaler",
]
