"""Quasi-random sampling: Sobol sequences, Latin hypercubes, and the
distinct-VM initial design.

CherryPick (and hence Naive BO) seeds Bayesian optimisation with a
quasi-random sample of "very distinct" VMs (paper Section III-C, citing
Sobol).  We provide three pieces:

* :class:`SobolSequence` — a from-scratch gray-code Sobol generator with
  Joe-Kuo direction numbers for up to 8 dimensions,
* :func:`latin_hypercube` — stratified uniform sampling,
* :func:`quasi_random_distinct` — the finite-catalog analogue used to pick
  initial VMs: a random first pick followed by greedy maximin selection in
  the scaled instance space, which is what "uniformly very distinct"
  means over a finite catalog (the paper's 18 types, or hundreds in
  the generated large catalogs).
"""

from __future__ import annotations

import numpy as np

from repro.ml.scaling import MinMaxScaler

#: Joe-Kuo "new-joe-kuo-6" direction-number table for dimensions 2..8:
#: (degree s, polynomial coefficients a, initial m values).
_JOE_KUO: tuple[tuple[int, int, tuple[int, ...]], ...] = (
    (1, 0, (1,)),
    (2, 1, (1, 3)),
    (3, 1, (1, 3, 1)),
    (3, 2, (1, 1, 1)),
    (4, 1, (1, 1, 3, 3)),
    (4, 4, (1, 3, 5, 13)),
    (5, 2, (1, 1, 5, 5, 17)),
)

#: Bits of precision of the generated points.
_SOBOL_BITS = 30

#: Maximum supported dimensionality (1 van-der-Corput + 7 tabulated).
MAX_SOBOL_DIM = len(_JOE_KUO) + 1


class SobolSequence:
    """Gray-code Sobol sequence over the unit hypercube.

    Args:
        dim: dimensionality, between 1 and :data:`MAX_SOBOL_DIM`.

    The generator is stateful: successive :meth:`next_point` /
    :meth:`generate` calls continue the sequence.
    """

    def __init__(self, dim: int) -> None:
        if not 1 <= dim <= MAX_SOBOL_DIM:
            raise ValueError(f"dim must be in [1, {MAX_SOBOL_DIM}], got {dim}")
        self.dim = dim
        self._v = np.zeros((dim, _SOBOL_BITS + 1), dtype=np.int64)
        self._build_direction_numbers()
        self._x = np.zeros(dim, dtype=np.int64)
        self._count = 0

    def _build_direction_numbers(self) -> None:
        # First dimension: van der Corput (all m_k = 1).
        for k in range(1, _SOBOL_BITS + 1):
            self._v[0, k] = 1 << (_SOBOL_BITS - k)

        for j in range(1, self.dim):
            s, a, m_init = _JOE_KUO[j - 1]
            m = np.zeros(_SOBOL_BITS + 1, dtype=np.int64)
            m[1 : s + 1] = m_init
            for k in range(s + 1, _SOBOL_BITS + 1):
                value = m[k - s] ^ (m[k - s] << s)
                for i in range(1, s):
                    if (a >> (s - 1 - i)) & 1:
                        value ^= m[k - i] << i
                m[k] = value
            for k in range(1, _SOBOL_BITS + 1):
                self._v[j, k] = m[k] << (_SOBOL_BITS - k)

    def next_point(self) -> np.ndarray:
        """The next point of the sequence (the first point is the origin)."""
        if self._count > 0:
            # Index of the lowest zero bit of (count - 1), 1-based.
            c, value = 1, self._count - 1
            while value & 1:
                value >>= 1
                c += 1
            self._x ^= self._v[:, c]
        self._count += 1
        return self._x / float(1 << _SOBOL_BITS)

    def generate(self, n: int) -> np.ndarray:
        """The next ``n`` points as an ``(n, dim)`` array."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return np.array([self.next_point() for _ in range(n)]).reshape(n, self.dim)


def latin_hypercube(
    n: int, dim: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """``n`` Latin-hypercube points in the unit ``dim``-cube.

    Each dimension is divided into ``n`` strata; every stratum contains
    exactly one point, placed uniformly within it.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    if dim < 1:
        raise ValueError("dim must be at least 1")
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    points = np.empty((n, dim))
    for j in range(dim):
        strata = (rng.permutation(n) + rng.uniform(size=n)) / n
        points[:, j] = strata
    return points


def quasi_random_distinct(
    candidates: np.ndarray,
    n: int,
    rng: np.random.Generator | int | None = None,
) -> list[int]:
    """Pick ``n`` mutually distinct rows of ``candidates`` (greedy maximin).

    The first pick is uniform at random; each subsequent pick maximises
    the minimum Euclidean distance (in min-max-scaled feature space) to
    the rows already chosen.  This is the finite-space equivalent of the
    quasi-random "very distinct VMs" initial design of the paper.

    Returns:
        Row indices of the chosen candidates, in pick order.

    Raises:
        ValueError: if ``n`` exceeds the number of candidates.
    """
    candidates = np.asarray(candidates, dtype=float)
    if candidates.ndim != 2:
        raise ValueError(f"candidates must be 2-D, got shape {candidates.shape}")
    n_candidates = candidates.shape[0]
    if not 1 <= n <= n_candidates:
        raise ValueError(f"n must be in [1, {n_candidates}], got {n}")
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    scaled = MinMaxScaler().fit_transform(candidates)
    chosen = [int(rng.integers(n_candidates))]
    min_dist = np.linalg.norm(scaled - scaled[chosen[0]], axis=1)
    for _ in range(n - 1):
        min_dist[chosen] = -np.inf
        # Random tie-break: perturb by a negligible random epsilon.
        best = int(np.argmax(min_dist + rng.uniform(0.0, 1e-9, size=n_candidates)))
        chosen.append(best)
        min_dist = np.minimum(min_dist, np.linalg.norm(scaled - scaled[best], axis=1))
    return chosen
