"""Gaussian Process regression, from scratch.

This is the surrogate of Naive BO (CherryPick): a GP prior over the
objective with one of the four kernels of :mod:`repro.ml.kernels`.
The implementation follows Rasmussen & Williams Algorithm 2.1:

* Cholesky factorisation of ``K + sigma_n^2 I`` (with jitter escalation if
  the matrix is numerically indefinite),
* hyperparameters (kernel theta and the noise level) fitted by maximising
  the log marginal likelihood with multi-restart L-BFGS-B in log space,
* targets are standardised internally so priors are scale-free.

Hyperparameter fitting has two gradient modes:

* ``gradient="analytic"`` (default) — the hot path.  One fused
  evaluation per L-BFGS-B iteration returns the log marginal likelihood
  *and* its gradient (Rasmussen & Williams Eq. 5.9,
  ``d lml/d theta = 1/2 tr((alpha alpha^T - K^-1) dK/d theta)``) from a
  single Cholesky factorisation, with ``dK/d theta`` computed
  analytically from a pairwise squared-distance geometry that is cached
  once per fit and merely rescaled by ``1/lengthscale**2`` per
  evaluation.  The jitter level that last made the Cholesky succeed is
  memoised across evaluations of one fit so escalation is not replayed.
* ``gradient="numeric"`` — the pre-existing behaviour, bit for bit:
  value-only likelihood evaluations with L-BFGS-B's own forward
  differences (one extra kernel build and Cholesky per parameter per
  gradient).

Both modes land in the same optima up to optimiser tolerance; the
numeric knob exists for A/B testing and for kernels without
:meth:`~repro.ml.kernels.Kernel.value_and_grad` (which also fall back
automatically).
"""

from __future__ import annotations

import numpy as np
from scipy import linalg, optimize

from repro.ml.kernels import Geometry, Kernel, Matern52, stacked_stationary_value

_JITTERS = (1e-10, 1e-8, 1e-6, 1e-4, 1e-2)

#: Valid values of ``GaussianProcessRegressor(gradient=...)``.
GRADIENT_MODES = ("analytic", "numeric")


def _cholesky_with_jitter(K: np.ndarray, start: int = 0) -> tuple[np.ndarray, int]:
    """Lower Cholesky factor of ``K``, escalating diagonal jitter as needed.

    Args:
        K: the (symmetric) matrix to factor; never mutated.
        start: index into the jitter ladder to start from — pass the
            index a previous factorisation of a nearby matrix succeeded
            at to skip re-escalating through jitters known to fail.

    Returns:
        ``(L, index)`` — the factor and the jitter index that succeeded.

    Raises:
        np.linalg.LinAlgError: if ``K`` stays indefinite even at the
            largest jitter.
    """
    n = K.shape[0]
    for index in range(start, len(_JITTERS)):
        jittered = K.copy()
        jittered.flat[:: n + 1] += _JITTERS[index]
        try:
            return linalg.cholesky(jittered, lower=True), index
        except linalg.LinAlgError:
            continue
    raise np.linalg.LinAlgError("covariance matrix is not positive definite")


class GaussianProcessRegressor:
    """GP regression with marginal-likelihood hyperparameter fitting.

    Args:
        kernel: covariance function; defaults to Matérn 5/2 (CherryPick's
            choice).  The instance is cloned, never mutated.
        noise: initial observation-noise variance.
        optimise: whether to fit hyperparameters at :meth:`fit` time.
        n_restarts: extra random restarts for the likelihood optimisation.
        seed: seed for restart sampling.
        gradient: ``"analytic"`` (fused one-Cholesky value+gradient, the
            default) or ``"numeric"`` (finite-difference L-BFGS-B, the
            legacy behaviour preserved exactly).

    Attributes:
        n_fits: :meth:`fit` calls so far (instrumentation).
        n_lml_evals: log-marginal-likelihood evaluations so far.
        n_kernel_builds: kernel-matrix constructions so far — the hot-path
            cost driver the analytic mode minimises.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        noise: float = 1e-4,
        optimise: bool = True,
        n_restarts: int = 2,
        seed: int | None = None,
        gradient: str = "analytic",
    ) -> None:
        if noise <= 0:
            raise ValueError("noise must be positive")
        if gradient not in GRADIENT_MODES:
            raise ValueError(
                f"unknown gradient mode {gradient!r}; known: {GRADIENT_MODES}"
            )
        self.kernel = (kernel if kernel is not None else Matern52()).clone()
        self.noise = float(noise)
        self.optimise = optimise
        self.n_restarts = n_restarts
        self.gradient = gradient
        self._rng = np.random.default_rng(seed)
        self._X: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._L: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._eye: np.ndarray | None = None
        self._fit_jitter = 0
        self.n_fits = 0
        self.n_lml_evals = 0
        self.n_kernel_builds = 0

    # -- fitting -----------------------------------------------------------

    def fit(
        self, X: np.ndarray, y: np.ndarray, geometry: Geometry | None = None
    ) -> GaussianProcessRegressor:
        """Fit the GP to observations ``(X, y)``.

        Args:
            X: ``(n, d)`` design matrix.
            y: ``n`` observed targets.
            geometry: optional precomputed pairwise distance geometry of
                ``X`` (shape ``(n, n)``, self-pair) — callers that track
                distances incrementally across fits pass it to skip the
                per-fit rebuild.  Only consulted in analytic mode.

        Raises:
            ValueError: on empty or mismatched inputs, or a geometry
                whose shape disagrees with ``X``.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a GP on zero observations")
        n = X.shape[0]
        if geometry is not None and geometry.shape != (n, n):
            raise ValueError(
                f"geometry shape {geometry.shape} does not match {n} rows"
            )

        self._X = X
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        y_scaled = (y - self._y_mean) / self._y_std
        self.n_fits += 1

        fit_geometry: Geometry | None = None
        if self.gradient == "analytic":
            fit_geometry = geometry if geometry is not None else Geometry(X)

        if self.optimise and n >= 2:
            self._optimise_hyperparameters(y_scaled, fit_geometry)

        if fit_geometry is not None:
            try:
                K = self.kernel.value(fit_geometry)
            except NotImplementedError:
                K = self.kernel(self._X)
        else:
            K = self.kernel(self._X)
        self.n_kernel_builds += 1
        K.flat[:: n + 1] += self.noise
        self._L = _cholesky_with_jitter(K)[0]
        self._alpha = linalg.cho_solve((self._L, True), y_scaled)
        return self

    def _packed_theta(self) -> np.ndarray:
        return np.concatenate([self.kernel.theta, np.log([self.noise])])

    def _set_packed_theta(self, theta: np.ndarray) -> None:
        self.kernel.theta = theta[:-1]
        self.noise = float(np.exp(theta[-1]))

    def _packed_bounds(self) -> np.ndarray:
        noise_bounds = np.log([[1e-8, 1e1]])
        return np.vstack([self.kernel.bounds, noise_bounds])

    def log_marginal_likelihood(self, y_scaled: np.ndarray) -> float:
        """Log marginal likelihood at the current hyperparameters."""
        assert self._X is not None
        self.n_lml_evals += 1
        self.n_kernel_builds += 1
        n = self._X.shape[0]
        K = self.kernel(self._X)
        K.flat[:: n + 1] += self.noise
        try:
            L, _ = _cholesky_with_jitter(K)
        except np.linalg.LinAlgError:
            return -np.inf
        alpha = linalg.cho_solve((L, True), y_scaled)
        return float(
            -0.5 * y_scaled @ alpha
            - np.sum(np.log(np.diag(L)))
            - 0.5 * n * np.log(2.0 * np.pi)
        )

    def _lml_value_and_grad(
        self, theta: np.ndarray, y_scaled: np.ndarray, geometry: Geometry
    ) -> tuple[float, np.ndarray]:
        """Fused log marginal likelihood and gradient at packed ``theta``.

        One kernel build and one Cholesky per call: the gradient reuses
        the factorisation through Rasmussen & Williams Eq. 5.9,
        ``d lml/d theta_p = 1/2 tr((alpha alpha^T - K^-1) dK/d theta_p)``.
        The observation noise enters as ``dK/d log noise = noise * I``.
        """
        assert self._X is not None and self._eye is not None
        self._set_packed_theta(theta)
        self.n_lml_evals += 1
        self.n_kernel_builds += 1
        K, K_grad = self.kernel.value_and_grad(geometry)
        n = K.shape[0]
        K.flat[:: n + 1] += self.noise
        try:
            L, self._fit_jitter = _cholesky_with_jitter(K, start=self._fit_jitter)
        except np.linalg.LinAlgError:
            return -np.inf, np.zeros(theta.size)
        alpha = linalg.cho_solve((L, True), y_scaled)
        lml = float(
            -0.5 * y_scaled @ alpha
            - np.sum(np.log(np.diag(L)))
            - 0.5 * n * np.log(2.0 * np.pi)
        )
        inner = np.outer(alpha, alpha) - linalg.cho_solve((L, True), self._eye)
        grad = np.empty(theta.size)
        grad[:-1] = 0.5 * np.einsum("ij,pij->p", inner, K_grad)
        grad[-1] = 0.5 * self.noise * np.trace(inner)
        return lml, grad

    def _optimise_hyperparameters(
        self, y_scaled: np.ndarray, geometry: Geometry | None = None
    ) -> None:
        bounds = self._packed_bounds()
        starts = [self._packed_theta()]
        for _ in range(self.n_restarts):
            starts.append(self._rng.uniform(bounds[:, 0], bounds[:, 1]))

        if self.gradient == "analytic":
            try:
                self._optimise_analytic(y_scaled, bounds, starts, geometry)
                return
            except NotImplementedError:
                # The kernel has no analytic gradient — fall back to the
                # numeric path for this (and every later) evaluation.
                pass
        self._optimise_numeric(y_scaled, bounds, starts)

    def _optimise_analytic(
        self,
        y_scaled: np.ndarray,
        bounds: np.ndarray,
        starts: list[np.ndarray],
        geometry: Geometry | None,
    ) -> None:
        assert self._X is not None
        if geometry is None:
            geometry = Geometry(self._X)
        n = self._X.shape[0]
        # One identity per fit, shared by every K^-1 solve of the
        # optimisation — no per-evaluation np.eye allocations.
        if self._eye is None or self._eye.shape[0] != n:
            self._eye = np.eye(n)
        self._fit_jitter = 0

        def negative_lml_and_grad(theta: np.ndarray) -> tuple[float, np.ndarray]:
            lml, grad = self._lml_value_and_grad(theta, y_scaled, geometry)
            return -lml, -grad

        best_theta, best_value = starts[0], np.inf
        for start in starts:
            result = optimize.minimize(
                negative_lml_and_grad,
                start,
                method="L-BFGS-B",
                jac=True,
                bounds=bounds,
            )
            if result.fun < best_value:
                best_theta, best_value = result.x, float(result.fun)
        self._set_packed_theta(best_theta)

    def _optimise_numeric(
        self, y_scaled: np.ndarray, bounds: np.ndarray, starts: list[np.ndarray]
    ) -> None:
        def negative_lml(theta: np.ndarray) -> float:
            self._set_packed_theta(theta)
            return -self.log_marginal_likelihood(y_scaled)

        best_theta, best_value = starts[0], np.inf
        for start in starts:
            result = optimize.minimize(
                negative_lml, start, method="L-BFGS-B", bounds=bounds
            )
            if result.fun < best_value:
                best_theta, best_value = result.x, float(result.fun)
        self._set_packed_theta(best_theta)

    # -- prediction --------------------------------------------------------

    def predict(
        self,
        X: np.ndarray,
        return_std: bool = False,
        geometry: Geometry | None = None,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and optionally standard deviation) at ``X``.

        Args:
            X: ``(m, d)`` query rows.
            geometry: optional precomputed cross geometry between ``X``
                and the training rows (shape ``(m, n)``) — callers that
                track distances incrementally pass it so the
                cross-covariance block is rescaled, not recomputed.

        Raises:
            RuntimeError: if called before :meth:`fit`.
            ValueError: on a geometry whose shape disagrees with the
                query and training rows.
        """
        if self._X is None or self._L is None or self._alpha is None:
            raise RuntimeError("GP must be fitted before predict")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)

        if geometry is not None:
            if geometry.shape != (X.shape[0], self._X.shape[0]):
                raise ValueError(
                    f"geometry shape {geometry.shape} does not match "
                    f"({X.shape[0]}, {self._X.shape[0]})"
                )
            try:
                K_star = self.kernel.value(geometry)
            except NotImplementedError:
                K_star = self.kernel(X, self._X)
        else:
            K_star = self.kernel(X, self._X)
        mean = K_star @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean

        v = linalg.solve_triangular(self._L, K_star.T, lower=True)
        var = self.kernel.diag(X) + self.noise - np.sum(v**2, axis=0)
        std = np.sqrt(np.maximum(var, 0.0)) * self._y_std
        return mean, std


def fit_gps_stacked(
    gps: list[GaussianProcessRegressor],
    Xs: list[np.ndarray],
    ys: list[np.ndarray],
    geometries: list[Geometry | None] | None = None,
) -> list[GaussianProcessRegressor]:
    """Fit many GPs, batching the conditioning kernel build across them.

    Each ``gps[i]`` ends in exactly the state its own
    ``fit(Xs[i], ys[i], geometry=geometries[i])`` would produce — same
    hyperparameters, same factor, same counters.  The marginal-likelihood
    optimisation stays per-GP (L-BFGS-B is iterative with data-dependent
    step counts, so there is nothing to lock-step); what batches is the
    post-optimisation conditioning: when every GP in the group shares the
    same concrete isotropic stationary kernel class and design size, the
    ``S`` conditioning matrices are evaluated in one fused
    :func:`repro.ml.kernels.stacked_stationary_value` call over an
    ``(S, n, n)`` distance stack.  The Cholesky factorisations and solves
    remain per-slice — batched ``np.linalg.cholesky`` is not bit-identical
    to scipy's per-matrix LAPACK path, and the jitter ladder is
    per-matrix anyway.  Groups that don't qualify (ARD or composite
    kernels, ragged designs, numeric-gradient GPs without a geometry)
    silently fall back to per-GP kernel builds; the result is identical
    either way, batching only changes how many numpy dispatches it took.

    In practice the win here is modest: hyperparameter optimisation
    dominates GP fit time, and it is inherently sequential per GP.  The
    batched conditioning mainly keeps the vectorized driver's GP rounds
    from paying ``S`` separate kernel dispatches on top of that.
    """
    if geometries is None:
        geometries = [None] * len(gps)
    if not (len(gps) == len(Xs) == len(ys) == len(geometries)):
        raise ValueError(
            f"got {len(gps)} GPs, {len(Xs)} designs, {len(ys)} targets, "
            f"{len(geometries)} geometries"
        )

    # Per-GP prologue, exactly as fit(): validation, target scaling and
    # the (inherently sequential) hyperparameter optimisation.
    prepped: list[tuple[GaussianProcessRegressor, np.ndarray, Geometry | None]] = []
    for gp, X, y, geometry in zip(gps, Xs, ys, geometries):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a GP on zero observations")
        n = X.shape[0]
        if geometry is not None and geometry.shape != (n, n):
            raise ValueError(
                f"geometry shape {geometry.shape} does not match {n} rows"
            )
        gp._X = X
        gp._y_mean = float(y.mean())
        gp._y_std = float(y.std()) or 1.0
        y_scaled = (y - gp._y_mean) / gp._y_std
        gp.n_fits += 1
        fit_geometry: Geometry | None = None
        if gp.gradient == "analytic":
            fit_geometry = geometry if geometry is not None else Geometry(X)
        if gp.optimise and n >= 2:
            gp._optimise_hyperparameters(y_scaled, fit_geometry)
        prepped.append((gp, y_scaled, fit_geometry))

    # Batched conditioning: one stacked kernel evaluation if the group
    # is homogeneous, else per-GP builds (identical output either way).
    stacked_K: np.ndarray | None = None
    group_geometries = [fit_geometry for _, _, fit_geometry in prepped]
    if all(geometry is not None for geometry in group_geometries):
        try:
            stacked_K = stacked_stationary_value(
                [gp.kernel for gp, _, _ in prepped],
                group_geometries,  # type: ignore[arg-type]
            )
        except (NotImplementedError, ValueError):
            stacked_K = None

    for index, (gp, y_scaled, fit_geometry) in enumerate(prepped):
        assert gp._X is not None
        n = gp._X.shape[0]
        if stacked_K is not None:
            K = stacked_K[index]
        elif fit_geometry is not None:
            try:
                K = gp.kernel.value(fit_geometry)
            except NotImplementedError:
                K = gp.kernel(gp._X)
        else:
            K = gp.kernel(gp._X)
        gp.n_kernel_builds += 1
        K.flat[:: n + 1] += gp.noise
        gp._L = _cholesky_with_jitter(K)[0]
        gp._alpha = linalg.cho_solve((gp._L, True), y_scaled)
    return gps
