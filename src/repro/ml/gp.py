"""Gaussian Process regression, from scratch.

This is the surrogate of Naive BO (CherryPick): a GP prior over the
objective with one of the four kernels of :mod:`repro.ml.kernels`.
The implementation follows Rasmussen & Williams Algorithm 2.1:

* Cholesky factorisation of ``K + sigma_n^2 I`` (with jitter escalation if
  the matrix is numerically indefinite),
* hyperparameters (kernel theta and the noise level) fitted by maximising
  the log marginal likelihood with multi-restart L-BFGS-B in log space,
* targets are standardised internally so priors are scale-free.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg, optimize

from repro.ml.kernels import Kernel, Matern52

_JITTERS = (1e-10, 1e-8, 1e-6, 1e-4, 1e-2)


def _cholesky_with_jitter(K: np.ndarray) -> np.ndarray:
    """Lower Cholesky factor of ``K``, escalating diagonal jitter as needed.

    Raises:
        np.linalg.LinAlgError: if ``K`` stays indefinite even at the
            largest jitter.
    """
    for jitter in _JITTERS:
        try:
            return linalg.cholesky(K + jitter * np.eye(K.shape[0]), lower=True)
        except linalg.LinAlgError:
            continue
    raise np.linalg.LinAlgError("covariance matrix is not positive definite")


class GaussianProcessRegressor:
    """GP regression with marginal-likelihood hyperparameter fitting.

    Args:
        kernel: covariance function; defaults to Matérn 5/2 (CherryPick's
            choice).  The instance is cloned, never mutated.
        noise: initial observation-noise variance.
        optimise: whether to fit hyperparameters at :meth:`fit` time.
        n_restarts: extra random restarts for the likelihood optimisation.
        seed: seed for restart sampling.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        noise: float = 1e-4,
        optimise: bool = True,
        n_restarts: int = 2,
        seed: int | None = None,
    ) -> None:
        if noise <= 0:
            raise ValueError("noise must be positive")
        self.kernel = (kernel if kernel is not None else Matern52()).clone()
        self.noise = float(noise)
        self.optimise = optimise
        self.n_restarts = n_restarts
        self._rng = np.random.default_rng(seed)
        self._X: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._L: np.ndarray | None = None
        self._alpha: np.ndarray | None = None

    # -- fitting -----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> GaussianProcessRegressor:
        """Fit the GP to observations ``(X, y)``.

        Raises:
            ValueError: on empty or mismatched inputs.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a GP on zero observations")

        self._X = X
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        y_scaled = (y - self._y_mean) / self._y_std

        if self.optimise and X.shape[0] >= 2:
            self._optimise_hyperparameters(y_scaled)

        K = self.kernel(self._X) + self.noise * np.eye(X.shape[0])
        self._L = _cholesky_with_jitter(K)
        self._alpha = linalg.cho_solve((self._L, True), y_scaled)
        return self

    def _packed_theta(self) -> np.ndarray:
        return np.concatenate([self.kernel.theta, np.log([self.noise])])

    def _set_packed_theta(self, theta: np.ndarray) -> None:
        self.kernel.theta = theta[:-1]
        self.noise = float(np.exp(theta[-1]))

    def _packed_bounds(self) -> np.ndarray:
        noise_bounds = np.log([[1e-8, 1e1]])
        return np.vstack([self.kernel.bounds, noise_bounds])

    def log_marginal_likelihood(self, y_scaled: np.ndarray) -> float:
        """Log marginal likelihood at the current hyperparameters."""
        assert self._X is not None
        n = self._X.shape[0]
        K = self.kernel(self._X) + self.noise * np.eye(n)
        try:
            L = _cholesky_with_jitter(K)
        except np.linalg.LinAlgError:
            return -np.inf
        alpha = linalg.cho_solve((L, True), y_scaled)
        return float(
            -0.5 * y_scaled @ alpha
            - np.sum(np.log(np.diag(L)))
            - 0.5 * n * np.log(2.0 * np.pi)
        )

    def _optimise_hyperparameters(self, y_scaled: np.ndarray) -> None:
        bounds = self._packed_bounds()

        def negative_lml(theta: np.ndarray) -> float:
            self._set_packed_theta(theta)
            return -self.log_marginal_likelihood(y_scaled)

        starts = [self._packed_theta()]
        for _ in range(self.n_restarts):
            starts.append(self._rng.uniform(bounds[:, 0], bounds[:, 1]))

        best_theta, best_value = starts[0], np.inf
        for start in starts:
            result = optimize.minimize(
                negative_lml, start, method="L-BFGS-B", bounds=bounds
            )
            if result.fun < best_value:
                best_theta, best_value = result.x, float(result.fun)
        self._set_packed_theta(best_theta)

    # -- prediction --------------------------------------------------------

    def predict(
        self, X: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and optionally standard deviation) at ``X``.

        Raises:
            RuntimeError: if called before :meth:`fit`.
        """
        if self._X is None or self._L is None or self._alpha is None:
            raise RuntimeError("GP must be fitted before predict")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)

        K_star = self.kernel(X, self._X)
        mean = K_star @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean

        v = linalg.solve_triangular(self._L, K_star.T, lower=True)
        var = self.kernel.diag(X) + self.noise - np.sum(v**2, axis=0)
        std = np.sqrt(np.maximum(var, 0.0)) * self._y_std
        return mean, std
