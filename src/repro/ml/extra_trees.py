"""Extra-Trees regression ensemble.

The surrogate model of Augmented BO (paper Section IV-B): "a tree-based
ensemble method — Extra-Trees algorithm".  Tree ensembles capture the
sharp, interaction-heavy performance behaviour of cloud workloads without
requiring a kernel choice, which is precisely why the paper picks them
over the GP.

Beyond the mean prediction, the ensemble exposes the across-tree standard
deviation as an uncertainty proxy — useful for UCB-style acquisition over
tree surrogates and for the stopping analysis.

Two hot-path optimisations serve the surrogate's inner loop (the model
is refitted after every measurement of a search):

* prediction packs all trees into one flat node array and evaluates the
  whole ensemble in a single vectorised traversal
  (:func:`repro.ml.tree.predict_packed`) — bit-identical to per-tree
  traversal, but one Python loop over tree depth instead of one per tree;
* ``refit_fraction`` enables warm-start refitting: on a refit, only a
  seeded subset of trees is regrown on the new data while the rest keep
  their previous structure.  The default (1.0) refits everything, so
  seeded results are bit-identical to the classic behaviour; smaller
  fractions trade a little surrogate freshness for a proportional cut
  in per-step fit time.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import (
    PackedTrees,
    RegressionTree,
    coerce_training_data,
    pack_trees,
    predict_packed,
)
from repro.ml.tree_builder import (
    TREE_BUILDERS,
    BuiltForest,
    StackedGrowTask,
    build_extra_trees,
    build_extra_trees_stacked,
)


class ExtraTreesRegressor:
    """An ensemble of extremely-randomised regression trees.

    Classic Extra-Trees trains every tree on the full sample (no
    bootstrap); diversity comes from randomised split thresholds.

    Args:
        n_estimators: number of trees.
        max_features: features considered per split (``None`` = all).
        min_samples_split: node size below which growth stops.
        max_depth: per-tree depth cap.
        seed: seed for the ensemble's randomisation.
        refit_fraction: fraction of trees regrown when :meth:`fit` is
            called on an already-fitted ensemble.  1.0 (default) regrows
            every tree — the classic, bit-identical behaviour; smaller
            values warm-start: a seeded subset of ``ceil(fraction * n)``
            trees is refitted on the new data, the rest are kept.
        tree_builder: ``"vectorized"`` (default) grows the whole
            ensemble level-synchronously with batched numpy
            (:func:`repro.ml.tree_builder.build_extra_trees`) and emits
            straight into the packed predict format; ``"classic"`` keeps
            the per-node recursive grower.  Both implement the same
            split rules; seeded results are statistically equivalent but
            not bit-identical because random draws are consumed in a
            different order.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_features: int | None = None,
        min_samples_split: int = 2,
        max_depth: int | None = None,
        seed: int | None = None,
        refit_fraction: float = 1.0,
        tree_builder: str = "vectorized",
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if not 0.0 < refit_fraction <= 1.0:
            raise ValueError(
                f"refit_fraction must be in (0, 1], got {refit_fraction}"
            )
        if tree_builder not in TREE_BUILDERS:
            raise ValueError(
                f"unknown tree_builder {tree_builder!r}, expected one of {TREE_BUILDERS}"
            )
        self.n_estimators = n_estimators
        self.max_features = max_features
        self.min_samples_split = min_samples_split
        self.max_depth = max_depth
        self.refit_fraction = refit_fraction
        self.tree_builder = tree_builder
        self._rng = np.random.default_rng(seed)
        self._trees: list[RegressionTree] = []
        self._packed: PackedTrees | None = None
        # Builder output adopted without per-tree shells (stacked fits);
        # RegressionTree objects are materialised from it on demand.
        self._built: BuiltForest | None = None

    @property
    def trees(self) -> tuple[RegressionTree, ...]:
        """The fitted trees (empty before :meth:`fit`)."""
        self._materialize_trees()
        return tuple(self._trees)

    def _materialize_trees(self) -> None:
        """Build per-tree shells from a lazily adopted forest, if any."""
        if self._built is None:
            return
        built = self._built
        self._built = None
        self._trees = [
            RegressionTree.from_arrays(
                *built.tree_arrays(index),
                max_features=self.max_features,
                min_samples_split=self.min_samples_split,
                max_depth=self.max_depth,
            )
            for index in range(built.n_trees)
        ]

    def adopt_built(self, built: BuiltForest) -> None:
        """Install a pre-grown forest as this ensemble's fitted state.

        Used by :func:`fit_ensembles_stacked`: the packed arrays serve
        prediction immediately; the per-tree ``RegressionTree`` shells —
        which the prediction hot path never touches — are only
        materialised if :attr:`trees` is actually read.
        """
        if built.n_trees != self.n_estimators:
            raise ValueError(
                f"forest has {built.n_trees} trees, expected {self.n_estimators}"
            )
        self._packed = built.packed
        self._trees = []
        self._built = built

    def _grow_tree(self, X: np.ndarray, y: np.ndarray) -> RegressionTree:
        tree = RegressionTree(
            max_features=self.max_features,
            min_samples_split=self.min_samples_split,
            max_depth=self.max_depth,
            seed=self._rng,
        )
        return tree.fit(X, y)

    def _grow_batch(
        self, X: np.ndarray, y: np.ndarray, n_trees: int
    ) -> tuple[list[RegressionTree], PackedTrees]:
        """Grow ``n_trees`` trees in one level-synchronous builder pass."""
        built = build_extra_trees(
            X,
            y,
            n_trees,
            max_features=self.max_features,
            min_samples_split=self.min_samples_split,
            max_depth=self.max_depth,
            rng=self._rng,
        )
        trees = [
            RegressionTree.from_arrays(
                *built.tree_arrays(index),
                max_features=self.max_features,
                min_samples_split=self.min_samples_split,
                max_depth=self.max_depth,
            )
            for index in range(n_trees)
        ]
        return trees, built.packed

    def fit(self, X: np.ndarray, y: np.ndarray) -> ExtraTreesRegressor:
        """Fit the ensemble on the full ``(X, y)`` sample.

        On a fresh ensemble (or with ``refit_fraction == 1.0``) every
        tree is regrown.  On an already-fitted ensemble with
        ``refit_fraction < 1.0``, only a seeded subset of trees is
        regrown on the new data (warm start); the remaining trees keep
        the structure they learned from the previous fit.
        """
        X, y = coerce_training_data(X, y)
        vectorized = self.tree_builder == "vectorized"
        fitted = bool(self._trees) or self._built is not None
        if fitted and self.refit_fraction < 1.0:
            self._materialize_trees()
            n_refit = max(1, int(np.ceil(self.refit_fraction * self.n_estimators)))
            chosen = np.sort(
                self._rng.choice(self.n_estimators, size=n_refit, replace=False)
            )
            if vectorized:
                regrown, _ = self._grow_batch(X, y, n_refit)
                for slot, tree in zip(chosen, regrown):
                    self._trees[int(slot)] = tree
            else:
                for index in chosen:
                    self._trees[int(index)] = self._grow_tree(X, y)
            self._packed = pack_trees(self._trees)
        elif vectorized:
            # The builder emits the packed layout directly — no
            # per-tree repacking on the full-refit hot path.
            self._trees, self._packed = self._grow_batch(X, y, self.n_estimators)
            self._built = None
        else:
            self._trees = [self._grow_tree(X, y) for _ in range(self.n_estimators)]
            self._packed = pack_trees(self._trees)
            self._built = None
        return self

    def _tree_predictions(self, X: np.ndarray) -> np.ndarray:
        if not self._trees and self._built is None:
            raise RuntimeError("ensemble must be fitted before predict")
        if self._packed is not None:
            return predict_packed(self._packed, X)
        return np.stack([tree.predict(X) for tree in self._trees])

    def predict(
        self, X: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Ensemble mean (and optionally across-tree std) for rows of ``X``."""
        predictions = self._tree_predictions(X)
        mean = predictions.mean(axis=0)
        if not return_std:
            return mean
        return mean, predictions.std(axis=0)


def fit_ensembles_stacked(
    models: list[ExtraTreesRegressor],
    datasets: list[tuple[np.ndarray, np.ndarray]],
) -> list[ExtraTreesRegressor]:
    """Fit many Extra-Trees ensembles in one stacked builder pass.

    Each ``models[i]`` is fitted on ``datasets[i]`` exactly as its own
    ``fit(X, y)`` would — same draws from the model's generator, same
    split decisions, bit-identical trees
    (:func:`repro.ml.tree_builder.build_extra_trees_stacked`) — but all
    level-synchronous growth happens in one global frontier, amortising
    the per-level numpy dispatch that dominates small-sample fits across
    every ensemble.  The fitted forests are adopted lazily
    (:meth:`ExtraTreesRegressor.adopt_built`): per-tree shells are only
    materialised if a caller reads ``model.trees``.

    Only full-refit vectorized ensembles qualify — a warm-started model
    (already fitted with ``refit_fraction < 1.0``) or a classic-builder
    model consumes randomness in a different pattern.

    Raises:
        ValueError: on length mismatch, a non-vectorized or pending
            warm-refit model, or datasets the stacked builder cannot
            share a frontier over (mismatched feature dimension or
            growth limits).
    """
    if len(models) != len(datasets):
        raise ValueError(
            f"got {len(models)} models but {len(datasets)} datasets"
        )
    tasks = []
    for model, (X, y) in zip(models, datasets):
        if model.tree_builder != "vectorized":
            raise ValueError(
                "stacked fitting requires the vectorized tree builder"
            )
        if (model._trees or model._built is not None) and model.refit_fraction < 1.0:
            raise ValueError(
                "stacked fitting cannot warm-refit an already-fitted ensemble"
            )
        X, y = coerce_training_data(X, y)
        tasks.append(
            StackedGrowTask(
                X=X,
                y=y,
                n_trees=model.n_estimators,
                rng=model._rng,
                max_features=model.max_features,
                min_samples_split=model.min_samples_split,
                max_depth=model.max_depth,
            )
        )
    for model, built in zip(models, build_extra_trees_stacked(tasks)):
        model.adopt_built(built)
    return models
