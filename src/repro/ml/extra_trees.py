"""Extra-Trees regression ensemble.

The surrogate model of Augmented BO (paper Section IV-B): "a tree-based
ensemble method — Extra-Trees algorithm".  Tree ensembles capture the
sharp, interaction-heavy performance behaviour of cloud workloads without
requiring a kernel choice, which is precisely why the paper picks them
over the GP.

Beyond the mean prediction, the ensemble exposes the across-tree standard
deviation as an uncertainty proxy — useful for UCB-style acquisition over
tree surrogates and for the stopping analysis.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import RegressionTree


class ExtraTreesRegressor:
    """An ensemble of extremely-randomised regression trees.

    Classic Extra-Trees trains every tree on the full sample (no
    bootstrap); diversity comes from randomised split thresholds.

    Args:
        n_estimators: number of trees.
        max_features: features considered per split (``None`` = all).
        min_samples_split: node size below which growth stops.
        max_depth: per-tree depth cap.
        seed: seed for the ensemble's randomisation.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_features: int | None = None,
        min_samples_split: int = 2,
        max_depth: int | None = None,
        seed: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        self.n_estimators = n_estimators
        self.max_features = max_features
        self.min_samples_split = min_samples_split
        self.max_depth = max_depth
        self._rng = np.random.default_rng(seed)
        self._trees: list[RegressionTree] = []

    @property
    def trees(self) -> tuple[RegressionTree, ...]:
        """The fitted trees (empty before :meth:`fit`)."""
        return tuple(self._trees)

    def fit(self, X: np.ndarray, y: np.ndarray) -> ExtraTreesRegressor:
        """Fit every tree of the ensemble on the full ``(X, y)`` sample."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        self._trees = []
        for _ in range(self.n_estimators):
            tree = RegressionTree(
                max_features=self.max_features,
                min_samples_split=self.min_samples_split,
                max_depth=self.max_depth,
                seed=self._rng,
            )
            self._trees.append(tree.fit(X, y))
        return self

    def _tree_predictions(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("ensemble must be fitted before predict")
        return np.stack([tree.predict(X) for tree in self._trees])

    def predict(
        self, X: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Ensemble mean (and optionally across-tree std) for rows of ``X``."""
        predictions = self._tree_predictions(X)
        mean = predictions.mean(axis=0)
        if not return_std:
            return mean
        return mean, predictions.std(axis=0)
