"""Feature and target scaling.

Both surrogate families need their inputs on comparable scales: the GP's
single lengthscale assumes isotropic inputs, and the paper's encoded
instance space mixes axes of very different magnitude (CPU type 1-6 vs
I/O-wait percentages 0-100 once low-level metrics are appended).
"""

from __future__ import annotations

import numpy as np


def _as_2d(X: np.ndarray) -> np.ndarray:
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {X.shape}")
    return X


class StandardScaler:
    """Zero-mean, unit-variance scaling per feature.

    Constant features (zero variance) are centred but left unscaled, so
    transforming never divides by zero.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> StandardScaler:
        """Learn per-feature mean and standard deviation from ``X``."""
        X = _as_2d(X)
        if X.shape[0] == 0:
            raise ValueError("cannot fit a scaler on an empty array")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Scale ``X`` with the fitted statistics."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler must be fitted before transform")
        return (_as_2d(X) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return the scaled values."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler must be fitted before inverse_transform")
        return _as_2d(X) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale each feature to [0, 1] over the fitted range.

    Constant features map to 0.  Out-of-range inputs at transform time map
    outside [0, 1]; callers who need hard bounds should clip.
    """

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> MinMaxScaler:
        """Learn per-feature minimum and range from ``X``."""
        X = _as_2d(X)
        if X.shape[0] == 0:
            raise ValueError("cannot fit a scaler on an empty array")
        self.min_ = X.min(axis=0)
        span = X.max(axis=0) - self.min_
        self.range_ = np.where(span > 0, span, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Scale ``X`` with the fitted range."""
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("scaler must be fitted before transform")
        return (_as_2d(X) - self.min_) / self.range_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return the scaled values."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("scaler must be fitted before inverse_transform")
        return _as_2d(X) * self.range_ + self.min_
