"""Random-forest regression (bagged CART-style trees).

The paper's related work leans on CART-based performance models (storage
modelling with CART [30], regression trees for virtualised storage [32]),
and its surrogate choice — Extra-Trees — is one member of the randomised
tree-ensemble family.  This module provides the other classic member:
bootstrap-aggregated trees with best-split (not random-split) selection,
so the surrogate ablation can compare the two ensembles.

The splitter evaluates midpoints between consecutive sorted feature
values and picks the SSE-minimising one (classic CART regression), with
`max_features` feature subsampling per node as in Breiman's forests.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import adopt_nodes, coerce_training_data
from repro.ml.tree_builder import TREE_BUILDERS, build_cart_forest


class CARTRegressionTree:
    """A best-split (CART) regression tree.

    Args:
        max_features: features considered per split; ``None`` means all.
        min_samples_split: nodes smaller than this become leaves.
        max_depth: depth cap; ``None`` means unlimited.
        seed: seed (or Generator) for feature subsampling.
    """

    def __init__(
        self,
        max_features: int | None = None,
        min_samples_split: int = 2,
        max_depth: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2")
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_features = max_features
        self.min_samples_split = min_samples_split
        self.max_depth = max_depth
        self._rng = np.random.default_rng(seed)
        self._feature: np.ndarray | None = None
        self._threshold: np.ndarray | None = None
        self._left: np.ndarray | None = None
        self._right: np.ndarray | None = None
        self._value: np.ndarray | None = None

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree (0 before fitting)."""
        return 0 if self._feature is None else int(self._feature.size)

    def fit(self, X: np.ndarray, y: np.ndarray) -> CARTRegressionTree:
        """Grow the tree on observations ``(X, y)``."""
        X, y = coerce_training_data(X, y)

        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []

        def grow(indices: np.ndarray, depth: int) -> int:
            node = len(features)
            node_y = y[indices]
            features.append(-1)
            thresholds.append(0.0)
            lefts.append(-1)
            rights.append(-1)
            values.append(float(node_y.mean()))

            if (
                indices.size < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
                or node_y.min() == node_y.max()
            ):
                return node

            split = self._best_split(X, y, indices)
            if split is None:
                return node
            feature, threshold, left_mask = split
            left_child = grow(indices[left_mask], depth + 1)
            right_child = grow(indices[~left_mask], depth + 1)
            features[node] = feature
            thresholds[node] = threshold
            lefts[node] = left_child
            rights[node] = right_child
            return node

        grow(np.arange(X.shape[0]), 0)
        self._feature = np.array(features, dtype=np.int64)
        self._threshold = np.array(thresholds, dtype=float)
        self._left = np.array(lefts, dtype=np.int64)
        self._right = np.array(rights, dtype=np.int64)
        self._value = np.array(values, dtype=float)
        return self

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, indices: np.ndarray
    ) -> tuple[int, float, np.ndarray] | None:
        """Exact SSE-minimising split over a feature subsample.

        Uses the running-sums identity over each sorted feature column:
        for a prefix of size k with sum s, the two-sided SSE is
        ``total_sq - s^2/k - (total - s)^2/(n - k)`` (dropping constants).
        """
        n_features = X.shape[1]
        k = self.max_features if self.max_features is not None else n_features
        k = min(max(k, 1), n_features)
        candidates = self._rng.choice(n_features, size=k, replace=False)

        node_y = y[indices]
        n = indices.size
        total = node_y.sum()

        best_feature, best_threshold, best_score = -1, 0.0, np.inf
        for feature in candidates:
            column = X[indices, feature]
            order = np.argsort(column, kind="stable")
            sorted_col = column[order]
            sorted_y = node_y[order]
            prefix = np.cumsum(sorted_y)[:-1]
            sizes = np.arange(1, n)
            # Valid cut positions are where the feature value changes.
            valid = sorted_col[:-1] < sorted_col[1:]
            if not valid.any():
                continue
            with np.errstate(divide="ignore", invalid="ignore"):
                score = -(prefix**2) / sizes - (total - prefix) ** 2 / (n - sizes)
            score = np.where(valid, score, np.inf)
            pos = int(np.argmin(score))
            if score[pos] < best_score:
                best_score = float(score[pos])
                best_feature = int(feature)
                best_threshold = float((sorted_col[pos] + sorted_col[pos + 1]) / 2.0)
        if best_feature < 0:
            return None
        return best_feature, best_threshold, X[indices, best_feature] <= best_threshold

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted values for each row of ``X`` (vectorised traversal)."""
        if self._feature is None:
            raise RuntimeError("tree must be fitted before predict")
        assert self._threshold is not None and self._value is not None
        assert self._left is not None and self._right is not None
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        node = np.zeros(X.shape[0], dtype=np.int64)
        rows = np.arange(X.shape[0])
        active = self._feature[node] >= 0
        while active.any():
            current = node[active]
            feats = self._feature[current]
            go_left = X[rows[active], feats] <= self._threshold[current]
            node[active] = np.where(go_left, self._left[current], self._right[current])
            active = self._feature[node] >= 0
        return self._value[node]


class RandomForestRegressor:
    """Bootstrap-aggregated CART trees with per-node feature subsampling.

    Args:
        n_estimators: number of trees.
        max_features: features per split; ``None`` = all, ``"third"`` =
            Breiman's regression default (n_features // 3, at least 1).
        min_samples_split: node size below which growth stops.
        max_depth: per-tree depth cap.
        seed: ensemble randomisation seed.
        tree_builder: ``"vectorized"`` (default) grows the whole forest
            level-synchronously (:func:`repro.ml.tree_builder.build_cart_forest`)
            with all bootstrap resamples drawn up front; ``"classic"``
            keeps the per-node recursive grower.  Statistically
            equivalent, not bit-identical (random draws are consumed in
            a different order).
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_features: int | str | None = "third",
        min_samples_split: int = 2,
        max_depth: int | None = None,
        seed: int | None = None,
        tree_builder: str = "vectorized",
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if tree_builder not in TREE_BUILDERS:
            raise ValueError(
                f"unknown tree_builder {tree_builder!r}, expected one of {TREE_BUILDERS}"
            )
        self.n_estimators = n_estimators
        self.max_features = max_features
        self.min_samples_split = min_samples_split
        self.max_depth = max_depth
        self.tree_builder = tree_builder
        self._rng = np.random.default_rng(seed)
        self._trees: list[CARTRegressionTree] = []

    @property
    def trees(self) -> tuple[CARTRegressionTree, ...]:
        """The fitted trees (empty before :meth:`fit`)."""
        return tuple(self._trees)

    def _resolve_max_features(self, n_features: int) -> int | None:
        if self.max_features == "third":
            return max(1, n_features // 3)
        if isinstance(self.max_features, str):
            raise ValueError(f"unknown max_features spec {self.max_features!r}")
        return self.max_features

    def fit(self, X: np.ndarray, y: np.ndarray) -> RandomForestRegressor:
        """Fit every tree on a bootstrap resample of ``(X, y)``."""
        X, y = coerce_training_data(X, y)
        max_features = self._resolve_max_features(X.shape[1])

        self._trees = []
        n = X.shape[0]
        if self.tree_builder == "vectorized":
            samples = self._rng.integers(n, size=(self.n_estimators, n))
            built = build_cart_forest(
                X,
                y,
                self.n_estimators,
                max_features=max_features,
                min_samples_split=self.min_samples_split,
                max_depth=self.max_depth,
                rng=self._rng,
                sample_indices=samples,
            )
            for index in range(self.n_estimators):
                tree = CARTRegressionTree(
                    max_features=max_features,
                    min_samples_split=self.min_samples_split,
                    max_depth=self.max_depth,
                )
                adopt_nodes(tree, *built.tree_arrays(index))
                self._trees.append(tree)
            return self
        for _ in range(self.n_estimators):
            sample = self._rng.integers(n, size=n)
            tree = CARTRegressionTree(
                max_features=max_features,
                min_samples_split=self.min_samples_split,
                max_depth=self.max_depth,
                seed=self._rng,
            )
            self._trees.append(tree.fit(X[sample], y[sample]))
        return self

    def predict(
        self, X: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Forest mean (and optionally across-tree std) for rows of ``X``."""
        if not self._trees:
            raise RuntimeError("forest must be fitted before predict")
        predictions = np.stack([tree.predict(X) for tree in self._trees])
        mean = predictions.mean(axis=0)
        if not return_std:
            return mean
        return mean, predictions.std(axis=0)
