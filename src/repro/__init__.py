"""Arrow: Low-Level Augmented Bayesian Optimization for Finding the Best
Cloud VM — a full reproduction of Hsu, Nair, Freeh & Menzies (ICDCS 2018).

Quickstart::

    from repro import AugmentedBO, Objective, default_trace

    trace = default_trace()                      # the 107x18 study dataset
    env = trace.environment("als/Spark 2.1/medium")
    result = AugmentedBO(env, objective=Objective.COST, seed=42).run()
    print(result.best_vm_name, result.search_cost)

Package layout:

* :mod:`repro.cloud` — the VM instance space (the paper's 18 types plus
  registered large catalogs), prices, encoding,
* :mod:`repro.workloads` — the 107 workloads and their latent profiles,
* :mod:`repro.simulator` — the performance model and low-level metrics,
* :mod:`repro.trace` — the recorded measurement matrix and replay,
* :mod:`repro.ml` — from-scratch GP, Extra-Trees, kernels, samplers,
* :mod:`repro.core` — Naive/Augmented/Hybrid BO and baselines,
* :mod:`repro.faults` — failure models, retry policies, VM quarantine,
* :mod:`repro.analysis` — the paper's experiment harness and metrics.
"""

from repro.cloud import InstanceEncoder, VMType, default_catalog, default_price_list
from repro.core import (
    AugmentedBO,
    EIThreshold,
    ExhaustiveSearch,
    HistoryAugmentedBO,
    HistoryModel,
    HybridBO,
    MaxMeasurements,
    NaiveBO,
    Objective,
    PredictionDeltaThreshold,
    RandomSearch,
    SearchResult,
    SingleVMRule,
    build_history_pairs,
)
from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    parse_fault_plan,
)
from repro.simulator import SimulatedCloud
from repro.trace import BenchmarkTrace, default_trace, generate_trace, load_trace, save_trace
from repro.workloads import Framework, InputSize, Workload, default_registry

__version__ = "1.0.0"

__all__ = [
    "VMType",
    "InstanceEncoder",
    "default_catalog",
    "default_price_list",
    "Workload",
    "Framework",
    "InputSize",
    "default_registry",
    "SimulatedCloud",
    "BenchmarkTrace",
    "default_trace",
    "generate_trace",
    "load_trace",
    "save_trace",
    "Objective",
    "SearchResult",
    "NaiveBO",
    "AugmentedBO",
    "HybridBO",
    "HistoryAugmentedBO",
    "HistoryModel",
    "build_history_pairs",
    "RandomSearch",
    "ExhaustiveSearch",
    "SingleVMRule",
    "MaxMeasurements",
    "EIThreshold",
    "PredictionDeltaThreshold",
    "FaultInjector",
    "FaultPlan",
    "parse_fault_plan",
    "RetryPolicy",
    "CircuitBreaker",
    "__version__",
]
