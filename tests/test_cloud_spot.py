"""Unit tests for the seeded spot market (repro.cloud.spot)."""

import math

import pytest

from repro.cloud.catalog import get_catalog
from repro.cloud.spot import (
    PRICING_MODES,
    PriceQuote,
    SpotMarket,
    SpotPolicy,
    spot_twin,
)


@pytest.fixture(scope="module")
def catalog():
    return get_catalog("aws-2017")


class TestSpotMarket:
    def test_market_is_a_pure_function_of_its_seed(self, catalog):
        a, b = SpotMarket(seed=7), SpotMarket(seed=7)
        for vm in catalog.vms:
            assert a.discount(vm.name) == b.discount(vm.name)
            assert a.hazard(vm.name) == b.hazard(vm.name)
            assert a.quote(vm, 1.0, tick=3) == b.quote(vm, 1.0, tick=3)

    def test_different_seeds_quote_different_markets(self, catalog):
        a, b = SpotMarket(seed=7), SpotMarket(seed=8)
        discounts_a = [a.discount(vm.name) for vm in catalog.vms]
        discounts_b = [b.discount(vm.name) for vm in catalog.vms]
        assert discounts_a != discounts_b

    def test_discounts_stay_in_configured_range(self, catalog):
        market = SpotMarket(seed=3, min_discount=0.2, max_discount=0.6)
        for vm in catalog.vms:
            assert 0.2 <= market.discount(vm.name) <= 0.6

    def test_discount_keyed_by_name_not_catalog_position(self, catalog):
        # Growing the catalog must never move an existing VM's market.
        market = SpotMarket(seed=5)
        alone = market.discount(catalog.vms[0].name)
        for vm in catalog.vms:
            market.discount(vm.name)  # interleave other queries
        assert market.discount(catalog.vms[0].name) == alone

    def test_hazard_rises_with_discount(self, catalog):
        market = SpotMarket(seed=11, hazard_slope=0.5)
        by_discount = sorted(
            (market.discount(vm.name), market.hazard(vm.name))
            for vm in catalog.vms
        )
        hazards = [h for _, h in by_discount]
        assert hazards == sorted(hazards)
        assert hazards[-1] > hazards[0]

    def test_hazard_capped_below_one(self):
        market = SpotMarket(seed=0, base_hazard=0.9, hazard_slope=10.0)
        assert market.hazard("c3.large") == 0.95

    def test_quote_terms(self, catalog):
        market = SpotMarket(seed=2)
        vm = catalog.vms[0]
        quote = market.quote(vm, 2.0)
        assert isinstance(quote, PriceQuote)
        assert quote.pricing == "spot"
        assert quote.vm_name == vm.name
        assert quote.on_demand_price_per_hour == 2.0
        assert quote.price_per_hour == pytest.approx(
            2.0 * (1.0 - quote.discount), abs=1e-6
        )
        assert quote.price_ratio == pytest.approx(1.0 - quote.discount)
        assert 0.0 < quote.price_per_hour < 2.0

    def test_tick_zero_is_stable_later_ticks_wobble(self, catalog):
        market = SpotMarket(seed=2, volatility=0.1)
        vm = catalog.vms[0]
        base = market.quote(vm, 2.0, tick=0)
        assert market.quote(vm, 2.0, tick=0) == base
        wobbled = {market.quote(vm, 2.0, tick=t).price_per_hour for t in (1, 2, 3)}
        assert len(wobbled) == 3
        for price in wobbled:
            assert abs(price - base.price_per_hour) <= 0.1 * base.price_per_hour + 1e-6

    def test_validation(self):
        with pytest.raises(ValueError, match="discounts"):
            SpotMarket(min_discount=0.9, max_discount=0.5)
        with pytest.raises(ValueError, match="base_hazard"):
            SpotMarket(base_hazard=1.0)
        with pytest.raises(ValueError, match="hazard_slope"):
            SpotMarket(hazard_slope=-0.1)
        with pytest.raises(ValueError, match="volatility"):
            SpotMarket(volatility=1.0)


class TestSpotTwin:
    def test_twin_preserves_instance_space(self, catalog):
        twin = spot_twin(catalog, SpotMarket(seed=4))
        assert twin.name == catalog.name
        assert twin.vms == catalog.vms
        assert "spot twin" in twin.description

    def test_twin_prices_are_discounted(self, catalog):
        market = SpotMarket(seed=4)
        twin = spot_twin(catalog, market)
        for vm in catalog.vms:
            on_demand = catalog.prices.prices[vm.name]
            spot = twin.prices.prices[vm.name]
            assert spot < on_demand
            assert spot == pytest.approx(
                on_demand * (1.0 - market.discount(vm.name)), abs=1e-6
            )


class TestSpotPolicy:
    def test_pricing_modes(self):
        assert PRICING_MODES == ("on-demand", "spot")

    def test_expected_cost_below_on_demand_with_full_resume(self):
        policy = SpotPolicy(market=SpotMarket(seed=1))
        # With perfect checkpointing, every charged unit buys progress,
        # so completing on spot can never cost more than on-demand.
        for name in ("c3.large", "m3.xlarge", "r4.2xlarge"):
            assert 0.0 < policy.expected_attempt_cost(name) < 1.0

    def test_expected_cost_rises_as_resume_credit_falls(self):
        market = SpotMarket(seed=1, base_hazard=0.3)
        full = SpotPolicy(market=market, resume_credit=1.0)
        none = SpotPolicy(market=market, resume_credit=0.0)
        for name in ("c3.large", "m3.xlarge"):
            assert none.expected_attempt_cost(name) > full.expected_attempt_cost(name)

    def test_expected_cost_closed_form(self):
        market = SpotMarket(seed=1)
        policy = SpotPolicy(market=market, resume_credit=0.5)
        name = "c3.large"
        h, p, r = market.hazard(name), 1.0 - market.discount(name), 0.5
        expected = p * (1.0 - h / 2.0) / (1.0 - h * (1.0 - r / 2.0))
        assert policy.expected_attempt_cost(name) == pytest.approx(expected)
        assert math.isfinite(expected)

    def test_zero_hazard_expected_cost_is_the_price_ratio(self):
        market = SpotMarket(seed=1, base_hazard=0.0, hazard_slope=0.0)
        policy = SpotPolicy(market=market)
        assert policy.expected_attempt_cost("c3.large") == pytest.approx(
            1.0 - market.discount("c3.large")
        )

    def test_validation(self):
        market = SpotMarket(seed=0)
        with pytest.raises(ValueError, match="fallback_after"):
            SpotPolicy(market=market, fallback_after=0)
        with pytest.raises(ValueError, match="resume_credit"):
            SpotPolicy(market=market, resume_credit=1.5)
        with pytest.raises(ValueError, match="revocation_quarantine"):
            SpotPolicy(market=market, revocation_quarantine=0)
