"""Parallel experiment engine: determinism, caching, and degradation."""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.analysis.runner import ExperimentRunner, RunGrid, run_seed
from repro.core.baselines import RandomSearch
from repro.core.objectives import Objective
from repro.faults import FaultInjector, parse_fault_plan, RetryPolicy
from repro.parallel import CellEvent, GridCheckpoint, plan_workers, run_cells
from repro.parallel.engine import POOL_MIN_CELLS, _fork_available

WORKLOADS = (
    "kmeans/Spark 2.1/small",
    "lr/Spark 1.5/medium",
    "pagerank/Hadoop 2.7/small",
)


def random_factory(environment, objective, seed):
    return RandomSearch(
        environment, objective=objective, seed=seed, max_measurements=6
    )


def faulty_factory(environment, objective, seed):
    plan = parse_fault_plan("transient:rate=0.3", seed=seed)
    return RandomSearch(
        FaultInjector(environment, plan),
        objective=objective,
        seed=seed,
        max_measurements=8,
        retry_policy=RetryPolicy(max_attempts=3),
    )


def _grid(key, factory, repeats=2):
    return RunGrid(
        key=key,
        factory=factory,
        objective=Objective.TIME,
        workload_ids=WORKLOADS,
        repeats=repeats,
    )


def _run(trace, tmp_path, grid, workers, on_event=None):
    runner = ExperimentRunner(trace, cache_dir=tmp_path / f"w{workers}")
    return runner.run(grid, workers=workers, on_event=on_event)


class TestDeterminism:
    def test_workers_do_not_change_results(self, trace, tmp_path):
        serial = _run(trace, tmp_path, _grid("par-det", random_factory), workers=1)
        parallel = _run(trace, tmp_path, _grid("par-det", random_factory), workers=4)
        assert serial == parallel

    def test_results_include_event_streams(self, trace, tmp_path):
        results = _run(trace, tmp_path, _grid("par-ev", random_factory), workers=4)
        for runs in results.values():
            for result in runs:
                assert result.events
                kinds = {event.kind for event in result.events}
                assert "measurement_finished" in kinds

    def test_identical_under_fault_plan(self, trace, tmp_path):
        grid = _grid("par-faulty", faulty_factory)
        serial = _run(trace, tmp_path, grid, workers=1)
        parallel = _run(trace, tmp_path, grid, workers=4)
        assert serial == parallel
        # The fault plan actually fired somewhere, so the equality above
        # covers failure events too.
        assert any(
            result.failure_events
            for runs in serial.values()
            for result in runs
        )

    def test_cache_files_byte_identical(self, trace, tmp_path):
        grid = _grid("par-bytes", random_factory)
        _run(trace, tmp_path, grid, workers=1)
        _run(trace, tmp_path, grid, workers=4)
        serial_bytes = (tmp_path / "w1" / "par-bytes__time.json").read_bytes()
        parallel_bytes = (tmp_path / "w4" / "par-bytes__time.json").read_bytes()
        assert serial_bytes == parallel_bytes

    def test_cache_hits_skip_the_engine(self, trace, tmp_path):
        grid = _grid("par-hit", random_factory)
        runner = ExperimentRunner(trace, cache_dir=tmp_path)
        first = runner.run(grid, workers=4)
        events: list[CellEvent] = []
        second = runner.run(grid, workers=4, on_event=events.append)
        assert first == second
        assert {event.kind for event in events} == {"cell_cached"}


class TestEngine:
    def test_yields_in_submission_order(self, trace):
        cells = [(workload, repeat) for workload in WORKLOADS for repeat in (0, 1)]
        yielded = [
            cell
            for cell, _ in run_cells(
                trace=trace,
                factory=random_factory,
                objective=Objective.TIME,
                cells=cells,
                workers=4,
            )
        ]
        assert yielded == cells

    def test_event_stream_covers_every_cell(self, trace):
        cells = [(workload, 0) for workload in WORKLOADS]
        events: list[CellEvent] = []
        list(
            run_cells(
                trace=trace,
                factory=random_factory,
                objective=Objective.TIME,
                cells=cells,
                workers=2,
                on_event=events.append,
            )
        )
        scheduled = [e for e in events if e.kind == "cell_scheduled"]
        finished = [e for e in events if e.kind == "cell_finished"]
        assert {(e.workload_id, e.repeat) for e in scheduled} == set(cells)
        assert {(e.workload_id, e.repeat) for e in finished} == set(cells)

    def test_rejects_bad_worker_count(self, trace):
        with pytest.raises(ValueError, match="workers"):
            list(
                run_cells(
                    trace=trace,
                    factory=random_factory,
                    objective=Objective.TIME,
                    cells=[(WORKLOADS[0], 0)],
                    workers=0,
                )
            )

    def test_custom_seed_fn(self, trace):
        cells = [(WORKLOADS[0], repeat) for repeat in range(3)]
        seeds: list[int] = []

        def recording_factory(environment, objective, seed):
            seeds.append(seed)
            return random_factory(environment, objective, seed)

        list(
            run_cells(
                trace=trace,
                factory=recording_factory,
                objective=Objective.TIME,
                cells=cells,
                workers=1,
                seed_fn=lambda _workload, repeat: repeat,
            )
        )
        assert seeds == [0, 1, 2]


@pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
class TestDegradation:
    def test_app_error_in_worker_is_retried_serially(self, trace):
        """A cell whose first (worker) attempt raises succeeds on the
        parent's serial retry — quarantine the cell, not the run."""
        main_pid = os.getpid()

        def flaky_factory(environment, objective, seed):
            if os.getpid() != main_pid:
                raise RuntimeError("worker-side failure")
            return random_factory(environment, objective, seed)

        cells = [(workload, 0) for workload in WORKLOADS]
        events: list[CellEvent] = []
        results = list(
            run_cells(
                trace=trace,
                factory=flaky_factory,
                objective=Objective.TIME,
                cells=cells,
                workers=2,
                on_event=events.append,
                auto_clamp=False,
            )
        )
        assert [cell for cell, _ in results] == cells
        failed = [e for e in events if e.kind == "cell_failed"]
        assert failed and all("worker-side failure" in e.detail for e in failed)

    def test_pool_death_degrades_to_serial(self, trace):
        """Killing the worker process mid-cell breaks the pool; the
        engine recomputes the remaining cells serially in the parent."""
        main_pid = os.getpid()

        def lethal_factory(environment, objective, seed):
            if os.getpid() != main_pid:
                os._exit(1)
            return random_factory(environment, objective, seed)

        cells = [(workload, repeat) for workload in WORKLOADS for repeat in (0, 1)]
        events: list[CellEvent] = []
        results = list(
            run_cells(
                trace=trace,
                factory=lethal_factory,
                objective=Objective.TIME,
                cells=cells,
                workers=2,
                on_event=events.append,
                auto_clamp=False,
            )
        )
        assert [cell for cell, _ in results] == cells
        assert any(event.kind == "pool_degraded" for event in events)

    def test_deterministic_failure_propagates(self, trace):
        """A cell that fails in the worker *and* on the serial retry
        raises, exactly as the serial path would."""

        def doomed_factory(environment, objective, seed):
            raise RuntimeError("deterministic failure")

        with pytest.raises(RuntimeError, match="deterministic failure"):
            list(
                run_cells(
                    trace=trace,
                    factory=doomed_factory,
                    objective=Objective.TIME,
                    cells=[(workload, 0) for workload in WORKLOADS],
                    workers=2,
                    auto_clamp=False,
                )
            )


class TestRunnerWorkers:
    def test_constructor_default(self, trace, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            ExperimentRunner(trace, workers=0)
        runner = ExperimentRunner(trace, cache_dir=tmp_path, workers=2)
        grid = _grid("par-ctor", random_factory, repeats=1)
        results = runner.run(grid)  # uses the constructor default
        assert set(results) == set(WORKLOADS)


class TestPlanWorkers:
    """Auto-clamp interacting with the POOL_MIN_CELLS boundary."""

    @pytest.mark.parametrize(
        "n_cells, expected",
        [
            (POOL_MIN_CELLS - 1, 1),  # 3 cells: pool never pays off
            (POOL_MIN_CELLS, 4),  # 4 cells: pool, capped by the work
            (POOL_MIN_CELLS + 1, 5),  # 5 cells: pool, capped by the work
        ],
    )
    def test_boundary_grids(self, n_cells, expected):
        assert plan_workers(8, n_cells, cpu_count=8) == expected

    def test_clamps_to_cpu_count(self):
        assert plan_workers(8, 6, cpu_count=2) == 2

    def test_clamps_to_cells_not_request(self):
        assert plan_workers(16, 6, cpu_count=32) == 6

    def test_single_validation_site_rejects_zero(self):
        with pytest.raises(ValueError, match="workers"):
            plan_workers(0, 10)

    @pytest.mark.parametrize("n_cells", [3, 4, 5])
    def test_pool_planned_event_reports_the_decision(self, trace, n_cells):
        cells = [(WORKLOADS[index % len(WORKLOADS)], index) for index in range(n_cells)]
        events: list[CellEvent] = []
        list(
            run_cells(
                trace=trace,
                factory=random_factory,
                objective=Objective.TIME,
                cells=cells,
                workers=4,
                on_event=events.append,
            )
        )
        planned = [e for e in events if e.kind == "pool_planned"]
        assert len(planned) == 1
        assert planned[0].workload_id is None  # grid-scoped, not cell-scoped
        expected = plan_workers(4, n_cells)
        assert f"effective={expected}" in planned[0].detail


@pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
class TestSelfHealing:
    """Real-pool supervision: restarts, poison pinning, deadlines, chaos."""

    def test_worker_death_restarts_pool_before_degrading(self, trace):
        """One poison cell costs one restart and a pin — the rest of the
        grid stays on the pool and ``pool_degraded`` never fires."""
        main_pid = os.getpid()
        target = run_seed(WORKLOADS[0], 0)

        def one_lethal_factory(environment, objective, seed):
            if seed == target and os.getpid() != main_pid:
                os._exit(1)
            return random_factory(environment, objective, seed)

        cells = [(workload, repeat) for workload in WORKLOADS for repeat in (0, 1)]
        events: list[CellEvent] = []
        results = list(
            run_cells(
                trace=trace,
                factory=one_lethal_factory,
                objective=Objective.TIME,
                cells=cells,
                workers=2,
                on_event=events.append,
                auto_clamp=False,
            )
        )
        assert [cell for cell, _ in results] == cells
        kinds = [event.kind for event in events]
        assert kinds.count("pool_restarted") == 1
        assert kinds.count("cell_pinned") == 1
        assert "pool_degraded" not in kinds

    def test_straggler_cancelled_without_stalling_the_grid(self, trace):
        main_pid = os.getpid()
        target = run_seed(WORKLOADS[0], 0)

        def straggler_factory(environment, objective, seed):
            if seed == target and os.getpid() != main_pid:
                time.sleep(60.0)
            return random_factory(environment, objective, seed)

        cells = [(workload, repeat) for workload in WORKLOADS for repeat in (0, 1)]
        events: list[CellEvent] = []
        start = time.monotonic()
        results = list(
            run_cells(
                trace=trace,
                factory=straggler_factory,
                objective=Objective.TIME,
                cells=cells,
                workers=2,
                on_event=events.append,
                auto_clamp=False,
                cell_timeout=1.0,
            )
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30.0  # nowhere near the 60 s straggler sleep
        assert [cell for cell, _ in results] == cells
        timeouts = [e for e in events if e.kind == "cell_timeout"]
        assert [(e.workload_id, e.repeat) for e in timeouts] == [(WORKLOADS[0], 0)]

    def test_chaos_cache_byte_identical_to_clean_serial_run(
        self, trace, tmp_path, monkeypatch
    ):
        """Killing a worker mid-cell must not leave a trace in the cache:
        the healed/pinned run writes the same bytes as a clean serial one."""
        # The runner path auto-clamps to the machine; pretend we have
        # cores so a single-CPU CI box still forms a pool.
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        main_pid = os.getpid()
        target = run_seed(WORKLOADS[1], 1)

        def chaos_factory(environment, objective, seed):
            if seed == target and os.getpid() != main_pid:
                os._exit(1)
            return random_factory(environment, objective, seed)

        grid_clean = _grid("par-chaos", random_factory)
        grid_chaos = _grid("par-chaos", chaos_factory)
        clean = ExperimentRunner(trace, cache_dir=tmp_path / "clean")
        chaos = ExperimentRunner(trace, cache_dir=tmp_path / "chaos")
        assert clean.run(grid_clean, workers=1) == chaos.run(grid_chaos, workers=2)
        clean_bytes = (tmp_path / "clean" / "par-chaos__time.json").read_bytes()
        chaos_bytes = (tmp_path / "chaos" / "par-chaos__time.json").read_bytes()
        assert clean_bytes == chaos_bytes

    def test_cell_retried_mirror_round_trips_through_cache(
        self, trace, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        main_pid = os.getpid()

        def flaky_factory(environment, objective, seed):
            if os.getpid() != main_pid:
                raise RuntimeError("worker-side failure")
            return random_factory(environment, objective, seed)

        runner = ExperimentRunner(trace, cache_dir=tmp_path)
        grid = _grid("par-mirror", flaky_factory)
        first = runner.run(grid, workers=2, cell_retries=1)
        result = first[WORKLOADS[0]][0]
        mirror = [e for e in result.events if e.kind == "cell_retried"]
        # One pool retry burned, then the serial fallback: two mirrors.
        assert len(mirror) == 2
        assert "pool attempt 2/2" in mirror[0].detail
        assert "serial fallback" in mirror[1].detail
        # The cache round-trips them: a second run loads, not recomputes.
        events: list[CellEvent] = []
        second = runner.run(grid, workers=2, on_event=events.append)
        assert {event.kind for event in events} == {"cell_cached"}
        assert first == second


class _InterruptAfter:
    """Event sink that simulates dying after N completed cells."""

    def __init__(self, after: int) -> None:
        self.after = after
        self.finished = 0

    def __call__(self, event: CellEvent) -> None:
        if event.kind == "cell_finished":
            self.finished += 1
            if self.finished >= self.after:
                raise KeyboardInterrupt


class TestResume:
    def test_interrupted_grid_resumes_from_journal(self, trace, tmp_path):
        """Only the cells the interrupted run never journaled are
        recomputed, and the final cache is byte-identical to an
        uninterrupted run's."""
        grid = _grid("par-resume", random_factory)
        clean = ExperimentRunner(trace, cache_dir=tmp_path / "clean")
        clean.run(grid, workers=1)

        runner = ExperimentRunner(trace, cache_dir=tmp_path / "bumpy")
        with pytest.raises(KeyboardInterrupt):
            runner.run(grid, workers=1, on_event=_InterruptAfter(3))
        journal_path = tmp_path / "bumpy" / "par-resume__time.journal"
        assert journal_path.exists()
        journaled = GridCheckpoint(journal_path, cache_key="par-resume__time").load()
        # The interrupting cell was never yielded back, so it is not
        # journaled; the two before it are durable.
        assert len(journaled) == 2

        events: list[CellEvent] = []
        resumed = runner.run(grid, workers=1, resume=True, on_event=events.append)
        kinds = [event.kind for event in events]
        assert kinds.count("cell_resumed") == 2
        assert kinds.count("cell_scheduled") == 6 - 2
        assert resumed == clean.run(grid, workers=1)
        clean_bytes = (tmp_path / "clean" / "par-resume__time.json").read_bytes()
        bumpy_bytes = (tmp_path / "bumpy" / "par-resume__time.json").read_bytes()
        assert clean_bytes == bumpy_bytes
        # A clean completion retires its journal.
        assert not journal_path.exists()

    def test_resume_false_discards_stale_journal(self, trace, tmp_path):
        grid = _grid("par-noresume", random_factory)
        runner = ExperimentRunner(trace, cache_dir=tmp_path)
        with pytest.raises(KeyboardInterrupt):
            runner.run(grid, workers=1, on_event=_InterruptAfter(3))
        events: list[CellEvent] = []
        runner.run(grid, workers=1, on_event=events.append)
        kinds = [event.kind for event in events]
        assert "cell_resumed" not in kinds
        assert kinds.count("cell_scheduled") == 6  # everything recomputed

    def test_fully_journaled_grid_recomputes_nothing(self, trace, tmp_path):
        grid = _grid("par-full", random_factory)
        runner = ExperimentRunner(trace, cache_dir=tmp_path)
        reference = runner.run(grid, workers=1)
        cache_path = tmp_path / "par-full__time.json"
        journal_path = tmp_path / "par-full__time.journal"
        # Rebuild the journal from the consolidated cache, then delete
        # the cache: the state of a run killed right before its final
        # consolidation.
        import json

        cached = json.loads(cache_path.read_text())["results"]
        with GridCheckpoint(journal_path, cache_key="par-full__time") as journal:
            for workload_id, per_workload in cached.items():
                for seed_key, payload in per_workload.items():
                    journal.record((workload_id, int(seed_key)), payload)
        cache_path.unlink()

        events: list[CellEvent] = []
        resumed = runner.run(grid, workers=1, resume=True, on_event=events.append)
        assert resumed == reference
        assert {event.kind for event in events} == {"cell_resumed"}
        # The consolidated cache was rebuilt and the journal retired.
        assert cache_path.exists()
        assert not journal_path.exists()

    def test_journal_payloads_tolerate_damage(self, trace, tmp_path):
        """A malformed journal entry is dropped and its cell recomputed."""
        grid = _grid("par-damage", random_factory, repeats=1)
        runner = ExperimentRunner(trace, cache_dir=tmp_path)
        reference = runner.run(grid, workers=1)
        (tmp_path / "par-damage__time.json").unlink()
        journal_path = tmp_path / "par-damage__time.journal"
        with GridCheckpoint(journal_path, cache_key="par-damage__time") as journal:
            journal.record((WORKLOADS[0], 0), {"optimizer": "x"})  # invalid shape
        events: list[CellEvent] = []
        resumed = runner.run(grid, workers=1, resume=True, on_event=events.append)
        assert resumed == reference
        kinds = [event.kind for event in events]
        assert "cell_resumed" not in kinds
        assert kinds.count("cell_scheduled") == 3
