"""Parallel experiment engine: determinism, caching, and degradation."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.runner import ExperimentRunner, RunGrid
from repro.core.baselines import RandomSearch
from repro.core.objectives import Objective
from repro.faults import FaultInjector, parse_fault_plan, RetryPolicy
from repro.parallel import CellEvent, run_cells
from repro.parallel.engine import _fork_available

WORKLOADS = (
    "kmeans/Spark 2.1/small",
    "lr/Spark 1.5/medium",
    "pagerank/Hadoop 2.7/small",
)


def random_factory(environment, objective, seed):
    return RandomSearch(
        environment, objective=objective, seed=seed, max_measurements=6
    )


def faulty_factory(environment, objective, seed):
    plan = parse_fault_plan("transient:rate=0.3", seed=seed)
    return RandomSearch(
        FaultInjector(environment, plan),
        objective=objective,
        seed=seed,
        max_measurements=8,
        retry_policy=RetryPolicy(max_attempts=3),
    )


def _grid(key, factory, repeats=2):
    return RunGrid(
        key=key,
        factory=factory,
        objective=Objective.TIME,
        workload_ids=WORKLOADS,
        repeats=repeats,
    )


def _run(trace, tmp_path, grid, workers, on_event=None):
    runner = ExperimentRunner(trace, cache_dir=tmp_path / f"w{workers}")
    return runner.run(grid, workers=workers, on_event=on_event)


class TestDeterminism:
    def test_workers_do_not_change_results(self, trace, tmp_path):
        serial = _run(trace, tmp_path, _grid("par-det", random_factory), workers=1)
        parallel = _run(trace, tmp_path, _grid("par-det", random_factory), workers=4)
        assert serial == parallel

    def test_results_include_event_streams(self, trace, tmp_path):
        results = _run(trace, tmp_path, _grid("par-ev", random_factory), workers=4)
        for runs in results.values():
            for result in runs:
                assert result.events
                kinds = {event.kind for event in result.events}
                assert "measurement_finished" in kinds

    def test_identical_under_fault_plan(self, trace, tmp_path):
        grid = _grid("par-faulty", faulty_factory)
        serial = _run(trace, tmp_path, grid, workers=1)
        parallel = _run(trace, tmp_path, grid, workers=4)
        assert serial == parallel
        # The fault plan actually fired somewhere, so the equality above
        # covers failure events too.
        assert any(
            result.failure_events
            for runs in serial.values()
            for result in runs
        )

    def test_cache_files_byte_identical(self, trace, tmp_path):
        grid = _grid("par-bytes", random_factory)
        _run(trace, tmp_path, grid, workers=1)
        _run(trace, tmp_path, grid, workers=4)
        serial_bytes = (tmp_path / "w1" / "par-bytes__time.json").read_bytes()
        parallel_bytes = (tmp_path / "w4" / "par-bytes__time.json").read_bytes()
        assert serial_bytes == parallel_bytes

    def test_cache_hits_skip_the_engine(self, trace, tmp_path):
        grid = _grid("par-hit", random_factory)
        runner = ExperimentRunner(trace, cache_dir=tmp_path)
        first = runner.run(grid, workers=4)
        events: list[CellEvent] = []
        second = runner.run(grid, workers=4, on_event=events.append)
        assert first == second
        assert {event.kind for event in events} == {"cell_cached"}


class TestEngine:
    def test_yields_in_submission_order(self, trace):
        cells = [(workload, repeat) for workload in WORKLOADS for repeat in (0, 1)]
        yielded = [
            cell
            for cell, _ in run_cells(
                trace=trace,
                factory=random_factory,
                objective=Objective.TIME,
                cells=cells,
                workers=4,
            )
        ]
        assert yielded == cells

    def test_event_stream_covers_every_cell(self, trace):
        cells = [(workload, 0) for workload in WORKLOADS]
        events: list[CellEvent] = []
        list(
            run_cells(
                trace=trace,
                factory=random_factory,
                objective=Objective.TIME,
                cells=cells,
                workers=2,
                on_event=events.append,
            )
        )
        scheduled = [e for e in events if e.kind == "cell_scheduled"]
        finished = [e for e in events if e.kind == "cell_finished"]
        assert {(e.workload_id, e.repeat) for e in scheduled} == set(cells)
        assert {(e.workload_id, e.repeat) for e in finished} == set(cells)

    def test_rejects_bad_worker_count(self, trace):
        with pytest.raises(ValueError, match="workers"):
            list(
                run_cells(
                    trace=trace,
                    factory=random_factory,
                    objective=Objective.TIME,
                    cells=[(WORKLOADS[0], 0)],
                    workers=0,
                )
            )

    def test_custom_seed_fn(self, trace):
        cells = [(WORKLOADS[0], repeat) for repeat in range(3)]
        seeds: list[int] = []

        def recording_factory(environment, objective, seed):
            seeds.append(seed)
            return random_factory(environment, objective, seed)

        list(
            run_cells(
                trace=trace,
                factory=recording_factory,
                objective=Objective.TIME,
                cells=cells,
                workers=1,
                seed_fn=lambda _workload, repeat: repeat,
            )
        )
        assert seeds == [0, 1, 2]


@pytest.mark.skipif(not _fork_available(), reason="requires fork start method")
class TestDegradation:
    def test_app_error_in_worker_is_retried_serially(self, trace):
        """A cell whose first (worker) attempt raises succeeds on the
        parent's serial retry — quarantine the cell, not the run."""
        main_pid = os.getpid()

        def flaky_factory(environment, objective, seed):
            if os.getpid() != main_pid:
                raise RuntimeError("worker-side failure")
            return random_factory(environment, objective, seed)

        cells = [(workload, 0) for workload in WORKLOADS]
        events: list[CellEvent] = []
        results = list(
            run_cells(
                trace=trace,
                factory=flaky_factory,
                objective=Objective.TIME,
                cells=cells,
                workers=2,
                on_event=events.append,
                auto_clamp=False,
            )
        )
        assert [cell for cell, _ in results] == cells
        failed = [e for e in events if e.kind == "cell_failed"]
        assert failed and all("worker-side failure" in e.detail for e in failed)

    def test_pool_death_degrades_to_serial(self, trace):
        """Killing the worker process mid-cell breaks the pool; the
        engine recomputes the remaining cells serially in the parent."""
        main_pid = os.getpid()

        def lethal_factory(environment, objective, seed):
            if os.getpid() != main_pid:
                os._exit(1)
            return random_factory(environment, objective, seed)

        cells = [(workload, repeat) for workload in WORKLOADS for repeat in (0, 1)]
        events: list[CellEvent] = []
        results = list(
            run_cells(
                trace=trace,
                factory=lethal_factory,
                objective=Objective.TIME,
                cells=cells,
                workers=2,
                on_event=events.append,
                auto_clamp=False,
            )
        )
        assert [cell for cell, _ in results] == cells
        assert any(event.kind == "pool_degraded" for event in events)

    def test_deterministic_failure_propagates(self, trace):
        """A cell that fails in the worker *and* on the serial retry
        raises, exactly as the serial path would."""

        def doomed_factory(environment, objective, seed):
            raise RuntimeError("deterministic failure")

        with pytest.raises(RuntimeError, match="deterministic failure"):
            list(
                run_cells(
                    trace=trace,
                    factory=doomed_factory,
                    objective=Objective.TIME,
                    cells=[(workload, 0) for workload in WORKLOADS],
                    workers=2,
                    auto_clamp=False,
                )
            )


class TestRunnerWorkers:
    def test_constructor_default(self, trace, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            ExperimentRunner(trace, workers=0)
        runner = ExperimentRunner(trace, cache_dir=tmp_path, workers=2)
        grid = _grid("par-ctor", random_factory, repeats=1)
        results = runner.run(grid)  # uses the constructor default
        assert set(results) == set(WORKLOADS)
