"""Worker planning and the shared-memory trace data plane."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import POOL_MIN_CELLS, TraceShare, plan_workers
from repro.parallel.dataplane import _ATTACHED


class TestPlanWorkers:
    def test_clamps_to_cpu_count(self):
        assert plan_workers(8, 20, cpu_count=2) == 2

    def test_clamps_to_cell_count(self):
        assert plan_workers(8, 5, cpu_count=16) == 5

    def test_request_is_a_ceiling(self):
        assert plan_workers(3, 20, cpu_count=16) == 3

    def test_tiny_grids_run_serially(self):
        assert POOL_MIN_CELLS > 1
        for n_cells in range(POOL_MIN_CELLS):
            assert plan_workers(8, n_cells, cpu_count=16) == 1

    def test_at_threshold_pools(self):
        assert plan_workers(8, POOL_MIN_CELLS, cpu_count=16) == POOL_MIN_CELLS

    def test_rejects_bad_request(self):
        with pytest.raises(ValueError, match="workers"):
            plan_workers(0, 10)

    def test_uses_host_cpu_count_by_default(self):
        import os

        cores = os.cpu_count() or 1
        assert plan_workers(10_000, 10_000) == min(10_000, cores)


class TestTraceShare:
    def test_roundtrip_is_exact_and_zero_copy(self, trace):
        share = TraceShare.export(trace)
        try:
            rebuilt = share.trace()
            np.testing.assert_array_equal(rebuilt.times, trace.times)
            np.testing.assert_array_equal(rebuilt.costs, trace.costs)
            np.testing.assert_array_equal(rebuilt.metrics, trace.metrics)
            assert rebuilt.registry is trace.registry
            assert rebuilt.catalog == trace.catalog
            assert rebuilt.seed == trace.seed
            # The rebuilt arrays are views of the shared segment, not
            # copies, and are protected against accidental writes.
            assert not rebuilt.times.flags.owndata
            assert not rebuilt.times.flags.writeable
        finally:
            share.close()

    def test_attach_is_cached_per_process(self, trace):
        share = TraceShare.export(trace)
        try:
            assert share.trace() is share.trace()
        finally:
            share.close()

    def test_close_clears_cache_and_is_idempotent(self, trace):
        share = TraceShare.export(trace)
        share.trace()
        share.close()
        assert share.segment_name not in _ATTACHED
        share.close()  # second close must not raise

    def test_environment_replays_identically(self, trace):
        """A search environment built from the shared trace measures
        exactly what the original trace would."""
        share = TraceShare.export(trace)
        try:
            rebuilt = share.trace()
            workload = trace.registry.workloads[0]
            original_env = trace.environment(workload)
            shared_env = rebuilt.environment(workload)
            vm = trace.catalog[0].name
            assert original_env.measure(vm) == shared_env.measure(vm)
        finally:
            share.close()
