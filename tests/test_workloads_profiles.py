"""Unit tests for application profiles and their deterministic derivation."""

import pytest

from repro.workloads.profiles import APPLICATIONS, base_profile, build_profile
from repro.workloads.spec import Category, Framework, InputSize


class TestApplicationTable:
    def test_exactly_30_applications(self):
        assert len(APPLICATIONS) == 30

    def test_category_counts_match_table1(self):
        counts = {}
        for app in APPLICATIONS.values():
            counts[app.category] = counts.get(app.category, 0) + 1
        assert counts[Category.MICRO] == 4
        assert counts[Category.OLAP] == 3
        assert counts[Category.STATISTICS] == 9
        assert counts[Category.MACHINE_LEARNING] == 14

    def test_every_application_has_description(self):
        for app in APPLICATIONS.values():
            assert app.description.strip()

    def test_base_profile_lookup(self):
        assert base_profile("als") is APPLICATIONS["als"].base

    def test_unknown_application_raises(self):
        with pytest.raises(KeyError, match="nonexistent"):
            base_profile("nonexistent")


class TestProfileCharacter:
    def test_sort_is_io_dominated(self):
        sort = base_profile("sort")
        assert sort.io_gb + sort.shuffle_gb > 5 * sort.working_set_gb

    def test_word2vec_is_clock_bound(self):
        w2v = base_profile("word2vec")
        assert w2v.cpu_gen_sensitivity >= 0.85
        assert w2v.io_gb < 10

    def test_fp_growth_is_memory_hungry(self):
        assert base_profile("fp-growth").working_set_gb == max(
            app.base.working_set_gb for app in APPLICATIONS.values()
        )

    def test_gb_tree_scales_worst_across_cores(self):
        assert base_profile("gb-tree").parallel_fraction == min(
            app.base.parallel_fraction
            for app in APPLICATIONS.values()
            if app.category is Category.MACHINE_LEARNING
        )


class TestBuildProfile:
    def test_deterministic_across_calls(self):
        a = build_profile("als", Framework.SPARK_21, InputSize.MEDIUM)
        b = build_profile("als", Framework.SPARK_21, InputSize.MEDIUM)
        assert a == b

    def test_distinct_across_sizes(self):
        small = build_profile("als", Framework.SPARK_21, InputSize.SMALL)
        large = build_profile("als", Framework.SPARK_21, InputSize.LARGE)
        assert large.cpu_seconds > small.cpu_seconds
        assert large.working_set_gb > small.working_set_gb
        assert large.io_gb > small.io_gb

    def test_distinct_across_frameworks(self):
        spark15 = build_profile("als", Framework.SPARK_15, InputSize.MEDIUM)
        spark21 = build_profile("als", Framework.SPARK_21, InputSize.MEDIUM)
        assert spark15 != spark21

    def test_spark15_needs_more_resources_than_spark21(self):
        """The older release is less efficient, on expectation; the fixed
        jitter keeps this deterministic for any given application."""
        s15 = build_profile("kmeans", Framework.SPARK_15, InputSize.MEDIUM)
        s21 = build_profile("kmeans", Framework.SPARK_21, InputSize.MEDIUM)
        # Same jitter seeds differ per framework, so compare loosely: the
        # 1.3x cpu factor should dominate the 0.18-sigma jitter in most
        # cases; kmeans is one of them.
        assert s15.cpu_seconds > s21.cpu_seconds * 0.9

    def test_size_scaling_is_large_factor(self):
        small = build_profile("scan", Framework.HADOOP_27, InputSize.SMALL)
        large = build_profile("scan", Framework.HADOOP_27, InputSize.LARGE)
        assert large.io_gb / small.io_gb > 4

    def test_fractions_stay_in_range(self):
        for app in APPLICATIONS:
            for framework in Framework:
                for size in InputSize:
                    profile = build_profile(app, framework, size)
                    assert 0.05 <= profile.parallel_fraction <= 0.98
                    assert 0.0 <= profile.cpu_gen_sensitivity <= 1.0
