"""Unit tests for ARD (per-dimension lengthscale) kernels."""

import numpy as np
import pytest

from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import RBF, Matern52


class TestARDKernelMechanics:
    def test_vector_lengthscale_accepted(self):
        kernel = Matern52(lengthscale=np.array([1.0, 2.0, 4.0]))
        assert kernel.is_ard
        assert kernel.theta.size == 4  # variance + 3 lengthscales

    def test_scalar_kernel_is_not_ard(self):
        assert not Matern52(lengthscale=2.0).is_ard

    def test_theta_roundtrip_preserves_ard(self):
        kernel = RBF(lengthscale=np.array([1.0, 3.0]))
        other = RBF(lengthscale=np.array([9.0, 9.0]))
        other.theta = kernel.theta
        assert other.is_ard
        assert np.allclose(other.lengthscale, [1.0, 3.0])

    def test_bounds_match_theta_size(self):
        kernel = Matern52(lengthscale=np.ones(4))
        assert kernel.bounds.shape == (5, 2)

    def test_clone_copies_the_vector(self):
        kernel = Matern52(lengthscale=np.array([1.0, 2.0]))
        copy = kernel.clone()
        copy.theta = np.log([1.0, 5.0, 5.0])
        assert np.allclose(kernel.lengthscale, [1.0, 2.0])

    def test_negative_lengthscale_rejected(self):
        with pytest.raises(ValueError):
            Matern52(lengthscale=np.array([1.0, -1.0]))

    def test_matrix_lengthscale_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            Matern52(lengthscale=np.ones((2, 2)))

    def test_anisotropy_changes_covariance(self):
        iso = RBF(lengthscale=1.0)
        ard = RBF(lengthscale=np.array([1.0, 100.0]))
        x0 = np.zeros((1, 2))
        x1 = np.array([[0.0, 3.0]])  # separated only along the long axis
        assert ard(x0, x1)[0, 0] > iso(x0, x1)[0, 0]

    def test_uniform_ard_equals_isotropic(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(6, 3))
        iso = Matern52(lengthscale=1.7)
        ard = Matern52(lengthscale=np.full(3, 1.7))
        assert np.allclose(iso(X), ard(X))


class TestARDInGP:
    def test_gp_learns_to_ignore_irrelevant_dimension(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, size=(50, 2))
        y = np.sin(3 * X[:, 0])  # dim 1 carries no signal
        gp = GaussianProcessRegressor(
            Matern52(lengthscale=np.ones(2)), seed=0, n_restarts=2
        ).fit(X, y)
        ls = gp.kernel.lengthscale
        assert ls[1] > 3 * ls[0]

    def test_ard_gp_predicts_through_noise_dimension(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-2, 2, size=(60, 2))
        y = np.sin(3 * X[:, 0])
        gp = GaussianProcessRegressor(
            Matern52(lengthscale=np.ones(2)), seed=0, n_restarts=2
        ).fit(X, y)
        X_test = rng.uniform(-2, 2, size=(100, 2))
        rmse = np.sqrt(np.mean((gp.predict(X_test) - np.sin(3 * X_test[:, 0])) ** 2))
        assert rmse < 0.25
