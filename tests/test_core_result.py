"""Unit tests for search results."""

import pytest

from repro.core.objectives import Objective
from repro.core.result import SearchResult, SearchStep


def make_result(values, optimizer="naive-bo", stopped_by="exhausted"):
    steps = []
    best = float("inf")
    for index, value in enumerate(values, start=1):
        best = min(best, value)
        steps.append(
            SearchStep(step=index, vm_name=f"vm{index}", objective_value=value, best_value=best)
        )
    return SearchResult(
        optimizer=optimizer,
        objective=Objective.TIME,
        workload_id="w/Spark 2.1/small",
        steps=tuple(steps),
        stopped_by=stopped_by,
    )


class TestSearchResult:
    def test_search_cost_counts_all_measurements(self):
        assert make_result([5, 3, 4, 2]).search_cost == 4

    def test_best_value_is_minimum(self):
        assert make_result([5, 3, 4, 2]).best_value == 2

    def test_best_vm_name_attains_minimum(self):
        assert make_result([5, 3, 4, 2]).best_vm_name == "vm4"

    def test_measured_vm_names_in_order(self):
        assert make_result([5, 3]).measured_vm_names == ("vm1", "vm2")

    def test_best_value_at_steps(self):
        result = make_result([5, 3, 4, 2])
        assert result.best_value_at(1) == 5
        assert result.best_value_at(2) == 3
        assert result.best_value_at(3) == 3
        assert result.best_value_at(4) == 2

    def test_best_value_at_beyond_end_is_final(self):
        assert make_result([5, 3]).best_value_at(10) == 3

    def test_best_value_at_zero_rejected(self):
        with pytest.raises(ValueError, match="step"):
            make_result([5]).best_value_at(0)

    def test_first_step_reaching(self):
        result = make_result([5, 3, 4, 2])
        assert result.first_step_reaching(5) == 1
        assert result.first_step_reaching(3) == 2
        assert result.first_step_reaching(2) == 4
        assert result.first_step_reaching(1) is None

    def test_first_step_reaching_with_tolerance(self):
        result = make_result([5.0, 3.0])
        assert result.first_step_reaching(2.9999, tolerance=1e-3) == 2

    def test_empty_result_rejected(self):
        with pytest.raises(ValueError, match="at least one step"):
            SearchResult(
                optimizer="x",
                objective=Objective.TIME,
                workload_id=None,
                steps=(),
                stopped_by="budget",
            )

    def test_result_is_frozen(self):
        result = make_result([1.0])
        with pytest.raises(AttributeError):
            result.stopped_by = "other"  # type: ignore[misc]
