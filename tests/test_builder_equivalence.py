"""Seeded search-outcome equivalence: classic vs vectorized builder.

The vectorized builder consumes random draws in a different order than
the classic grower, so individual trees differ — but the surrogate's
*decisions* must not: on the tier-1 grid configuration (the engine test
workloads, ``run_seed`` seeding, the paper's Prediction-Delta stopping
rule) both builders must select the same best VM at the same search
cost, step for step.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import ExperimentRunner, RunGrid
from repro.core.augmented_bo import AugmentedBO
from repro.core.objectives import Objective
from repro.core.stopping import PredictionDeltaThreshold

WORKLOADS = ("kmeans/Spark 2.1/small", "lr/Spark 1.5/medium")
REPEATS = 2


def _factory(builder):
    def factory(environment, objective, seed):
        return AugmentedBO(
            environment,
            objective=objective,
            seed=seed,
            stopping=PredictionDeltaThreshold(1.1),
            tree_builder=builder,
        )

    return factory


@pytest.fixture(scope="module")
def outcomes(trace):
    results = {}
    for builder in ("classic", "vectorized"):
        grid = RunGrid(
            key=f"builder-equiv-{builder}",
            factory=_factory(builder),
            objective=Objective.TIME,
            workload_ids=WORKLOADS,
            repeats=REPEATS,
        )
        results[builder] = ExperimentRunner(trace, cache_dir=None).run(grid)
    return results


class TestSearchOutcomeEquivalence:
    def test_identical_best_vm_selections(self, outcomes):
        for workload in WORKLOADS:
            for classic, vectorized in zip(
                outcomes["classic"][workload], outcomes["vectorized"][workload]
            ):
                assert classic.best_vm_name == vectorized.best_vm_name

    def test_identical_search_costs(self, outcomes):
        for workload in WORKLOADS:
            classic_costs = [r.search_cost for r in outcomes["classic"][workload]]
            vector_costs = [r.search_cost for r in outcomes["vectorized"][workload]]
            assert classic_costs == vector_costs

    def test_identical_stopping_reasons(self, outcomes):
        for workload in WORKLOADS:
            for classic, vectorized in zip(
                outcomes["classic"][workload], outcomes["vectorized"][workload]
            ):
                assert classic.stopped_by == vectorized.stopped_by
