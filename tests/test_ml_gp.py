"""Unit tests for the from-scratch Gaussian Process."""

import numpy as np
import pytest

from repro.ml.gp import GaussianProcessRegressor
from repro.ml.kernels import RBF, Matern52


@pytest.fixture(scope="module")
def toy_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(-3, 3, size=(30, 2))
    y = np.sin(X[:, 0]) + 0.5 * np.cos(2 * X[:, 1])
    return X, y


class TestFitPredict:
    def test_interpolates_training_points(self, toy_data):
        X, y = toy_data
        gp = GaussianProcessRegressor(Matern52(), seed=1).fit(X, y)
        mean = gp.predict(X)
        assert np.max(np.abs(mean - y)) < 1e-2

    def test_uncertainty_near_zero_at_training_points(self, toy_data):
        X, y = toy_data
        gp = GaussianProcessRegressor(Matern52(), seed=1).fit(X, y)
        _, std = gp.predict(X, return_std=True)
        assert np.all(std < 0.1 * y.std())

    def test_uncertainty_grows_away_from_data(self, toy_data):
        X, y = toy_data
        gp = GaussianProcessRegressor(RBF(), seed=1).fit(X, y)
        _, std_near = gp.predict(X[:1], return_std=True)
        _, std_far = gp.predict(np.array([[30.0, 30.0]]), return_std=True)
        assert std_far[0] > 5 * std_near[0]

    def test_far_extrapolation_reverts_to_mean(self, toy_data):
        X, y = toy_data
        gp = GaussianProcessRegressor(RBF(), seed=1).fit(X, y)
        mean = gp.predict(np.array([[100.0, 100.0]]))
        assert mean[0] == pytest.approx(y.mean(), abs=0.2 * np.abs(y).max() + 0.1)

    def test_generalises_on_smooth_function(self, toy_data):
        X, y = toy_data
        rng = np.random.default_rng(5)
        X_test = rng.uniform(-3, 3, size=(100, 2))
        y_test = np.sin(X_test[:, 0]) + 0.5 * np.cos(2 * X_test[:, 1])
        gp = GaussianProcessRegressor(Matern52(), seed=1).fit(X, y)
        rmse = np.sqrt(np.mean((gp.predict(X_test) - y_test) ** 2))
        assert rmse < 0.35

    def test_single_point_fit(self):
        gp = GaussianProcessRegressor(Matern52(), seed=0)
        gp.fit(np.array([[1.0, 2.0]]), np.array([5.0]))
        assert gp.predict(np.array([[1.0, 2.0]]))[0] == pytest.approx(5.0, abs=1e-6)

    def test_constant_targets_handled(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        gp = GaussianProcessRegressor(Matern52(), seed=0).fit(X, np.full(10, 3.0))
        assert gp.predict(np.array([[4.5]]))[0] == pytest.approx(3.0, abs=1e-6)

    def test_1d_query_reshaped(self, toy_data):
        X, y = toy_data
        gp = GaussianProcessRegressor(Matern52(), seed=1).fit(X, y)
        assert gp.predict(X[0]).shape == (1,)


class TestValidation:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            GaussianProcessRegressor().predict(np.zeros((1, 2)))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError, match="zero observations"):
            GaussianProcessRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="rows"):
            GaussianProcessRegressor().fit(np.zeros((3, 2)), np.zeros(4))

    def test_non_2d_X_raises(self):
        with pytest.raises(ValueError, match="2-D"):
            GaussianProcessRegressor().fit(np.zeros((2, 2, 2)), np.zeros(2))

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError, match="noise"):
            GaussianProcessRegressor(noise=-1.0)


class TestHyperparameterFit:
    def test_marginal_likelihood_improves_with_optimisation(self, toy_data):
        X, y = toy_data
        y_scaled = (y - y.mean()) / y.std()

        unoptimised = GaussianProcessRegressor(
            Matern52(lengthscale=100.0), optimise=False
        )
        unoptimised.fit(X, y)
        lml_before = unoptimised.log_marginal_likelihood(y_scaled)

        optimised = GaussianProcessRegressor(
            Matern52(lengthscale=100.0), optimise=True, seed=0
        )
        optimised.fit(X, y)
        lml_after = optimised.log_marginal_likelihood(y_scaled)
        assert lml_after > lml_before

    def test_learns_sensible_lengthscale(self, toy_data):
        X, y = toy_data
        gp = GaussianProcessRegressor(Matern52(lengthscale=50.0), seed=0, n_restarts=2)
        gp.fit(X, y)
        assert 0.05 < gp.kernel.lengthscale < 20.0

    def test_kernel_argument_not_mutated(self, toy_data):
        X, y = toy_data
        kernel = Matern52(lengthscale=7.0)
        GaussianProcessRegressor(kernel, seed=0).fit(X, y)
        assert kernel.lengthscale == 7.0

    def test_noisy_targets_learn_noise(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-3, 3, size=(60, 1))
        y = np.sin(X[:, 0]) + rng.normal(0, 0.3, size=60)
        gp = GaussianProcessRegressor(Matern52(), seed=0, n_restarts=2).fit(X, y)
        # Learned noise should be material, not the 1e-4 default.
        assert gp.noise > 1e-3
