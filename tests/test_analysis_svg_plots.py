"""Unit tests for the SVG figure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg_plots import PALETTE, bar_chart_svg, line_chart_svg


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestLineChartSvg:
    def test_produces_valid_xml(self):
        svg = line_chart_svg({"a": [1.0, 2.0, 3.0]})
        root = parse(svg)
        assert root.tag.endswith("svg")

    def test_one_polyline_per_series(self):
        svg = line_chart_svg({"a": [1, 2], "b": [2, 1], "c": [0, 0]})
        assert svg.count("<polyline") == 3

    def test_series_colours_follow_palette(self):
        svg = line_chart_svg({"a": [1, 2], "b": [2, 1]})
        assert PALETTE[0] in svg
        assert PALETTE[1] in svg

    def test_title_and_labels_included(self):
        svg = line_chart_svg(
            {"s": [1, 2]}, title="My Chart", x_label="xx", y_label="yy"
        )
        assert "My Chart" in svg
        assert "xx" in svg
        assert "yy" in svg

    def test_labels_are_escaped(self):
        svg = line_chart_svg({"a<b": [1, 2]}, title="t&t")
        assert "a&lt;b" in svg
        assert "t&amp;t" in svg
        parse(svg)  # still valid XML

    def test_y_range_override_changes_tick_labels(self):
        svg = line_chart_svg({"s": [0.5, 0.5]}, y_min=0.0, y_max=1.0)
        assert ">0.00<" in svg
        assert ">1.00<" in svg

    def test_higher_values_render_higher(self):
        svg = line_chart_svg({"s": [0.0, 1.0]}, y_min=0.0, y_max=1.0)
        (points,) = [
            line.split('points="')[1].split('"')[0]
            for line in svg.splitlines()
            if "<polyline" in line
        ]
        (x0, y0), (x1, y1) = [tuple(map(float, p.split(","))) for p in points.split()]
        assert y1 < y0  # SVG y grows downwards
        assert x1 > x0

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            line_chart_svg({})
        with pytest.raises(ValueError, match="empty"):
            line_chart_svg({"s": []})
        with pytest.raises(ValueError, match="lengths differ"):
            line_chart_svg({"a": [1], "b": [1, 2]})

    def test_deterministic(self):
        a = line_chart_svg({"s": [1, 2, 3]})
        b = line_chart_svg({"s": [1, 2, 3]})
        assert a == b


class TestBarChartSvg:
    def test_produces_valid_xml(self):
        parse(bar_chart_svg({"vm1": 1.0, "vm2": 2.5}))

    def test_one_rect_per_bar_plus_background(self):
        svg = bar_chart_svg({"a": 1.0, "b": 2.0, "c": 3.0})
        assert svg.count("<rect") == 4

    def test_bar_width_proportional_to_value(self):
        svg = bar_chart_svg({"small": 1.0, "large": 4.0})
        widths = [
            float(line.split('width="')[1].split('"')[0])
            for line in svg.splitlines()
            if "<rect" in line and PALETTE[0] in line
        ]
        assert widths[1] == pytest.approx(4 * widths[0], rel=1e-6)

    def test_unit_suffix_rendered(self):
        svg = bar_chart_svg({"a": 2.0}, unit="x")
        assert "2.00x" in svg

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            bar_chart_svg({})
        with pytest.raises(ValueError, match="non-negative"):
            bar_chart_svg({"a": -1.0})


class TestRenderScript:
    def test_renders_known_figures(self, tmp_path, monkeypatch):
        import importlib.util
        import json
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "render_figures",
            Path(__file__).parent.parent / "scripts" / "render_figures.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        figures = tmp_path / "figures"
        figures.mkdir()
        (figures / "fig1.json").write_text(
            json.dumps({"curve": [0.1, 0.5, 1.0], "regions": {}})
        )
        (figures / "fig12.json").write_text(json.dumps({"counts": {}}))  # no renderer
        monkeypatch.setattr(module, "FIGURES", figures)
        module.main()
        assert (figures / "fig1.svg").exists()
        assert not (figures / "fig12.svg").exists()
