"""Unit tests for the CART random forest."""

import numpy as np
import pytest

from repro.ml.random_forest import CARTRegressionTree, RandomForestRegressor


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, size=(200, 4))
    y = 6.0 * (X[:, 0] > 0.4) + 2.0 * X[:, 1] + 0.05 * rng.normal(size=200)
    return X, y


class TestCARTTree:
    def test_finds_the_exact_step_threshold(self):
        """With one clean step feature, CART's best split must land at the
        midpoint between the two sides — unlike Extra-Trees' random cut."""
        X = np.array([[0.0], [0.2], [0.4], [0.6], [0.8], [1.0]])
        y = np.array([0.0, 0.0, 0.0, 10.0, 10.0, 10.0])
        tree = CARTRegressionTree(seed=0).fit(X, y)
        assert tree._feature[0] == 0
        assert tree._threshold[0] == pytest.approx(0.5)

    def test_memorises_with_full_growth(self, data):
        X, y = data
        tree = CARTRegressionTree(seed=0).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_max_depth_respected(self, data):
        X, y = data
        tree = CARTRegressionTree(seed=0, max_depth=2).fit(X, y)
        assert tree.node_count <= 7

    def test_constant_features_give_leaf(self):
        tree = CARTRegressionTree(seed=0).fit(np.ones((8, 2)), np.arange(8.0))
        assert tree.node_count == 1

    def test_duplicate_feature_values_dont_split_between_equals(self):
        X = np.array([[1.0], [1.0], [2.0], [2.0]])
        y = np.array([0.0, 1.0, 10.0, 11.0])
        tree = CARTRegressionTree(seed=0).fit(X, y)
        assert tree._threshold[0] == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CARTRegressionTree(min_samples_split=1)
        with pytest.raises(RuntimeError):
            CARTRegressionTree().predict(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            CARTRegressionTree().fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            CARTRegressionTree().fit(np.zeros((3, 2)), np.zeros(4))


class TestRandomForest:
    def test_tracks_function_off_sample(self, data):
        X, y = data
        rng = np.random.default_rng(5)
        X_test = rng.uniform(0, 1, size=(300, 4))
        y_test = 6.0 * (X_test[:, 0] > 0.4) + 2.0 * X_test[:, 1]
        forest = RandomForestRegressor(n_estimators=30, seed=1).fit(X, y)
        rmse = np.sqrt(np.mean((forest.predict(X_test) - y_test) ** 2))
        assert rmse < 1.0

    def test_bootstrap_makes_trees_differ(self, data):
        X, y = data
        forest = RandomForestRegressor(n_estimators=5, seed=2).fit(X, y)
        queries = X[:20]
        per_tree = np.stack([tree.predict(queries) for tree in forest.trees])
        assert np.any(per_tree.std(axis=0) > 0)

    def test_std_output(self, data):
        X, y = data
        forest = RandomForestRegressor(n_estimators=10, seed=3).fit(X, y)
        mean, std = forest.predict(X[:5], return_std=True)
        assert mean.shape == std.shape == (5,)
        assert np.all(std >= 0)

    def test_third_max_features_default(self, data):
        X, y = data
        forest = RandomForestRegressor(seed=0)
        assert forest._resolve_max_features(9) == 3
        assert forest._resolve_max_features(2) == 1

    def test_explicit_max_features(self):
        forest = RandomForestRegressor(max_features=2, seed=0)
        assert forest._resolve_max_features(9) == 2

    def test_unknown_max_features_spec_rejected(self, data):
        X, y = data
        with pytest.raises(ValueError, match="max_features"):
            RandomForestRegressor(max_features="sqrt", seed=0).fit(X, y)

    def test_deterministic_given_seed(self, data):
        X, y = data
        a = RandomForestRegressor(n_estimators=4, seed=9).fit(X, y).predict(X[:10])
        b = RandomForestRegressor(n_estimators=4, seed=9).fit(X, y).predict(X[:10])
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 2)))
