"""Supervisor policy: deadlines, retries, self-healing, poison quarantine.

These tests script a fake executor so every failure mode is exercised
deterministically, without real processes or wall-clock races; the
integration behaviour over a real fork pool is covered in
``test_parallel_engine.py``.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.core.objectives import Objective
from repro.core.result import SearchResult, SearchStep
from repro.faults.retry import RetryPolicy
from repro.parallel.events import CellEvent
from repro.parallel.executors import CellOutcome
from repro.parallel.supervisor import SupervisionConfig, Supervisor


def _result(tag: str) -> SearchResult:
    return SearchResult(
        optimizer="scripted",
        objective=Objective.TIME,
        workload_id=tag,
        steps=(SearchStep(step=1, vm_name="vm", objective_value=1.0, best_value=1.0),),
        stopped_by="budget",
    )


class ScriptedExecutor:
    """A CellExecutor whose outcomes are scripted per submission.

    ``script[cell]`` is a list of behaviours consumed one per submit:
    ``"ok"`` (result), ``"fail"`` (application error), ``"crash"``
    (worker death), ``"hang"`` (stays in flight until cancelled).
    """

    supports_cancel = True

    def __init__(self, script: dict[tuple, list[str]]) -> None:
        self.script = {cell: deque(plan) for cell, plan in script.items()}
        self.queue: deque[CellOutcome] = deque()
        self.hanging: set = set()
        self.cancelled: list = []
        self.submissions: list = []
        self.fronted: list = []
        self.shutdowns = 0

    def submit(self, cell, front: bool = False) -> None:
        self.submissions.append(cell)
        if front:
            self.fronted.append(cell)
        behaviour = self.script[cell].popleft()
        if behaviour == "ok":
            self.queue.append(CellOutcome(cell=cell, result=_result(cell[0])))
        elif behaviour == "fail":
            self.queue.append(
                CellOutcome(cell=cell, error=f"RuntimeError: scripted {cell}")
            )
        elif behaviour == "crash":
            self.queue.append(CellOutcome(cell=cell, crashed=True))
        elif behaviour == "hang":
            self.hanging.add(cell)
        else:  # pragma: no cover - test-author error
            raise AssertionError(behaviour)

    def poll(self, timeout=None):
        batch = list(self.queue)
        self.queue.clear()
        return batch

    def cancel(self, cell) -> bool:
        if cell in self.hanging:
            self.hanging.discard(cell)
            self.cancelled.append(cell)
            return True
        return False

    def started_at(self, cell):
        # Far in the past: any armed deadline has already expired.
        return 0.0 if cell in self.hanging else None

    def shutdown(self) -> None:
        self.shutdowns += 1


def serial_run(cell) -> SearchResult:
    return _result(f"serial-{cell[0]}")


def run_supervised(script, config=None, order=None, serial=serial_run):
    executor = ScriptedExecutor(script)
    events: list[CellEvent] = []
    supervisor = Supervisor(executor, serial, config=config, on_event=events.append)
    cells = order if order is not None else list(script)
    results = list(supervisor.run(cells))
    return executor, events, results


def kinds(events: list[CellEvent]) -> list[str]:
    return [event.kind for event in events]


class TestHappyPath:
    def test_yields_in_submission_order(self):
        script = {("a", 0): ["ok"], ("b", 0): ["ok"], ("c", 0): ["ok"]}
        _, events, results = run_supervised(script)
        assert [cell for cell, _ in results] == [("a", 0), ("b", 0), ("c", 0)]
        assert kinds(events).count("cell_finished") == 3

    def test_executor_shut_down_after_run(self):
        executor, _, _ = run_supervised({("a", 0): ["ok"]})
        assert executor.shutdowns >= 1


class TestRetries:
    def test_pool_retry_then_success(self):
        config = SupervisionConfig(retry_policy=RetryPolicy(max_attempts=2))
        script = {("a", 0): ["fail", "ok"], ("b", 0): ["ok"]}
        executor, events, results = run_supervised(script, config)
        assert executor.submissions.count(("a", 0)) == 2
        # The retry jumps the backlog instead of queuing behind it.
        assert executor.fronted == [("a", 0)]
        assert kinds(events).count("cell_failed") == 1
        assert kinds(events).count("cell_retried") == 1
        retried = dict(results)[("a", 0)]
        # The retry is mirrored into the persisted record.
        assert retried.events[0].kind == "cell_retried"
        assert "pool attempt 2/2" in retried.events[0].detail

    def test_retries_exhausted_fall_back_to_serial(self):
        config = SupervisionConfig(retry_policy=RetryPolicy(max_attempts=2))
        script = {("a", 0): ["fail", "fail"]}
        executor, events, results = run_supervised(script, config)
        result = dict(results)[("a", 0)]
        assert result.workload_id == "serial-a"
        assert kinds(events).count("cell_retried") == 2
        assert "serial fallback" in events[-2].detail
        mirror_kinds = [e.kind for e in result.events[:2]]
        assert mirror_kinds == ["cell_retried", "cell_retried"]

    def test_default_policy_goes_straight_to_serial(self):
        script = {("a", 0): ["fail"]}
        executor, events, results = run_supervised(script)
        assert executor.submissions.count(("a", 0)) == 1
        assert dict(results)[("a", 0)].workload_id == "serial-a"

    def test_deterministic_serial_failure_propagates(self):
        def doomed(cell):
            raise RuntimeError("deterministic failure")

        with pytest.raises(RuntimeError, match="deterministic failure"):
            run_supervised({("a", 0): ["fail"]}, serial=doomed)


class TestSelfHealing:
    def test_crash_restarts_within_budget(self):
        config = SupervisionConfig(pool_restarts=2)
        script = {("a", 0): ["crash", "ok"], ("b", 0): ["ok"]}
        executor, events, results = run_supervised(script, config)
        assert executor.fronted == [("a", 0)]  # resubmit jumps the queue
        assert kinds(events).count("pool_restarted") == 1
        assert "pool_degraded" not in kinds(events)
        assert dict(results)[("a", 0)].workload_id == "a"

    def test_budget_exhaustion_degrades_remaining_cells(self):
        config = SupervisionConfig(pool_restarts=0)
        script = {("a", 0): ["crash"], ("b", 0): ["hang"]}
        executor, events, results = run_supervised(script, config)
        assert kinds(events).count("pool_degraded") == 1
        assert "pool_restarted" not in kinds(events)
        by_cell = dict(results)
        assert by_cell[("a", 0)].workload_id == "serial-a"
        assert by_cell[("b", 0)].workload_id == "serial-b"

    def test_degradation_drains_finished_work_first(self):
        """A sibling result in the same batch as the fatal crash is
        kept, not recomputed serially."""
        config = SupervisionConfig(pool_restarts=0)
        script = {("a", 0): ["ok"], ("b", 0): ["crash"]}
        executor = ScriptedExecutor(script)
        events: list[CellEvent] = []
        serial_calls: list = []

        def counting_serial(cell):
            serial_calls.append(cell)
            return serial_run(cell)

        supervisor = Supervisor(
            executor, counting_serial, config=config, on_event=events.append
        )
        results = dict(supervisor.run([("a", 0), ("b", 0)]))
        assert results[("a", 0)].workload_id == "a"  # drained, not serial
        assert serial_calls == [("b", 0)]

    def test_poison_cell_is_pinned_not_resubmitted(self):
        config = SupervisionConfig(pool_restarts=5, poison_threshold=2)
        script = {("a", 0): ["crash", "crash"], ("b", 0): ["ok"]}
        executor, events, results = run_supervised(script, config)
        assert kinds(events).count("pool_restarted") == 1
        assert kinds(events).count("cell_pinned") == 1
        assert executor.submissions.count(("a", 0)) == 2
        assert dict(results)[("a", 0)].workload_id == "serial-a"
        assert "pool_degraded" not in kinds(events)


class TestDeadlines:
    def test_straggler_cancelled_and_completed_serially(self):
        config = SupervisionConfig(cell_timeout_s=5.0, poll_tick_s=0.01)
        script = {("a", 0): ["hang"], ("b", 0): ["ok"]}
        executor, events, results = run_supervised(script, config)
        assert executor.cancelled == [("a", 0)]
        assert kinds(events).count("cell_timeout") == 1
        by_cell = dict(results)
        assert by_cell[("a", 0)].workload_id == "serial-a"
        assert by_cell[("b", 0)].workload_id == "b"

    def test_no_deadline_without_cancel_support(self):
        class NoCancel(ScriptedExecutor):
            supports_cancel = False

            def submit(self, cell):
                # Without cancel support the supervisor must not arm
                # deadlines; hanging here would deadlock the test.
                self.submissions.append(cell)
                self.queue.append(CellOutcome(cell=cell, result=_result(cell[0])))

        executor = NoCancel({})
        supervisor = Supervisor(
            executor,
            serial_run,
            config=SupervisionConfig(cell_timeout_s=0.01, poll_tick_s=0.01),
        )
        results = list(supervisor.run([("a", 0)]))
        assert results[0][1].workload_id == "a"


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cell_timeout_s": 0.0},
            {"cell_timeout_s": -1.0},
            {"pool_restarts": -1},
            {"poison_threshold": 0},
            {"poll_tick_s": 0.0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionConfig(**kwargs)
