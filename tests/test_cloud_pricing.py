"""Unit tests for pricing and deployment cost."""

import pytest

from repro.cloud.pricing import PriceList, default_price_list, deployment_cost
from repro.cloud.vmtypes import default_catalog, get_vm_type


class TestPriceStructure:
    def test_every_catalog_vm_has_a_price(self, catalog):
        prices = default_price_list()
        for vm in catalog:
            assert prices.price_per_hour(vm) > 0

    def test_price_doubles_with_size_within_family(self, catalog):
        prices = default_price_list()
        for family in ("c3", "c4", "m3", "m4", "r3", "r4"):
            large = prices.price_per_hour(f"{family}.large")
            assert prices.price_per_hour(f"{family}.xlarge") == pytest.approx(
                2 * large, rel=1e-6
            )
            assert prices.price_per_hour(f"{family}.2xlarge") == pytest.approx(
                4 * large, rel=1e-6
            )

    def test_c4_large_is_the_cheapest(self):
        assert default_price_list().cheapest() == "c4.large"

    def test_r3_2xlarge_is_the_most_expensive(self):
        assert default_price_list().most_expensive() == "r3.2xlarge"

    def test_memory_family_costs_more_than_compute(self):
        prices = default_price_list()
        assert prices.price_per_hour("r3.large") > prices.price_per_hour("c3.large")
        assert prices.price_per_hour("r4.large") > prices.price_per_hour("c4.large")

    def test_price_per_second_is_hourly_over_3600(self):
        prices = default_price_list()
        assert prices.price_per_second("c4.large") == pytest.approx(
            prices.price_per_hour("c4.large") / 3600
        )

    def test_accepts_vmtype_and_name(self):
        prices = default_price_list()
        vm = get_vm_type("m4.xlarge")
        assert prices.price_per_hour(vm) == prices.price_per_hour("m4.xlarge")

    def test_unknown_vm_raises(self):
        with pytest.raises(KeyError, match="x1.large"):
            default_price_list().price_per_hour("x1.large")


class TestDeploymentCost:
    def test_cost_is_time_times_unit_price(self):
        prices = default_price_list()
        cost = deployment_cost(7200.0, "c4.large", prices)
        assert cost == pytest.approx(2 * prices.price_per_hour("c4.large"))

    def test_zero_time_costs_nothing(self):
        assert deployment_cost(0.0, "c4.large") == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            deployment_cost(-1.0, "c4.large")

    def test_default_price_list_used_when_omitted(self):
        assert deployment_cost(3600.0, "c4.large") == pytest.approx(
            default_price_list().price_per_hour("c4.large")
        )

    def test_custom_price_list(self):
        custom = PriceList(prices={"c4.large": 1.0})
        assert deployment_cost(1800.0, "c4.large", custom) == pytest.approx(0.5)

    def test_same_time_cheaper_on_cheaper_vm(self):
        assert deployment_cost(100.0, "c4.large") < deployment_cost(100.0, "r3.2xlarge")


class TestPriceListContainer:
    def test_default_catalog_covers_exactly_18_prices(self):
        assert len(default_price_list().prices) == len(default_catalog())

    def test_default_price_list_is_cached(self):
        assert default_price_list() is default_price_list()
